// Socket-transport load driver: N concurrent client connections against the
// dpclustx_router's unix-socket front door, over the real fork/exec +
// epoll data path (the same bytes production clients send).
//
// Two phases, both against a 2-worker (configurable) router fronting real
// dpclustx_serve shards:
//
//   closed loop  every client keeps exactly one request in flight: send,
//                await, repeat. Measures capacity — requests/sec the full
//                stack (socket framing, router relay, worker pipes, DP
//                mechanism) sustains — plus client-observed p50/p95/p99.
//   open loop    clients offer a fixed aggregate QPS regardless of response
//                arrival (sends are paced, responses drained between
//                sends). Measures latency at a fixed offered load — the
//                number a capacity-mode run hides, because a closed loop
//                slows its own arrival rate when the server slows down.
//
// The workload is a multi-tenant op mix — explain (40%), hist (40%),
// budget (20%) — across one session per client, sessions spread over
// several datasets so both shards stay on the routing path. Every
// explain/hist carries a distinct ε, so no request short-circuits through
// the release cache. The driver verifies the stream end-to-end: every
// response line must parse, carry the id of an outstanding request on that
// connection, and every request must be answered — any torn, garbled,
// duplicated, or dropped response aborts the run. Shed responses
// (ResourceExhausted with retry_after_ms) are counted separately: they are
// the transport working as designed, not data loss.
//
// A third, in-process section microbenchmarks the relay splice itself:
// ScanTopLevelId+SpliceId versus parse → Set("id") → Dump over a
// representative worker response line, reporting ns/op for both paths.
//
// Latency percentiles come from obs::LatencyHistogram — the same
// log-bucketed instrument the engine exports — so the numbers here are
// directly comparable to the server-side histograms in `metrics` output.
//
// --observability picks how much of the fleet observability plane
// (DESIGN.md §15) the run exercises, so its cost is a measured number:
//
//   off      baseline: plain requests, no scrape traffic
//   metrics  + a background scraper issuing a `metrics` fleet-rollup
//            broadcast every 250ms on its own connection (the telemetry
//            plane under load)
//   full     metrics + every request carries "trace":true, so each one
//            pays _tc splice, worker span capture, and timeline stitching
//
// bench_snapshot.sh runs off and full back to back and stamps the p99
// delta into BENCH_service.json (budget: ≤3%).
//
// Usage:
//   bench_service_load [--workers N] [--clients N] [--datasets N]
//                      [--rows N] [--requests-per-client N]
//                      [--open-qps Q] [--open-seconds S] [--state-dir DIR]
//                      [--observability off|metrics|full]
//
// Prints one human line per phase and a final machine-readable JSON line
// (consumed by scripts/bench_snapshot.sh → BENCH_service.json):
//   {"bench":"service_load","closed_rps":...,"closed_p99_ms":...,...}

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "service/json_relay.h"
#include "service/transport.h"

namespace {

using Clock = std::chrono::steady_clock;
using dpclustx::JsonValue;
using dpclustx::Status;
using dpclustx::StatusOr;
using dpclustx::obs::LatencyHistogram;
using dpclustx::service::ClientChannel;
using dpclustx::service::RelayScan;
using dpclustx::service::ScanTopLevelId;
using dpclustx::service::SpliceId;

struct BenchConfig {
  size_t workers = 2;
  size_t clients = 32;
  size_t datasets = 4;
  size_t rows = 1000;
  size_t requests_per_client = 15;  // closed-loop phase
  double open_qps = 120.0;          // aggregate offered load, open phase
  double open_seconds = 4.0;
  std::string state_dir = "/tmp/dpclustx_service_load";
  std::string observability = "off";  // off | metrics | full
};

std::string BuildDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  DPX_CHECK(n > 0);
  buf[n] = '\0';
  std::string path(buf);
  path = path.substr(0, path.rfind('/'));
  return path.substr(0, path.rfind('/'));
}

/// The forked router: stdin held open through a pipe (EOF is its shutdown
/// signal), stdout/stderr passed through so crashes are visible.
class RouterProcess {
 public:
  RouterProcess(const std::vector<std::string>& args) {
    int to_child[2];
    DPX_CHECK(::pipe(to_child) == 0);
    pid_ = ::fork();
    DPX_CHECK(pid_ >= 0);
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      std::vector<char*> argv;
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    stdin_fd_ = to_child[1];
  }

  ~RouterProcess() {
    ::close(stdin_fd_);  // EOF → graceful shutdown (drains pending)
    ::waitpid(pid_, nullptr, 0);
  }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
};

void Require(const StatusOr<JsonValue>& response) {
  DPX_CHECK(response.ok()) << response.status().ToString();
  DPX_CHECK(response->at("ok").AsBool()) << response->Dump();
}

/// One synchronous round-trip on a dedicated setup connection.
StatusOr<JsonValue> Call(ClientChannel& channel, const std::string& request) {
  DPX_RETURN_IF_ERROR(channel.SendLine(request));
  DPX_ASSIGN_OR_RETURN(const std::string line, channel.RecvLine(30000));
  return JsonValue::Parse(line);
}

/// Loads `datasets` synthetic sets, clusters each, and opens one
/// big-budget session per client (sessions spread round-robin over the
/// datasets, so the tenant mix exercises every shard).
void SetUpWorkload(ClientChannel& channel, const BenchConfig& config) {
  for (size_t d = 0; d < config.datasets; ++d) {
    const std::string name = "load-d" + std::to_string(d);
    char request[512];
    std::snprintf(request, sizeof(request),
                  R"({"op":"load_dataset","name":"%s","source":"synthetic",)"
                  R"("generator":"diabetes","rows":%zu,"seed":%zu})",
                  name.c_str(), config.rows, d + 1);
    Require(Call(channel, request));
    std::snprintf(request, sizeof(request),
                  R"({"op":"cluster","dataset":"%s","method":"k-means",)"
                  R"("k":4,"seed":3})",
                  name.c_str());
    Require(Call(channel, request));
  }
  for (size_t c = 0; c < config.clients; ++c) {
    char request[512];
    std::snprintf(request, sizeof(request),
                  R"({"op":"create_session","dataset":"load-d%zu",)"
                  R"("session":"tenant%zu","epsilon":1000000.0})",
                  c % config.datasets, c);
    Require(Call(channel, request));
  }
}

/// Shared bookkeeping across client threads. `garbled` is the acceptance
/// gate: unparseable lines, ids that match no outstanding request, or
/// responses after the request was already answered.
struct LoadTally {
  std::atomic<size_t> sent{0};
  std::atomic<size_t> received{0};
  std::atomic<size_t> garbled{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> app_errors{0};  // ok:false other than shed
  std::atomic<size_t> epsilon_seq{0};
};

/// Builds request number `seq` for client `c`: the op mix with a distinct
/// ε per budget-charged request. The id encodes the client so cross-
/// connection delivery mistakes surface as garbled responses.
std::string BuildRequest(size_t c, size_t seq, LoadTally& tally,
                         bool traced) {
  const double epsilon =
      0.21 + 1e-7 * static_cast<double>(tally.epsilon_seq.fetch_add(1));
  // In full-observability mode every request opts into end-to-end tracing,
  // so the run prices _tc splice + worker spans + stitching per request.
  const char* trace = traced ? R"("trace":true,)" : "";
  char request[384];
  switch (seq % 5) {
    case 0:
    case 1:
      std::snprintf(request, sizeof(request),
                    R"({"op":"explain","session":"tenant%zu",)"
                    R"("epsilon":%.8f,%s"id":"c%zu-%zu"})",
                    c, epsilon, trace, c, seq);
      break;
    case 2:
    case 3:
      std::snprintf(request, sizeof(request),
                    R"({"op":"hist","session":"tenant%zu",)"
                    R"("attribute":"diab_%zu","epsilon":%.8f,%s)"
                    R"("id":"c%zu-%zu"})",
                    c, seq % 7, epsilon, trace, c, seq);
      break;
    default:
      std::snprintf(request, sizeof(request),
                    R"({"op":"budget","session":"tenant%zu",%s"id":"c%zu-%zu"})",
                    c, trace, c, seq);
  }
  return request;
}

/// Validates one response line against this connection's outstanding set
/// and records its latency. Returns false on a garbled line.
bool AccountResponse(const std::string& line,
                     std::map<std::string, Clock::time_point>& outstanding,
                     LoadTally& tally, LatencyHistogram& histogram) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok() || parsed->type() != JsonValue::Type::kObject ||
      !parsed->Has("id") ||
      parsed->at("id").type() != JsonValue::Type::kString) {
    tally.garbled.fetch_add(1);
    return false;
  }
  auto it = outstanding.find(parsed->at("id").AsString());
  if (it == outstanding.end()) {
    tally.garbled.fetch_add(1);  // unknown or duplicated id
    return false;
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - it->second);
  outstanding.erase(it);
  histogram.Observe(static_cast<uint64_t>(micros.count()));
  tally.received.fetch_add(1);
  if (!parsed->at("ok").AsBool()) {
    const bool is_shed =
        parsed->Has("error") && parsed->at("error").Has("retry_after_ms");
    (is_shed ? tally.shed : tally.app_errors).fetch_add(1);
  }
  return true;
}

/// Closed loop: `requests_per_client` one-at-a-time round-trips per client.
double RunClosedLoop(const BenchConfig& config, const std::string& socket,
                     LoadTally& tally, LatencyHistogram& histogram) {
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<ClientChannel>> channel =
          ClientChannel::Connect(socket);
      DPX_CHECK(channel.ok()) << channel.status().ToString();
      std::map<std::string, Clock::time_point> outstanding;
      const bool traced = config.observability == "full";
      for (size_t seq = 0; seq < config.requests_per_client; ++seq) {
        const std::string request = BuildRequest(c, seq, tally, traced);
        outstanding["c" + std::to_string(c) + "-" + std::to_string(seq)] =
            Clock::now();
        DPX_CHECK((*channel)->SendLine(request).ok());
        tally.sent.fetch_add(1);
        StatusOr<std::string> line = (*channel)->RecvLine(30000);
        DPX_CHECK(line.ok()) << line.status().ToString();
        DPX_CHECK(AccountResponse(*line, outstanding, tally, histogram))
            << "garbled response: " << *line;
      }
      DPX_CHECK(outstanding.empty());
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(config.clients * config.requests_per_client) /
         seconds;
}

/// Open loop: sends are paced to the offered rate; responses are drained
/// between sends and the remainder collected after the window closes.
double RunOpenLoop(const BenchConfig& config, const std::string& socket,
                   LoadTally& tally, LatencyHistogram& histogram) {
  using Micros = std::chrono::microseconds;
  const auto interarrival = Micros(static_cast<int64_t>(
      1e6 * static_cast<double>(config.clients) / config.open_qps));
  const auto window = Micros(static_cast<int64_t>(1e6 * config.open_seconds));
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<ClientChannel>> channel =
          ClientChannel::Connect(socket);
      DPX_CHECK(channel.ok()) << channel.status().ToString();
      std::map<std::string, Clock::time_point> outstanding;
      // Stagger client start offsets so the aggregate arrival process is
      // smooth rather than `clients` simultaneous bursts. The offset math
      // stays in int64: mixing size_t into chrono arithmetic promotes the
      // whole time_point to an unsigned rep, and a wrapped subtraction
      // later reads as a huge positive wait.
      auto next_send =
          t0 + Micros(interarrival.count() * static_cast<int64_t>(c) /
                      static_cast<int64_t>(config.clients));
      const auto deadline = t0 + window;
      size_t seq = 1000000;  // distinct id space from the closed phase
      while (next_send < deadline) {
        // Drain responses until the next send is due.
        for (;;) {
          const auto wait = std::chrono::duration_cast<Micros>(
              next_send - Clock::now());
          if (wait.count() <= 0) break;
          StatusOr<std::string> line = (*channel)->RecvLine(
              static_cast<int>(wait.count() / 1000) + 1);
          if (!line.ok()) break;  // timeout: nothing in flight arrived
          DPX_CHECK(AccountResponse(*line, outstanding, tally, histogram))
              << "garbled response: " << *line;
        }
        const std::string request =
            BuildRequest(c, seq, tally, config.observability == "full");
        outstanding["c" + std::to_string(c) + "-" + std::to_string(seq)] =
            Clock::now();
        DPX_CHECK((*channel)->SendLine(request).ok());
        tally.sent.fetch_add(1);
        ++seq;
        next_send += interarrival;
      }
      while (!outstanding.empty()) {
        StatusOr<std::string> line = (*channel)->RecvLine(30000);
        DPX_CHECK(line.ok()) << line.status().ToString();
        DPX_CHECK(AccountResponse(*line, outstanding, tally, histogram))
            << "garbled response: " << *line;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(tally.received.load()) / seconds;
}

/// Background telemetry consumer for the metrics/full observability modes:
/// a dedicated connection issuing a `metrics` fleet-rollup broadcast every
/// 250ms — the cost a real scrape plane adds while the fleet is under load.
class MetricsScraper {
 public:
  explicit MetricsScraper(const std::string& socket) {
    thread_ = std::thread([this, socket] {
      StatusOr<std::unique_ptr<ClientChannel>> channel =
          ClientChannel::Connect(socket);
      DPX_CHECK(channel.ok()) << channel.status().ToString();
      while (!stop_.load(std::memory_order_acquire)) {
        const std::string id = "scrape-" + std::to_string(scrapes_);
        StatusOr<JsonValue> rollup = Call(
            **channel, R"({"op":"metrics","id":")" + id + R"("})");
        DPX_CHECK(rollup.ok() && rollup->at("ok").AsBool() &&
                  rollup->Has("fleet"))
            << "fleet rollup scrape failed";
        ++scrapes_;
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }

  size_t Stop() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
    return scrapes_;
  }

 private:
  std::atomic<bool> stop_{false};
  size_t scrapes_ = 0;  // written by the thread, read after join
  std::thread thread_;
};

struct RelayBench {
  double splice_ns = 0.0;
  double full_ns = 0.0;
};

/// In-process splice-vs-full-parse microbench over a representative worker
/// response: an explain-sized payload (nested arrays of bin counts) with a
/// router-generated id to rewrite.
RelayBench RunRelayMicrobench() {
  JsonValue response = JsonValue::Object();
  response.Set("id", JsonValue::String("r123456"));
  response.Set("ok", JsonValue::Bool(true));
  response.Set("session", JsonValue::String("tenant17"));
  response.Set("epsilon_spent", JsonValue::Number(0.30000017));
  JsonValue bins = JsonValue::Array();
  for (int b = 0; b < 64; ++b) {
    bins.Append(JsonValue::Number(static_cast<double>(b * 37 % 211)));
  }
  response.Set("histogram", bins);
  JsonValue predicates = JsonValue::Array();
  for (int p = 0; p < 6; ++p) {
    JsonValue predicate = JsonValue::Object();
    predicate.Set("attribute", JsonValue::String("diab_" + std::to_string(p)));
    predicate.Set("lo", JsonValue::Number(0.25 * p));
    predicate.Set("hi", JsonValue::Number(0.25 * p + 1.0));
    predicate.Set("score", JsonValue::Number(0.91 - 0.07 * p));
    predicates.Append(predicate);
  }
  response.Set("predicates", predicates);
  const std::string line = response.Dump();
  const std::string client_id = "\"client-original-42\"";

  constexpr size_t kIters = 20000;
  RelayBench result;
  size_t sink = 0;
  {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < kIters; ++i) {
      StatusOr<RelayScan> scan = ScanTopLevelId(line);
      DPX_CHECK(scan.ok());
      sink += SpliceId(line, *scan, client_id).size();
    }
    result.splice_ns = std::chrono::duration<double, std::nano>(
                           Clock::now() - t0).count() / kIters;
  }
  {
    const auto t0 = Clock::now();
    for (size_t i = 0; i < kIters; ++i) {
      StatusOr<JsonValue> parsed = JsonValue::Parse(line);
      DPX_CHECK(parsed.ok());
      parsed->Set("id", JsonValue::String("client-original-42"));
      sink += parsed->Dump().size();
    }
    result.full_ns = std::chrono::duration<double, std::nano>(
                         Clock::now() - t0).count() / kIters;
  }
  DPX_CHECK(sink > 0);  // keep the loops observable
  std::printf("relay payload        : %zu bytes\n", line.size());
  std::printf("relay splice         : %8.0f ns/op\n", result.splice_ns);
  std::printf("relay full parse     : %8.0f ns/op (%.1fx slower)\n",
              result.full_ns, result.full_ns / result.splice_ns);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    auto size_flag = [&](const char* name, size_t* out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      DPX_CHECK(i + 1 < argc) << name << " needs a value";
      *out = static_cast<size_t>(std::stoull(argv[++i]));
      return true;
    };
    auto double_flag = [&](const char* name, double* out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      DPX_CHECK(i + 1 < argc) << name << " needs a value";
      *out = std::stod(argv[++i]);
      return true;
    };
    if (size_flag("--workers", &config.workers) ||
        size_flag("--clients", &config.clients) ||
        size_flag("--datasets", &config.datasets) ||
        size_flag("--rows", &config.rows) ||
        size_flag("--requests-per-client", &config.requests_per_client) ||
        double_flag("--open-qps", &config.open_qps) ||
        double_flag("--open-seconds", &config.open_seconds)) {
      continue;
    }
    if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      config.state_dir = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--observability") == 0 && i + 1 < argc) {
      config.observability = argv[++i];
      continue;
    }
    std::cerr << "unknown flag '" << argv[i] << "'\n";
    return 2;
  }
  if (config.observability != "off" && config.observability != "metrics" &&
      config.observability != "full") {
    std::cerr << "--observability must be off, metrics, or full\n";
    return 2;
  }
  ::signal(SIGPIPE, SIG_IGN);

  const RelayBench relay = RunRelayMicrobench();

  const std::string build = BuildDir();
  const std::string scrub =
      "rm -rf " + config.state_dir + " && mkdir -p " + config.state_dir;
  DPX_CHECK(std::system(scrub.c_str()) == 0);
  const std::string socket = "unix:" + config.state_dir + "/router.sock";

  RouterProcess router({build + "/tools/dpclustx_router",
                        "--workers", std::to_string(config.workers),
                        "--serve", build + "/tools/dpclustx_serve",
                        "--state-dir", config.state_dir,
                        "--listen", socket});
  // Wait for the socket to appear (the router binds before serving stdin).
  const std::string socket_path = config.state_dir + "/router.sock";
  for (int i = 0; i < 200 && ::access(socket_path.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  DPX_CHECK(::access(socket_path.c_str(), F_OK) == 0)
      << "router never bound " << socket_path;

  {
    StatusOr<std::unique_ptr<ClientChannel>> setup =
        ClientChannel::Connect(socket);
    DPX_CHECK(setup.ok()) << setup.status().ToString();
    SetUpWorkload(**setup, config);
  }

  std::unique_ptr<MetricsScraper> scraper;
  if (config.observability != "off") {
    scraper = std::make_unique<MetricsScraper>(socket);
  }

  LoadTally closed_tally;
  LatencyHistogram closed_histogram;
  const double closed_rps =
      RunClosedLoop(config, socket, closed_tally, closed_histogram);
  const double closed_p50 = closed_histogram.ApproxQuantileMicros(0.50) / 1e3;
  const double closed_p95 = closed_histogram.ApproxQuantileMicros(0.95) / 1e3;
  const double closed_p99 = closed_histogram.ApproxQuantileMicros(0.99) / 1e3;
  std::printf(
      "closed loop          : %8.1f req/s  p50 %.1fms p95 %.1fms p99 %.1fms"
      "  (%zu clients, %zu sent, %zu received, %zu garbled, %zu shed)\n",
      closed_rps, closed_p50, closed_p95, closed_p99, config.clients,
      closed_tally.sent.load(), closed_tally.received.load(),
      closed_tally.garbled.load(), closed_tally.shed.load());

  LoadTally open_tally;
  LatencyHistogram open_histogram;
  const double open_rps =
      RunOpenLoop(config, socket, open_tally, open_histogram);
  const double open_p50 = open_histogram.ApproxQuantileMicros(0.50) / 1e3;
  const double open_p95 = open_histogram.ApproxQuantileMicros(0.95) / 1e3;
  const double open_p99 = open_histogram.ApproxQuantileMicros(0.99) / 1e3;
  std::printf(
      "open loop @%.0f qps   : %8.1f req/s  p50 %.1fms p95 %.1fms p99 %.1fms"
      "  (%zu sent, %zu received, %zu garbled, %zu shed)\n",
      config.open_qps, open_rps, open_p50, open_p95, open_p99,
      open_tally.sent.load(), open_tally.received.load(),
      open_tally.garbled.load(), open_tally.shed.load());

  size_t scrapes = 0;
  if (scraper != nullptr) {
    scrapes = scraper->Stop();
    std::printf("observability        : %s (%zu fleet-rollup scrapes)\n",
                config.observability.c_str(), scrapes);
  }

  DPX_CHECK(closed_tally.garbled.load() == 0 &&
            open_tally.garbled.load() == 0)
      << "garbled responses — transport corrupted the stream";
  DPX_CHECK(closed_tally.sent.load() == closed_tally.received.load() &&
            open_tally.sent.load() == open_tally.received.load())
      << "dropped responses — transport lost frames";

  JsonValue result = JsonValue::Object();
  result.Set("bench", JsonValue::String("service_load"));
  result.Set("observability", JsonValue::String(config.observability));
  result.Set("scrapes", JsonValue::Number(static_cast<double>(scrapes)));
  result.Set("workers", JsonValue::Number(static_cast<double>(config.workers)));
  result.Set("clients", JsonValue::Number(static_cast<double>(config.clients)));
  result.Set("datasets",
             JsonValue::Number(static_cast<double>(config.datasets)));
  result.Set("rows", JsonValue::Number(static_cast<double>(config.rows)));
  result.Set("closed_rps", JsonValue::Number(closed_rps));
  result.Set("closed_p50_ms", JsonValue::Number(closed_p50));
  result.Set("closed_p95_ms", JsonValue::Number(closed_p95));
  result.Set("closed_p99_ms", JsonValue::Number(closed_p99));
  result.Set("open_target_qps", JsonValue::Number(config.open_qps));
  result.Set("open_rps", JsonValue::Number(open_rps));
  result.Set("open_p50_ms", JsonValue::Number(open_p50));
  result.Set("open_p95_ms", JsonValue::Number(open_p95));
  result.Set("open_p99_ms", JsonValue::Number(open_p99));
  result.Set("sent", JsonValue::Number(static_cast<double>(
                         closed_tally.sent.load() + open_tally.sent.load())));
  result.Set("garbled", JsonValue::Number(0.0));
  result.Set("shed",
             JsonValue::Number(static_cast<double>(
                 closed_tally.shed.load() + open_tally.shed.load())));
  result.Set("relay_splice_ns", JsonValue::Number(relay.splice_ns));
  result.Set("relay_full_parse_ns", JsonValue::Number(relay.full_ns));
  result.Set("relay_speedup",
             JsonValue::Number(relay.full_ns / relay.splice_ns));
  std::printf("%s\n", result.Dump().c_str());
  return 0;
}
