// Figure 7: Quality of DPClustX's selected attributes as the Stage-1
// candidate-set size k varies from 1 to 5 (Census and Diabetes, every
// clustering method). The paper finds quality rising to k ≈ 3 and then
// flattening — k = 3 is the framework default.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const double epsilon = 0.2;  // default combined selection budget
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  std::printf(
      "Figure 7: DPClustX quality vs candidate-set size k (eps=%.2f, "
      "|C|=%zu, %zu runs)\n\n",
      epsilon, clusters, runs);

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    eval::TablePrinter table(
        {"method", "k=1", "k=2", "k=3", "k=4", "k=5", "TabEE"});
    for (const std::string& method : MethodsFor(dataset_name)) {
      const std::vector<ClusterId> labels =
          FitLabels(dataset, method, clusters, 1);
      const auto stats = StatsCache::Build(dataset, labels, clusters);
      DPX_CHECK_OK(stats.status());

      std::vector<std::string> row = {method};
      for (size_t k = 1; k <= 5; ++k) {
        double total = 0.0;
        for (size_t run = 0; run < runs; ++run) {
          const AttributeCombination ac =
              RunDpClustXSelection(*stats, epsilon, k, lambda, 3000 + run);
          total += eval::SensitiveQuality(*stats, ac, lambda);
        }
        row.push_back(
            eval::TablePrinter::Num(total / static_cast<double>(runs)));
      }
      // Reference: non-private TabEE at its default k = 3.
      row.push_back(eval::TablePrinter::Num(eval::SensitiveQuality(
          *stats, RunTabeeSelection(*stats, 3, lambda), lambda)));
      table.AddRow(std::move(row));
    }
    std::printf("--- dataset: %s ---\n", dataset_name.c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
