// Figure 8(a): Quality of the selected attributes as the number of clusters
// varies (k-means clustering, Census and Diabetes). The paper's findings:
// quality decreases with more clusters even without privacy; DPClustX
// tracks TabEE closely while DP-TabEE lags badly; small clusters (more
// likely at high |C|) degrade all DP methods.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const std::vector<size_t> cluster_counts = {3, 5, 7, 9, 11};
  const double epsilon = 0.2;
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  std::printf(
      "Figure 8a: Quality vs number of clusters (k-means, eps=%.2f, %zu "
      "runs)\n\n",
      epsilon, runs);

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    std::vector<std::string> headers = {"explainer"};
    for (size_t clusters : cluster_counts) {
      headers.push_back("|C|=" + std::to_string(clusters));
    }
    eval::TablePrinter table(std::move(headers));

    // Rows: TabEE, DPClustX, DP-Naive, DP-TabEE.
    std::vector<std::vector<std::string>> rows(4);
    rows[0] = {"TabEE"};
    rows[1] = {"DPClustX"};
    rows[2] = {"DP-Naive"};
    rows[3] = {"DP-TabEE"};
    for (size_t clusters : cluster_counts) {
      const std::vector<ClusterId> labels =
          FitLabels(dataset, "k-means", clusters, 1);
      const auto stats = StatsCache::Build(dataset, labels, clusters);
      DPX_CHECK_OK(stats.status());

      rows[0].push_back(eval::TablePrinter::Num(eval::SensitiveQuality(
          *stats, RunTabeeSelection(*stats, k, lambda), lambda)));

      struct Explainer {
        size_t row;
        AttributeCombination (*run)(const StatsCache&, double, size_t,
                                    const GlobalWeights&, uint64_t);
      };
      const Explainer explainers[] = {{1, &RunDpClustXSelection},
                                      {2, &RunDpNaiveSelection},
                                      {3, &RunDpTabeeSelection}};
      for (const Explainer& explainer : explainers) {
        double total = 0.0;
        for (size_t run = 0; run < runs; ++run) {
          total += eval::SensitiveQuality(
              *stats,
              explainer.run(*stats, epsilon, k, lambda, 4000 + run),
              lambda);
        }
        rows[explainer.row].push_back(
            eval::TablePrinter::Num(total / static_cast<double>(runs)));
      }
    }
    for (auto& row : rows) table.AddRow(std::move(row));
    std::printf("--- dataset: %s ---\n", dataset_name.c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
