// Figure 5: Quality of the selected attribute combination as the total
// selection budget ε varies (ε_CandSet = ε_TopComb = ε/2), for every
// dataset × clustering method × explainer. Histogram generation is skipped,
// exactly as in the paper's setup. Prints one series row per
// (dataset, method, explainer) with the ε sweep as columns.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const std::vector<double> epsilons = {0.001, 0.01, 0.1, 1.0};
  const size_t clusters = 5;  // paper default
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  std::printf(
      "Figure 5: Quality of selected attributes vs total privacy budget\n"
      "(|C|=%zu, k=%zu, lambda=1/3 each, %zu runs averaged)\n\n",
      clusters, k, runs);

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    std::vector<std::string> headers = {"method", "explainer"};
    for (double eps : epsilons) {
      headers.push_back("eps=" + eval::TablePrinter::Num(eps, 3));
    }
    eval::TablePrinter table(std::move(headers));

    for (const std::string& method : MethodsFor(dataset_name)) {
      const std::vector<ClusterId> labels =
          FitLabels(dataset, method, clusters, /*seed=*/1);
      const auto stats = StatsCache::Build(dataset, labels, clusters);
      DPX_CHECK_OK(stats.status());

      // Non-private reference (constant across ε).
      const AttributeCombination tabee = RunTabeeSelection(*stats, k, lambda);
      const double tabee_quality =
          eval::SensitiveQuality(*stats, tabee, lambda);
      {
        std::vector<std::string> row = {method, "TabEE"};
        for (size_t i = 0; i < epsilons.size(); ++i) {
          row.push_back(eval::TablePrinter::Num(tabee_quality));
        }
        table.AddRow(std::move(row));
      }

      struct Explainer {
        const char* name;
        AttributeCombination (*run)(const StatsCache&, double, size_t,
                                    const GlobalWeights&, uint64_t);
      };
      const Explainer explainers[] = {
          {"DPClustX", &RunDpClustXSelection},
          {"DP-Naive", &RunDpNaiveSelection},
          {"DP-TabEE", &RunDpTabeeSelection},
      };
      for (const Explainer& explainer : explainers) {
        std::vector<std::string> row = {method, explainer.name};
        for (double eps : epsilons) {
          double total = 0.0;
          for (size_t run = 0; run < runs; ++run) {
            const AttributeCombination ac =
                explainer.run(*stats, eps, k, lambda, 1000 + run);
            total += eval::SensitiveQuality(*stats, ac, lambda);
          }
          row.push_back(eval::TablePrinter::Num(total /
                                                static_cast<double>(runs)));
        }
        table.AddRow(std::move(row));
      }
    }
    std::printf("--- dataset: %s (%zu rows x %zu attrs) ---\n",
                dataset_name.c_str(), dataset.num_rows(),
                dataset.num_attributes());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
