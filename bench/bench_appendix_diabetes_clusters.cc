// Appendix Figures 11–12: Quality and MAE of the selected attribute
// combination on the Diabetes-like dataset for 3 and 7 clusters, over the ε
// sweep and all clustering methods (the main-body Figure 5/6 plots use 5
// clusters; the appendix shows the trends persist).

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const std::vector<double> epsilons = {0.001, 0.01, 0.1, 1.0};
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();
  const Dataset dataset = MakeDataset("diabetes");

  std::printf(
      "Appendix Figs. 11-12: Diabetes Quality and MAE at 3 and 7 clusters "
      "(%zu runs)\n\n",
      runs);

  for (const size_t clusters : {3u, 7u}) {
    std::vector<std::string> headers = {"method", "explainer", "metric"};
    for (double eps : epsilons) {
      headers.push_back("eps=" + eval::TablePrinter::Num(eps, 3));
    }
    eval::TablePrinter table(std::move(headers));

    for (const std::string& method : MethodsFor("diabetes")) {
      const std::vector<ClusterId> labels =
          FitLabels(dataset, method, clusters, 1);
      const auto stats = StatsCache::Build(dataset, labels, clusters);
      DPX_CHECK_OK(stats.status());
      const AttributeCombination reference =
          RunTabeeSelection(*stats, k, lambda);
      const double reference_quality =
          eval::SensitiveQuality(*stats, reference, lambda);
      {
        std::vector<std::string> row = {method, "TabEE", "Quality"};
        for (size_t i = 0; i < epsilons.size(); ++i) {
          row.push_back(eval::TablePrinter::Num(reference_quality));
        }
        table.AddRow(std::move(row));
      }

      struct Explainer {
        const char* name;
        AttributeCombination (*run)(const StatsCache&, double, size_t,
                                    const GlobalWeights&, uint64_t);
      };
      const Explainer explainers[] = {
          {"DPClustX", &RunDpClustXSelection},
          {"DP-Naive", &RunDpNaiveSelection},
          {"DP-TabEE", &RunDpTabeeSelection},
      };
      for (const Explainer& explainer : explainers) {
        std::vector<std::string> quality_row = {method, explainer.name,
                                                "Quality"};
        std::vector<std::string> mae_row = {method, explainer.name, "MAE"};
        for (double eps : epsilons) {
          double quality = 0.0, mae = 0.0;
          for (size_t run = 0; run < runs; ++run) {
            const AttributeCombination ac =
                explainer.run(*stats, eps, k, lambda, 8000 + run);
            quality += eval::SensitiveQuality(*stats, ac, lambda);
            mae += eval::MeanAbsoluteError(ac, reference);
          }
          quality_row.push_back(
              eval::TablePrinter::Num(quality / static_cast<double>(runs)));
          mae_row.push_back(
              eval::TablePrinter::Num(mae / static_cast<double>(runs), 3));
        }
        table.AddRow(std::move(quality_row));
        table.AddRow(std::move(mae_row));
      }
    }
    std::printf("--- Diabetes, %zu clusters ---\n", clusters);
    table.Print();
    std::printf("\n");
  }
  return 0;
}
