// Ingest-plane benchmarks for the DPXCOL mapped columnar format: open
// latency at Census scale (the demo's "load 2.46M rows instantly" moment —
// Open is O(header), so it must not move with file size), streaming append
// throughput (rows/sec committed durably through AppendRowsToColumnar),
// and the StatsCache delta-build vs. the cold rebuild it replaces (the
// payoff is O(tail) instead of O(base + tail) per append batch).
//
// Results feed BENCH_columnar_ingest.json (scripts/bench_snapshot.sh).

#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/stats_cache.h"
#include "data/columnar_format.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace {

using namespace dpclustx;

constexpr size_t kCensusRows = 2458285;  // ACS-like demo scale
constexpr size_t kCensusAttrs = 68;
constexpr size_t kClusters = 5;

std::string BenchPath(const std::string& name) {
  return "/tmp/dpclustx_bench_ingest_" + std::to_string(::getpid()) + "_" +
         name + ".dpxcol";
}

// Census-shaped table: 68 attributes, domains 2..32, deterministic filler.
// Row r's label is (r % kClusters) — skew does not matter here, only data
// volume does.
Dataset MakeCensusShaped(size_t rows) {
  std::vector<Attribute> attrs;
  attrs.reserve(kCensusAttrs);
  for (size_t a = 0; a < kCensusAttrs; ++a) {
    attrs.push_back(Attribute::WithAnonymousDomain(
        "attr" + std::to_string(a), 2 + (a % 31)));
  }
  Dataset dataset{Schema(std::move(attrs))};
  dataset.Reserve(rows);
  std::vector<ValueCode> row(kCensusAttrs);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < kCensusAttrs; ++a) {
      row[a] = static_cast<ValueCode>((r * (a + 3) + 17) % (2 + (a % 31)));
    }
    dataset.AppendRowUnchecked(row);
  }
  return dataset;
}

std::vector<ClusterId> RoundRobinLabels(size_t rows) {
  std::vector<ClusterId> labels(rows);
  for (size_t r = 0; r < rows; ++r) {
    labels[r] = static_cast<ClusterId>(r % kClusters);
  }
  return labels;
}

// --- open latency ----------------------------------------------------------

// Arg: row count. The point of the sweep is the flat line: Open validates
// O(header) bytes and mmaps the rest, so 2.46M rows must open in the same
// time as 10k.
void BM_ColumnarOpen(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const std::string path = BenchPath("open_" + std::to_string(rows));
  {
    const Dataset dataset = MakeCensusShaped(rows);
    DPX_CHECK_OK(WriteColumnarFile(dataset, path));
  }
  for (auto _ : state) {
    auto mapped = MappedColumnar::Open(path);
    DPX_CHECK_OK(mapped.status());
    benchmark::DoNotOptimize((*mapped)->num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) *
                          static_cast<int64_t>(state.iterations()));
  std::remove(path.c_str());
}
BENCHMARK(BM_ColumnarOpen)
    ->ArgName("rows")->Arg(10000)->Arg(250000)->Arg(kCensusRows)
    ->Unit(benchmark::kMicrosecond);

// The O(data) integrity pass, for contrast with the O(header) open above:
// this is what `dpclustx_convert verify` and ColumnarOpenOptions
// {verify_data=true} cost.
void BM_ColumnarVerifyData(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const std::string path = BenchPath("verify_" + std::to_string(rows));
  {
    const Dataset dataset = MakeCensusShaped(rows);
    DPX_CHECK_OK(WriteColumnarFile(dataset, path));
  }
  auto mapped = MappedColumnar::Open(path);
  DPX_CHECK_OK(mapped.status());
  for (auto _ : state) {
    DPX_CHECK_OK((*mapped)->VerifyData());
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) *
                          static_cast<int64_t>(state.iterations()));
  std::remove(path.c_str());
}
BENCHMARK(BM_ColumnarVerifyData)
    ->ArgName("rows")->Arg(250000)
    ->Unit(benchmark::kMillisecond);

// --- append throughput -----------------------------------------------------

// Durable append path: each iteration commits one batch through
// AppendRowsToColumnar (write tail codes + per-column CRC update + header
// rewrite). Capacity is pre-reserved so every iteration takes the in-place
// branch — the grow-and-rename branch is a rare amortized event, not the
// steady state.
void BM_ColumnarAppendBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::string path = BenchPath("append_" + std::to_string(batch));
  const Dataset seedset = MakeCensusShaped(1000);
  std::vector<std::vector<ValueCode>> rows(batch);
  for (size_t r = 0; r < batch; ++r) rows[r] = seedset.Row(r % 1000);

  // Fresh file per timing run, capacity for every planned batch.
  ColumnarWriteOptions options;
  options.capacity_rows = 1000 + batch * 2000;
  DPX_CHECK_OK(WriteColumnarFile(seedset, path, options));
  auto handle = MappedColumnar::Open(path);
  DPX_CHECK_OK(handle.status());
  std::shared_ptr<const MappedColumnar> current = *handle;

  for (auto _ : state) {
    auto appended = AppendRowsToColumnar(current, rows);
    DPX_CHECK_OK(appended.status());
    current = *appended;
  }
  state.SetItemsProcessed(static_cast<int64_t>(batch) *
                          static_cast<int64_t>(state.iterations()));
  std::remove(path.c_str());
}
BENCHMARK(BM_ColumnarAppendBatch)
    ->ArgName("batch")->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond)->Iterations(100);

// --- stats delta-build vs cold rebuild -------------------------------------

// The service's post-append work: arg 0 times StatsCache::BuildAppended
// over a 10k-row tail on a 250k-row warm base (what ingest actually runs),
// arg 1 times the cold Build over all 260k rows (what it replaced). Both
// produce bitwise-identical caches (tests/dataset_layout_test).
void BM_StatsAfterAppend(benchmark::State& state) {
  const bool cold = state.range(0) == 1;
  constexpr size_t kBase = 250000;
  constexpr size_t kTail = 10000;
  static const Dataset* full = new Dataset(MakeCensusShaped(kBase + kTail));
  static const Dataset* base = new Dataset(MakeCensusShaped(kBase));
  const std::vector<ClusterId> full_labels = RoundRobinLabels(kBase + kTail);
  const std::vector<ClusterId> tail_labels(full_labels.begin() + kBase,
                                           full_labels.end());
  std::vector<uint32_t> tail_rows(kTail);
  for (size_t r = 0; r < kTail; ++r) {
    tail_rows[r] = static_cast<uint32_t>(kBase + r);
  }
  const Dataset tail = full->SelectRows(tail_rows);
  const auto warm = StatsCache::Build(*base, RoundRobinLabels(kBase),
                                      kClusters);
  DPX_CHECK_OK(warm.status());

  for (auto _ : state) {
    if (cold) {
      auto rebuilt = StatsCache::Build(*full, full_labels, kClusters);
      DPX_CHECK_OK(rebuilt.status());
      benchmark::DoNotOptimize(rebuilt->num_rows());
    } else {
      auto delta =
          StatsCache::BuildAppended(*warm, tail, tail_labels);
      DPX_CHECK_OK(delta.status());
      benchmark::DoNotOptimize(delta->num_rows());
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(cold ? kBase + kTail : kTail) *
      static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsAfterAppend)
    ->ArgName("cold")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dpclustx::bench::AddPoolContext();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
