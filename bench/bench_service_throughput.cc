// Closed-loop throughput benchmark for the explanation service.
//
// A fixed set of client threads drive `explain` requests through
// ServiceEngine::HandleAsync against a dataset whose StatsCache is already
// resident in the registry ("cached-dataset" explains: the O(n·d) counting
// pass is paid once at cluster time, so each request costs only the DP
// mechanism work). Every request uses a fresh seed — a distinct release —
// so the explanation cache never short-circuits the work being measured.
//
// Each worker holds its request until the response has drained to the
// client; the drain is modeled as a fixed per-request stall (--stall-ms,
// default 15) because this demo serves stdin/stdout rather than real
// sockets. The stall is what overlapping workers reclaim on a small
// machine; on many-core hardware the mechanism CPU time overlaps as well.
// Results are printed per worker count (1/4/8/16 by default): requests/sec,
// p50/p99 client-observed latency, and speedup versus one worker.
//
// Usage:
//   bench_service_throughput [--rows N] [--clients N] [--requests N]
//                            [--stall-ms MS] [--observability MODE]
//
// --observability selects how much telemetry the engine records, to
// measure its overhead (the acceptance bar is <= 2% between off and full):
//   off      per-op counters/latency histograms disabled
//   metrics  the default production configuration (counters + histograms)
//   full     metrics plus a span trace captured for every request

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "service/service_engine.h"

namespace {

using Clock = std::chrono::steady_clock;
using dpclustx::JsonValue;
using dpclustx::Status;
using dpclustx::StatusOr;
using dpclustx::service::ServiceEngine;
using dpclustx::service::ServiceEngineOptions;

struct BenchConfig {
  size_t rows = 4000;
  size_t clients = 24;
  size_t requests = 200;  // per worker-count configuration
  double stall_ms = 15.0;
  std::string observability = "metrics";  // off | metrics | full
};

struct RunResult {
  double seconds = 0.0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

void Require(const JsonValue& response) {
  DPX_CHECK(response.at("ok").AsBool()) << response.Dump();
}

double Percentile(std::vector<double> sorted_ms, double q) {
  DPX_CHECK(!sorted_ms.empty());
  const size_t index = static_cast<size_t>(q * (sorted_ms.size() - 1));
  return sorted_ms[index];
}

RunResult RunOnce(const BenchConfig& config, size_t workers) {
  ServiceEngineOptions options;
  options.num_threads = workers;
  options.queue_capacity = 4096;
  // Test-only deterministic noise so each request can pin a distinct seed
  // (below); a production engine rejects client seeds outright.
  options.insecure_deterministic_noise = true;
  options.record_metrics = config.observability != "off";
  options.trace_all = config.observability == "full";
  ServiceEngine engine(options);

  // Shared state set up outside the timed region: dataset + clustering +
  // StatsCache live in the registry, one big-budget session per client.
  Require(JsonValue::Parse(engine.Handle(
      R"({"op":"load_dataset","name":"bench","source":"synthetic",)"
      R"("generator":"diabetes","rows":)" +
      std::to_string(config.rows) + R"(,"seed":7})")).value());
  Require(JsonValue::Parse(engine.Handle(
      R"({"op":"cluster","dataset":"bench","method":"k-means","k":4,)"
      R"("seed":3})")).value());
  for (size_t c = 0; c < config.clients; ++c) {
    Require(JsonValue::Parse(engine.Handle(
        R"({"op":"create_session","session":"tenant)" + std::to_string(c) +
        R"(","dataset":"bench","epsilon":1000000})")).value());
  }

  const auto stall =
      std::chrono::microseconds(static_cast<int64_t>(config.stall_ms * 1000));
  std::atomic<size_t> next_request{0};
  std::atomic<size_t> failures{0};
  std::mutex latencies_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(config.requests);

  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      const std::string session = "tenant" + std::to_string(c);
      while (true) {
        const size_t i = next_request.fetch_add(1);
        if (i >= config.requests) break;
        // A fresh seed per request: a distinct DP release, never a cache
        // hit, so the measured path is the full mechanism pipeline.
        const std::string request =
            R"({"op":"explain","session":")" + session +
            R"(","epsilon":0.3,"num_candidates":3,"seed":)" +
            std::to_string(1000 + i) + "}";
        std::promise<void> done;
        const auto start = Clock::now();
        const Status submitted =
            engine.HandleAsync(request, [&](std::string response) {
              const StatusOr<JsonValue> parsed = JsonValue::Parse(response);
              if (!parsed.ok() || !parsed->at("ok").AsBool() ||
                  parsed->at("cache_hit").AsBool()) {
                failures.fetch_add(1);
              }
              std::this_thread::sleep_for(stall);  // response drain
              done.set_value();
            });
        if (!submitted.ok()) {
          failures.fetch_add(1);
          continue;
        }
        done.get_future().wait();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        std::lock_guard<std::mutex> lock(latencies_mutex);
        latencies_ms.push_back(ms);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  engine.Shutdown();
  DPX_CHECK_EQ(failures.load(), 0u) << "failed/rejected/cached requests";

  std::sort(latencies_ms.begin(), latencies_ms.end());
  RunResult result;
  result.seconds = seconds;
  result.req_per_sec = static_cast<double>(config.requests) / seconds;
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    auto size_flag = [&](const char* name, size_t* out) {
      if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc) return false;
      *out = static_cast<size_t>(std::stoull(argv[++i]));
      return true;
    };
    if (size_flag("--rows", &config.rows) ||
        size_flag("--clients", &config.clients) ||
        size_flag("--requests", &config.requests)) {
      continue;
    }
    if (std::strcmp(argv[i], "--stall-ms") == 0 && i + 1 < argc) {
      config.stall_ms = std::stod(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--observability") == 0 && i + 1 < argc) {
      config.observability = argv[++i];
      if (config.observability != "off" &&
          config.observability != "metrics" &&
          config.observability != "full") {
        std::cerr << "--observability expects off|metrics|full\n";
        return 2;
      }
      continue;
    }
    std::cerr << "unknown flag '" << argv[i] << "'\n";
    return 2;
  }

  std::cout << "# service throughput — closed loop, " << config.clients
            << " clients, " << config.requests << " explain requests/run, "
            << config.rows << "-row dataset, " << config.stall_ms
            << " ms simulated response drain per request, observability="
            << config.observability << "\n";
  std::cout << "workers\treq_per_sec\tp50_ms\tp99_ms\tspeedup_vs_1\n";

  double baseline = 0.0;
  for (const size_t workers : {1u, 4u, 8u, 16u}) {
    const RunResult result = RunOnce(config, workers);
    if (workers == 1) baseline = result.req_per_sec;
    std::printf("%zu\t%.1f\t%.1f\t%.1f\t%.2fx\n", workers,
                result.req_per_sec, result.p50_ms, result.p99_ms,
                result.req_per_sec / baseline);
    std::fflush(stdout);
  }
  return 0;
}
