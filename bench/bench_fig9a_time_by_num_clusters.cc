// Figure 9(a): DPClustX execution time vs number of clusters (log scale in
// the paper), for k-means and GMM clusterings on all three datasets. The
// paper's shape: runtime grows exponentially with |C| (Stage-2 enumerates
// k^|C| combinations) but stays low through ~11 clusters. Clustering fits
// happen outside the timed region — the figure times explanation
// generation only.

#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

const Dataset& CachedDataset(const std::string& name) {
  static auto* cache = new std::map<std::string, Dataset>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    it = cache->emplace(name, MakeDataset(name)).first;
  }
  return it->second;
}

const std::vector<ClusterId>& CachedLabels(const std::string& dataset,
                                           const std::string& method,
                                           size_t clusters) {
  static auto* cache =
      new std::map<std::string, std::vector<ClusterId>>();
  const std::string key =
      dataset + "/" + method + "/" + std::to_string(clusters);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache
             ->emplace(key, FitLabels(CachedDataset(dataset), method,
                                      clusters, /*seed=*/1))
             .first;
  }
  return it->second;
}

void BM_ExplainByClusters(benchmark::State& state,
                          const std::string& dataset_name,
                          const std::string& method) {
  const auto clusters = static_cast<size_t>(state.range(0));
  const Dataset& dataset = CachedDataset(dataset_name);
  const std::vector<ClusterId>& labels =
      CachedLabels(dataset_name, method, clusters);

  DpClustXOptions options;  // paper defaults incl. histogram release
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation =
        ExplainDpClustXWithLabels(dataset, labels, clusters, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
}

void RegisterAll() {
  for (const std::string& dataset :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    for (const std::string& method : {std::string("k-means"),
                                     std::string("gmm")}) {
      auto* bench = benchmark::RegisterBenchmark(
          ("fig9a/" + dataset + "/" + method).c_str(),
          [dataset, method](benchmark::State& state) {
            BM_ExplainByClusters(state, dataset, method);
          });
      for (const int clusters : {3, 5, 7, 9, 11, 13}) {
        bench->Arg(clusters);
      }
      bench->Unit(benchmark::kMillisecond)->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
