// Ablation: discretization strategies (paper §8, future work — "examine the
// impact of different discretization and binning approaches"). Numeric
// columns with planted group structure are binned with equal-width and
// equal-frequency binners at several bin counts; DPClustX then explains the
// planted clustering of each binned dataset. Reported per scheme: the
// DPClustX Quality, the non-private TabEE Quality (the binning's ceiling),
// and the DPClustX-to-TabEE gap — the DP-relevant effect, since coarser
// bins mean larger per-bin counts and relatively smaller noise.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "data/binning.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/metrics.h"

namespace {

using namespace dpclustx;

// Bins every numeric column with the given strategy and bin count.
Dataset BinAll(const synth::NumericSynthetic& numeric, bool equal_width,
               size_t bins) {
  std::vector<Attribute> attrs;
  std::vector<std::vector<ValueCode>> columns;
  for (size_t c = 0; c < numeric.columns.size(); ++c) {
    const std::string name = "num" + std::to_string(c);
    const auto binner =
        equal_width
            ? Binner::EqualWidth(name, numeric.columns[c], bins)
            : Binner::EqualFrequency(name, numeric.columns[c], bins);
    DPX_CHECK_OK(binner.status());
    attrs.push_back(binner->ToAttribute());
    columns.push_back(binner->Encode(numeric.columns[c]));
  }
  Dataset dataset{Schema(std::move(attrs))};
  std::vector<ValueCode> row(columns.size());
  for (size_t r = 0; r < numeric.groups.size(); ++r) {
    for (size_t c = 0; c < columns.size(); ++c) row[c] = columns[c][r];
    dataset.AppendRowUnchecked(row);
  }
  return dataset;
}

}  // namespace

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const double epsilon = 0.2;
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  synth::NumericSyntheticConfig config;
  config.num_rows = 25000;
  config.num_columns = 14;
  config.num_latent_groups = 5;
  config.separation = 1.5;
  config.seed = 7;
  const auto numeric = synth::GenerateNumeric(config);
  DPX_CHECK_OK(numeric.status());
  // The planted groups serve directly as the clustering to explain.
  const std::vector<ClusterId> labels(numeric->groups.begin(),
                                      numeric->groups.end());

  std::printf(
      "Ablation: binning strategies (numeric synthetic, %zu rows x %zu "
      "cols, |C|=%zu, eps=%.2f, %zu runs)\n\n",
      config.num_rows, config.num_columns, config.num_latent_groups, epsilon,
      runs);

  eval::TablePrinter table({"binning", "bins", "DPClustX Q", "TabEE Q",
                            "gap%", "MAE vs TabEE"});
  for (const bool equal_width : {true, false}) {
    for (const size_t bins : {4u, 8u, 16u, 32u}) {
      const Dataset dataset = BinAll(*numeric, equal_width, bins);
      const auto stats =
          StatsCache::Build(dataset, labels, config.num_latent_groups);
      DPX_CHECK_OK(stats.status());
      const AttributeCombination reference =
          RunTabeeSelection(*stats, k, lambda);
      const double tabee_quality =
          eval::SensitiveQuality(*stats, reference, lambda);
      double quality = 0.0, mae = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        const AttributeCombination ac =
            RunDpClustXSelection(*stats, epsilon, k, lambda, 40000 + run);
        quality += eval::SensitiveQuality(*stats, ac, lambda);
        mae += eval::MeanAbsoluteError(ac, reference);
      }
      quality /= static_cast<double>(runs);
      mae /= static_cast<double>(runs);
      table.AddRow(
          {equal_width ? "equal-width" : "equal-frequency",
           std::to_string(bins), eval::TablePrinter::Num(quality),
           eval::TablePrinter::Num(tabee_quality),
           eval::TablePrinter::Num(
               tabee_quality > 0.0
                   ? 100.0 * (tabee_quality - quality) / tabee_quality
                   : 0.0,
               2),
           eval::TablePrinter::Num(mae, 3)});
    }
  }
  table.Print();
  return 0;
}
