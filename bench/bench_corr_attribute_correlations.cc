// §6.2 "Impact of attribute correlations on quality": for each dataset, add
// one correlated twin per attribute at Cramér's V ≈ 0.85, run DPClustX on
// the original and on the extended attribute set, and compare the Quality
// of the selections. The paper reports differences below 2% on average —
// mostly attributable to the diversity term (a twin counts as a distinct
// attribute) — and below 0.1% when only interestingness + sufficiency are
// scored.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const double epsilon = 0.2;
  const size_t k = 3;
  const size_t runs = NumRuns();
  const GlobalWeights equal;                 // full Quality
  const GlobalWeights int_suf{0.5, 0.5, 0.0};  // diversity excluded

  std::printf(
      "Attribute-correlation robustness (twins at Cramer's V ~= 0.85, "
      "eps=%.2f, %zu runs)\n\n",
      epsilon, runs);
  eval::TablePrinter table({"dataset", "Q(original)", "Q(extended)",
                            "diff%", "Q-IntSuf(orig)", "Q-IntSuf(ext)",
                            "diff%"});

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    Dataset original = MakeDataset(dataset_name);
    const auto extended = synth::AddCorrelatedTwins(original, 0.85, 31);
    DPX_CHECK_OK(extended.status());

    // Cluster on the ORIGINAL attributes; both runs explain the same
    // clustering (the paper clusters the augmented data; clustering on the
    // shared originals isolates the explanation effect and keeps the two
    // Quality values comparable).
    const std::vector<ClusterId> labels =
        FitLabels(original, "k-means", clusters, 1);
    const auto stats_orig = StatsCache::Build(original, labels, clusters);
    const auto stats_ext = StatsCache::Build(*extended, labels, clusters);
    DPX_CHECK_OK(stats_orig.status());
    DPX_CHECK_OK(stats_ext.status());

    auto mean_quality = [&](const StatsCache& stats,
                            const GlobalWeights& lambda) {
      double total = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        const AttributeCombination ac =
            RunDpClustXSelection(stats, epsilon, k, lambda, 7000 + run);
        total += eval::SensitiveQuality(stats, ac, lambda);
      }
      return total / static_cast<double>(runs);
    };

    const double q_orig = mean_quality(*stats_orig, equal);
    const double q_ext = mean_quality(*stats_ext, equal);
    const double qis_orig = mean_quality(*stats_orig, int_suf);
    const double qis_ext = mean_quality(*stats_ext, int_suf);
    auto pct = [](double a, double b) {
      return a > 0.0 ? 100.0 * (b - a) / a : 0.0;
    };
    table.AddRow({dataset_name, eval::TablePrinter::Num(q_orig),
                  eval::TablePrinter::Num(q_ext),
                  eval::TablePrinter::Num(pct(q_orig, q_ext), 2),
                  eval::TablePrinter::Num(qis_orig),
                  eval::TablePrinter::Num(qis_ext),
                  eval::TablePrinter::Num(pct(qis_orig, qis_ext), 2)});
  }
  table.Print();
  return 0;
}
