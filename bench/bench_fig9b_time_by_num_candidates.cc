// Figure 9(b): DPClustX execution time vs Stage-1 candidate-set size k
// (log scale in the paper), at the paper's timing default of 9 clusters.
// Shape: sharp growth in k — the Stage-2 search space is k^|C| — which is
// why the framework defaults to k = 3.

#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

constexpr size_t kClusters = 9;

struct Prepared {
  Dataset dataset;
  std::vector<ClusterId> labels;
};

const Prepared& CachedPrepared(const std::string& name,
                               const std::string& method) {
  static auto* cache = new std::map<std::string, Prepared>();
  const std::string key = name + "/" + method;
  auto it = cache->find(key);
  if (it == cache->end()) {
    Dataset dataset = MakeDataset(name);
    std::vector<ClusterId> labels =
        FitLabels(dataset, method, kClusters, 1);
    it = cache->emplace(key,
                        Prepared{std::move(dataset), std::move(labels)})
             .first;
  }
  return it->second;
}

void BM_ExplainByCandidates(benchmark::State& state,
                            const std::string& dataset_name,
                            const std::string& method) {
  const auto k = static_cast<size_t>(state.range(0));
  const Prepared& prepared = CachedPrepared(dataset_name, method);

  DpClustXOptions options;
  options.num_candidates = k;
  options.max_combinations = 1u << 30;  // 5^9 ≈ 1.95M fits comfortably
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation = ExplainDpClustXWithLabels(
        prepared.dataset, prepared.labels, kClusters, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
}

void RegisterAll() {
  for (const std::string& dataset :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    for (const std::string& method : {std::string("k-means"),
                                     std::string("gmm")}) {
      auto* bench = benchmark::RegisterBenchmark(
          ("fig9b/" + dataset + "/" + method).c_str(),
          [dataset, method](benchmark::State& state) {
            BM_ExplainByCandidates(state, dataset, method);
          });
      for (const int k : {1, 2, 3, 4, 5}) bench->Arg(k);
      bench->Unit(benchmark::kMillisecond)->Iterations(2);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
