// Ablation: Stage-1 candidate pruning vs an exhaustive Stage-2.
//
// DPClustX restricts the Stage-2 exponential mechanism to k^|C| candidate
// combinations instead of the full |A|^|C| space (paper §5). The exhaustive
// variant skips Stage-1 and gives its budget to the combination selection
// (same total ε) — the paper's implicit design claim is that pruning buys an
// exponential runtime reduction at little quality cost, because Stage-1
// rarely discards attributes the global optimum needs, while the exhaustive
// EM dilutes its selection probability over a vastly larger space.

#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const double epsilon = 0.2;  // total selection budget in both variants
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  const Dataset dataset = MakeDataset("diabetes");
  std::printf(
      "Ablation: Stage-1 pruning vs exhaustive Stage-2 "
      "(Diabetes, %zu attrs, eps=%.2f, %zu runs)\n\n",
      dataset.num_attributes(), epsilon, runs);

  eval::TablePrinter table({"|C|", "variant", "search space", "time_ms",
                            "Quality", "TabEE"});
  for (const size_t clusters : {2u, 3u, 4u}) {
    const std::vector<ClusterId> labels =
        FitLabels(dataset, "k-means", clusters, 1);
    const auto stats = StatsCache::Build(dataset, labels, clusters);
    DPX_CHECK_OK(stats.status());
    const double tabee_quality = eval::SensitiveQuality(
        *stats, RunTabeeSelection(*stats, k, lambda), lambda);

    // Pruned (standard DPClustX).
    {
      double quality = 0.0;
      eval::WallTimer timer;
      for (size_t run = 0; run < runs; ++run) {
        const AttributeCombination ac =
            RunDpClustXSelection(*stats, epsilon, k, lambda, 20000 + run);
        quality += eval::SensitiveQuality(*stats, ac, lambda);
      }
      const double ms =
          timer.ElapsedSeconds() * 1e3 / static_cast<double>(runs);
      double space = 1.0;
      for (size_t c = 0; c < clusters; ++c) space *= static_cast<double>(k);
      table.AddRow({std::to_string(clusters), "pruned (k=3)",
                    eval::TablePrinter::Num(space, 0),
                    eval::TablePrinter::Num(ms, 2),
                    eval::TablePrinter::Num(quality /
                                            static_cast<double>(runs)),
                    eval::TablePrinter::Num(tabee_quality)});
    }

    // Exhaustive: every cluster's candidate set is the full attribute list;
    // the whole ε goes to the combination EM.
    {
      std::vector<AttrIndex> all(stats->num_attributes());
      std::iota(all.begin(), all.end(), 0);
      const std::vector<std::vector<AttrIndex>> full_sets(clusters, all);
      const auto tables = core_internal::BuildLowSensitivityTables(
          *stats, full_sets, lambda);
      double quality = 0.0;
      eval::WallTimer timer;
      for (size_t run = 0; run < runs; ++run) {
        Rng rng(30000 + run);
        const auto combo = core_internal::SearchCombination(
            full_sets, tables, epsilon, kGlScoreSensitivity,
            /*max_combinations=*/1ull << 40, rng);
        DPX_CHECK_OK(combo.status());
        quality += eval::SensitiveQuality(*stats, *combo, lambda);
      }
      const double ms =
          timer.ElapsedSeconds() * 1e3 / static_cast<double>(runs);
      double space = 1.0;
      for (size_t c = 0; c < clusters; ++c) {
        space *= static_cast<double>(stats->num_attributes());
      }
      table.AddRow({std::to_string(clusters), "exhaustive",
                    eval::TablePrinter::Num(space, 0),
                    eval::TablePrinter::Num(ms, 2),
                    eval::TablePrinter::Num(quality /
                                            static_cast<double>(runs)),
                    eval::TablePrinter::Num(tabee_quality)});
    }
  }
  table.Print();
  return 0;
}
