// Ablation: pluggable M_hist instantiations (paper §2.1 — "DPClustX can be
// instantiated with any DP histogram generation mechanism"). Compares the
// per-bin L1 error of the geometric (default, as in the paper's DiffPrivLib
// setup), Laplace, and hierarchical (Hay et al.) mechanisms on the
// histograms DPClustX actually releases, across the ε_Hist sweep and domain
// sizes, plus the resulting TVD distortion of the explanation's
// inside-vs-outside comparison.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "dp/dp_histogram.h"
#include "eval/harness.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const size_t runs = NumRuns() * 4;  // cheap experiment; smooth the noise

  const Dataset dataset = MakeDataset("diabetes");
  const std::vector<ClusterId> labels =
      FitLabels(dataset, "k-means", clusters, 1);
  const auto stats = StatsCache::Build(dataset, labels, clusters);
  DPX_CHECK_OK(stats.status());

  // Use the largest-domain attribute — the hardest case for per-bin noise.
  AttrIndex attr = 0;
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    if (dataset.schema().attribute(static_cast<AttrIndex>(a)).domain_size() >
        dataset.schema().attribute(attr).domain_size()) {
      attr = static_cast<AttrIndex>(a);
    }
  }
  const Histogram& exact_cluster = stats->cluster_histogram(0, attr);
  const Histogram& exact_full = stats->full_histogram(attr);
  const double exact_tvd = Histogram::Tvd(exact_full, exact_cluster);

  std::printf(
      "Ablation: M_hist mechanisms on attribute `%s` (domain %zu, cluster "
      "size %zu, %zu runs)\n"
      "l1 = mean per-bin error of the cluster histogram; dTVD = mean "
      "|TVD(noisy) - TVD(exact)| of the full-vs-cluster comparison "
      "(exact TVD %.3f)\n\n",
      dataset.schema().attribute(attr).name().c_str(),
      exact_cluster.domain_size(), stats->cluster_size(0), runs, exact_tvd);

  struct Mechanism {
    const char* name;
    HistogramNoise noise;
  };
  const Mechanism mechanisms[] = {
      {"geometric", HistogramNoise::kGeometric},
      {"laplace", HistogramNoise::kLaplace},
      {"hierarchical", HistogramNoise::kHierarchical},
  };

  eval::TablePrinter table(
      {"mechanism", "eps=0.01", "eps=0.05", "eps=0.1", "eps=0.5",
       "dTVD@0.1"});
  for (const Mechanism& mechanism : mechanisms) {
    DpHistogramOptions options;
    options.noise = mechanism.noise;
    std::vector<std::string> row = {mechanism.name};
    double tvd_distortion_at_01 = 0.0;
    for (const double eps : {0.01, 0.05, 0.1, 0.5}) {
      Rng rng(999);
      double l1 = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        const auto noisy =
            ReleaseDpHistogram(exact_cluster, eps, rng, options);
        DPX_CHECK_OK(noisy.status());
        l1 += Histogram::L1Distance(*noisy, exact_cluster) /
              static_cast<double>(exact_cluster.domain_size());
        if (eps == 0.1) {
          const auto noisy_full =
              ReleaseDpHistogram(exact_full, eps, rng, options);
          DPX_CHECK_OK(noisy_full.status());
          tvd_distortion_at_01 +=
              std::abs(Histogram::Tvd(*noisy_full, *noisy) - exact_tvd);
        }
      }
      row.push_back(
          eval::TablePrinter::Num(l1 / static_cast<double>(runs), 2));
    }
    row.push_back(eval::TablePrinter::Num(
        tvd_distortion_at_01 / static_cast<double>(runs), 4));
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
