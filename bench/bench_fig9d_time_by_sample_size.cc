// Figure 9(d): DPClustX execution time vs the percentage of rows sampled.
// The paper's shape: linear growth with a small slope — only the O(n·d)
// statistics pass depends on the row count.

#include <map>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

constexpr size_t kClusters = 9;

struct Prepared {
  Dataset dataset;
  std::vector<ClusterId> labels;
};

const Prepared& CachedPrepared(const std::string& name, int percent) {
  static auto* cache = new std::map<std::string, Prepared>();
  const std::string key = name + "/" + std::to_string(percent);
  auto it = cache->find(key);
  if (it == cache->end()) {
    const Dataset full = MakeDataset(name);
    Rng rng(43);
    Dataset sampled =
        full.SampleRows(static_cast<double>(percent) / 100.0, rng);
    std::vector<ClusterId> labels =
        FitLabels(sampled, "k-means", kClusters, 1);
    it = cache->emplace(key,
                        Prepared{std::move(sampled), std::move(labels)})
             .first;
  }
  return it->second;
}

void BM_ExplainBySampleSize(benchmark::State& state,
                            const std::string& dataset_name) {
  const int percent = static_cast<int>(state.range(0));
  const Prepared& prepared = CachedPrepared(dataset_name, percent);
  DpClustXOptions options;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation = ExplainDpClustXWithLabels(
        prepared.dataset, prepared.labels, kClusters, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
}

void RegisterAll() {
  for (const std::string& dataset :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("fig9d/" + dataset + "/k-means").c_str(),
        [dataset](benchmark::State& state) {
          BM_ExplainBySampleSize(state, dataset);
        });
    for (const int percent : {25, 50, 75, 100}) bench->Arg(percent);
    bench->Unit(benchmark::kMillisecond)->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
