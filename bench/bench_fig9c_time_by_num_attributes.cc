// Figure 9(c): DPClustX execution time vs the percentage of attributes
// used. The paper's shape: linear growth with a modest slope — Stage-1
// scoring is linear in |A|, and Stage-2 is independent of it.

#include <map>
#include <numeric>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

constexpr size_t kClusters = 9;

struct Prepared {
  Dataset dataset;  // attribute-sampled dataset
  std::vector<ClusterId> labels;
};

// Sample `percent`% of attributes uniformly (fixed seed), then cluster on
// the sampled attributes with k-means (the clustering is untimed).
const Prepared& CachedPrepared(const std::string& name, int percent) {
  static auto* cache = new std::map<std::string, Prepared>();
  const std::string key = name + "/" + std::to_string(percent);
  auto it = cache->find(key);
  if (it == cache->end()) {
    const Dataset full = MakeDataset(name);
    Rng rng(42);
    std::vector<AttrIndex> attrs(full.num_attributes());
    std::iota(attrs.begin(), attrs.end(), 0);
    for (size_t i = attrs.size(); i > 1; --i) {
      std::swap(attrs[i - 1], attrs[rng.UniformInt(i)]);
    }
    const size_t keep =
        std::max<size_t>(2, full.num_attributes() * static_cast<size_t>(
                                                        percent) /
                                100);
    attrs.resize(keep);
    Dataset sampled = full.SelectAttributes(attrs);
    std::vector<ClusterId> labels =
        FitLabels(sampled, "k-means", kClusters, 1);
    it = cache->emplace(key,
                        Prepared{std::move(sampled), std::move(labels)})
             .first;
  }
  return it->second;
}

void BM_ExplainByAttributes(benchmark::State& state,
                            const std::string& dataset_name) {
  const int percent = static_cast<int>(state.range(0));
  const Prepared& prepared = CachedPrepared(dataset_name, percent);
  DpClustXOptions options;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation = ExplainDpClustXWithLabels(
        prepared.dataset, prepared.labels, kClusters, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
}

void RegisterAll() {
  for (const std::string& dataset :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    auto* bench = benchmark::RegisterBenchmark(
        ("fig9c/" + dataset + "/k-means").c_str(),
        [dataset](benchmark::State& state) {
          BM_ExplainByAttributes(state, dataset);
        });
    for (const int percent : {25, 50, 75, 100}) bench->Arg(percent);
    bench->Unit(benchmark::kMillisecond)->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
