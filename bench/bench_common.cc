#include "bench_common.h"

#include <cstdlib>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "baselines/dp_naive.h"
#include "baselines/dp_tabee.h"
#include "baselines/tabee.h"
#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/candidate_selection.h"
#include "data/kernels/isa.h"
#include "data/synthetic.h"

namespace dpclustx::bench {

void AddPoolContext() {
  const char* env = std::getenv("DPCLUSTX_THREADS");
  benchmark::AddCustomContext("dpclustx_threads_env", env ? env : "");
  benchmark::AddCustomContext("compute_pool_width",
                              std::to_string(ComputePoolWidth()));
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  // Kernel dispatch state: numbers are not comparable across dispatch
  // levels, so every bench JSON records what this run actually executed.
  benchmark::AddCustomContext(
      "isa_detected", kernels::IsaLevelName(kernels::DetectedIsaLevel()));
  benchmark::AddCustomContext(
      "isa_active", kernels::IsaLevelName(kernels::ActiveIsaLevel()));
  benchmark::AddCustomContext("cpu_features", kernels::CpuFeatureString());
}

size_t NumRuns() {
  if (const char* env = std::getenv("DPX_BENCH_RUNS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<size_t>(value);
  }
  return 5;
}

double Scale() {
  if (const char* env = std::getenv("DPX_BENCH_SCALE")) {
    const double value = std::strtod(env, nullptr);
    if (value > 0.0) return value;
  }
  return 1.0;
}

Dataset MakeDataset(const std::string& name) {
  const double scale = Scale();
  if (name == "census") {
    return std::move(*synth::Generate(
        synth::CensusLike(static_cast<size_t>(50000 * scale))));
  }
  if (name == "diabetes") {
    return std::move(*synth::Generate(
        synth::DiabetesLike(static_cast<size_t>(30000 * scale))));
  }
  if (name == "stackoverflow") {
    return std::move(*synth::Generate(
        synth::StackOverflowLike(static_cast<size_t>(30000 * scale))));
  }
  DPX_CHECK(false) << "unknown dataset '" << name << "'";
  std::abort();
}

std::vector<std::string> MethodsFor(const std::string& dataset_name) {
  if (dataset_name == "census") {
    // The paper skips agglomerative clustering on Census (scalability).
    return {"k-means", "dp-k-means", "k-modes", "gmm"};
  }
  return {"k-means", "dp-k-means", "k-modes", "agglomerative", "gmm"};
}

std::vector<ClusterId> FitLabels(const Dataset& dataset,
                                 const std::string& method, size_t k,
                                 uint64_t seed) {
  if (method == "k-means") {
    KMeansOptions options;
    options.num_clusters = k;
    options.seed = seed;
    const auto clustering = FitKMeans(dataset, options);
    DPX_CHECK_OK(clustering.status());
    return (*clustering)->AssignAll(dataset);
  }
  if (method == "dp-k-means") {
    DpKMeansOptions options;
    options.num_clusters = k;
    options.epsilon = 1.0;  // the paper's clustering budget
    options.seed = seed;
    const auto clustering = FitDpKMeans(dataset, options);
    DPX_CHECK_OK(clustering.status());
    return (*clustering)->AssignAll(dataset);
  }
  if (method == "k-modes") {
    KModesOptions options;
    options.num_clusters = k;
    options.seed = seed;
    const auto clustering = FitKModes(dataset, options);
    DPX_CHECK_OK(clustering.status());
    return (*clustering)->AssignAll(dataset);
  }
  if (method == "agglomerative") {
    AgglomerativeOptions options;
    options.num_clusters = k;
    options.seed = seed;
    const auto clustering = FitAgglomerative(dataset, options);
    DPX_CHECK_OK(clustering.status());
    return (*clustering)->AssignAll(dataset);
  }
  if (method == "gmm") {
    GmmOptions options;
    options.num_components = k;
    options.seed = seed;
    const auto clustering = FitGmm(dataset, options);
    DPX_CHECK_OK(clustering.status());
    return (*clustering)->AssignAll(dataset);
  }
  DPX_CHECK(false) << "unknown method '" << method << "'";
  std::abort();
}

AttributeCombination RunDpClustXSelection(const StatsCache& stats,
                                          double epsilon, size_t k,
                                          const GlobalWeights& lambda,
                                          uint64_t seed) {
  DpClustXOptions options;
  options.epsilon_cand_set = epsilon / 2.0;
  options.epsilon_top_comb = epsilon / 2.0;
  options.generate_histograms = false;
  options.num_candidates = k;
  options.lambda = lambda;
  options.seed = seed;
  // Rebuild from the cached histograms to avoid re-scanning the dataset:
  // ExplainDpClustXWithLabels needs the dataset, so we drive the internal
  // stages directly (identical algorithm; see explainer.cc).
  Rng rng(seed);
  CandidateSelectionOptions stage1;
  stage1.epsilon = options.epsilon_cand_set;
  stage1.k = k;
  stage1.gamma = lambda.ConditionalSingleClusterWeights();
  const auto sets = SelectCandidates(stats, stage1, rng);
  DPX_CHECK_OK(sets.status());
  const auto tables =
      core_internal::BuildLowSensitivityTables(stats, *sets, lambda);
  const auto combo = core_internal::SearchCombination(
      *sets, tables, options.epsilon_top_comb, kGlScoreSensitivity,
      options.max_combinations, rng);
  DPX_CHECK_OK(combo.status());
  return *combo;
}

AttributeCombination RunDpTabeeSelection(const StatsCache& stats,
                                         double epsilon, size_t k,
                                         const GlobalWeights& lambda,
                                         uint64_t seed) {
  // Decorrelate from the other explainers' noise streams at equal seeds.
  seed ^= 0x9E3779B9ULL;
  baselines::DpTabeeOptions options;
  options.epsilon_cand_set = epsilon / 2.0;
  options.epsilon_top_comb = epsilon / 2.0;
  options.num_candidates = k;
  options.lambda = lambda;
  options.seed = seed;
  const auto explanation = baselines::ExplainDpTabee(stats, options);
  DPX_CHECK_OK(explanation.status());
  return explanation->combination;
}

AttributeCombination RunDpNaiveSelection(const StatsCache& stats,
                                         double epsilon, size_t k,
                                         const GlobalWeights& lambda,
                                         uint64_t seed) {
  seed ^= 0x51ED2700ULL;
  baselines::DpNaiveOptions options;
  options.epsilon = epsilon;
  options.num_candidates = k;
  options.lambda = lambda;
  options.seed = seed;
  const auto explanation = baselines::ExplainDpNaive(stats, options);
  DPX_CHECK_OK(explanation.status());
  return explanation->combination;
}

AttributeCombination RunTabeeSelection(const StatsCache& stats, size_t k,
                                       const GlobalWeights& lambda) {
  baselines::TabeeOptions options;
  options.num_candidates = k;
  options.lambda = lambda;
  const auto explanation = baselines::ExplainTabee(stats, options);
  DPX_CHECK_OK(explanation.status());
  return explanation->combination;
}

}  // namespace dpclustx::bench
