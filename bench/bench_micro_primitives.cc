// Micro-benchmarks of the library's hot primitives: noise samplers, the
// selection mechanisms, histogram operations, the statistics pass, and
// quality-function evaluation. These bound the constants behind the
// shape-level results of Figs. 9a–d.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/candidate_selection.h"
#include "core/quality.h"
#include "dp/dp_histogram.h"
#include "dp/exponential.h"
#include "dp/topk.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

void BM_LaplaceSample(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Laplace(2.0));
  }
}
BENCHMARK(BM_LaplaceSample);

void BM_GumbelSample(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gumbel(1.0));
  }
}
BENCHMARK(BM_GumbelSample);

void BM_TwoSidedGeometricSample(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.TwoSidedGeometric(0.1));
  }
}
BENCHMARK(BM_TwoSidedGeometricSample);

void BM_ExponentialMechanism(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> scores(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>(i % 17);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExponentialMechanism(scores, 1.0, 0.1, rng).value());
  }
}
BENCHMARK(BM_ExponentialMechanism)->Arg(64)->Arg(1024);

void BM_OneShotTopK(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> scores(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>((i * 31) % 101);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OneShotTopK(scores, 1.0, 0.1, 3, rng).value());
  }
}
BENCHMARK(BM_OneShotTopK)->Arg(47)->Arg(512);

void BM_DpHistogramRelease(benchmark::State& state) {
  Rng rng(6);
  Histogram exact(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < exact.domain_size(); ++i) {
    exact.set_bin(static_cast<ValueCode>(i), 100.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReleaseDpHistogram(exact, 0.1, rng).value());
  }
}
BENCHMARK(BM_DpHistogramRelease)->Arg(8)->Arg(39)->Arg(256);

void BM_HistogramTvd(benchmark::State& state) {
  Histogram a(39), b(39);
  for (size_t i = 0; i < 39; ++i) {
    a.set_bin(static_cast<ValueCode>(i), static_cast<double>(i + 1));
    b.set_bin(static_cast<ValueCode>(i), static_cast<double>(40 - i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::Tvd(a, b));
  }
}
BENCHMARK(BM_HistogramTvd);

void BM_StatsCacheBuild(benchmark::State& state) {
  static const Dataset& dataset = *new Dataset(MakeDataset("diabetes"));
  static const std::vector<ClusterId>& labels =
      *new std::vector<ClusterId>(FitLabels(dataset, "k-means", 5, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StatsCache::Build(dataset, labels, 5).value());
  }
}
BENCHMARK(BM_StatsCacheBuild)->Unit(benchmark::kMillisecond);

void BM_SingleClusterScore(benchmark::State& state) {
  static const Dataset& dataset = *new Dataset(MakeDataset("diabetes"));
  static const std::vector<ClusterId>& labels =
      *new std::vector<ClusterId>(FitLabels(dataset, "k-means", 5, 1));
  static const StatsCache& stats =
      *new StatsCache(StatsCache::Build(dataset, labels, 5).value());
  const SingleClusterWeights gamma{0.5, 0.5};
  AttrIndex attr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SingleClusterScore(stats, 0, attr, gamma));
    attr = static_cast<AttrIndex>((attr + 1) % stats.num_attributes());
  }
}
BENCHMARK(BM_SingleClusterScore);

void BM_GlobalScore(benchmark::State& state) {
  static const Dataset& dataset = *new Dataset(MakeDataset("diabetes"));
  static const std::vector<ClusterId>& labels =
      *new std::vector<ClusterId>(FitLabels(dataset, "k-means", 5, 1));
  static const StatsCache& stats =
      *new StatsCache(StatsCache::Build(dataset, labels, 5).value());
  GlobalWeights lambda;
  const AttributeCombination ac = {0, 5, 9, 13, 21};
  for (auto _ : state) {
    benchmark::DoNotOptimize(GlobalScore(stats, ac, lambda));
  }
}
BENCHMARK(BM_GlobalScore);

}  // namespace

BENCHMARK_MAIN();
