// Parallel-execution-layer scaling: times the fused sharded StatsCache
// build and the end-to-end explanation at 1/2/4/8 threads on the 250k-row
// Census-like table, plus the seed's per-attribute build as the
// single-thread baseline the fused pass replaces. Results feed
// BENCH_parallel.json (scripts/bench_snapshot.sh) and the EXPERIMENTS.md
// scaling table. Note the determinism contract: every thread count produces
// bitwise-identical statistics, so these runs differ only in wall clock.

#include <cstdlib>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

constexpr size_t kRows = 250000;
constexpr size_t kClusters = 5;

struct Prepared {
  Dataset dataset;
  std::vector<ClusterId> labels;
};

const Prepared& CachedPrepared() {
  static auto* prepared = new Prepared{[] {
    Dataset dataset = std::move(*synth::Generate(synth::CensusLike(kRows)));
    std::vector<ClusterId> labels =
        FitLabels(dataset, "k-means", kClusters, 1);
    return Prepared{std::move(dataset), std::move(labels)};
  }()};
  return *prepared;
}

// The seed's build algorithm: one columnar pass per attribute, full
// histogram by out-of-place Plus. Kept here as the baseline the fused
// single-pass build (StatsCache::Build) is measured against.
void BM_StatsCacheBuildLegacyPerAttribute(benchmark::State& state) {
  const Prepared& prepared = CachedPrepared();
  const Dataset& dataset = prepared.dataset;
  for (auto _ : state) {
    std::vector<Histogram> full_histograms;
    std::vector<std::vector<Histogram>> cluster_histograms;
    full_histograms.reserve(dataset.num_attributes());
    cluster_histograms.reserve(dataset.num_attributes());
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      std::vector<Histogram> per_cluster =
          dataset.ComputeGroupHistograms(attr, prepared.labels, kClusters);
      Histogram full(dataset.schema().attribute(attr).domain_size());
      for (const Histogram& h : per_cluster) full = full.Plus(h);
      full_histograms.push_back(std::move(full));
      cluster_histograms.push_back(std::move(per_cluster));
    }
    benchmark::DoNotOptimize(cluster_histograms);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kRows) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsCacheBuildLegacyPerAttribute)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_StatsCacheBuildFused(benchmark::State& state) {
  const Prepared& prepared = CachedPrepared();
  const auto threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const auto stats = StatsCache::Build(prepared.dataset, prepared.labels,
                                         kClusters, threads);
    DPX_CHECK_OK(stats.status());
    benchmark::DoNotOptimize(stats->num_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kRows) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StatsCacheBuildFused)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_ExplainEndToEnd(benchmark::State& state) {
  const Prepared& prepared = CachedPrepared();
  const auto threads = static_cast<size_t>(state.range(0));
  DpClustXOptions options;
  options.num_threads = threads;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto explanation = ExplainDpClustXWithLabels(
        prepared.dataset, prepared.labels, kClusters, options);
    DPX_CHECK_OK(explanation.status());
    benchmark::DoNotOptimize(explanation->combination);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kRows) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExplainEndToEnd)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  // An 8-wide compute pool even on narrow CI hosts, so the 2/4/8-thread
  // configurations exercise the parallel dispatch path (an externally
  // exported DPCLUSTX_THREADS wins). On a single-core host the extra
  // workers time-share one core: expect flat scaling there, and read the
  // fused-vs-legacy single-thread ratio instead.
  setenv("DPCLUSTX_THREADS", "8", /*overwrite=*/0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dpclustx::bench::AddPoolContext();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
