// Table 1 (appendix "Quality values for different choices of weights"):
// DPClustX vs TabEE under four λ configurations — equal thirds, λ_Int = 0,
// λ_Suf = 0, λ_Div = 0 (the remaining two weights at 1/2) — across cluster
// counts {3, 5, 7} and all clustering methods, on the Diabetes-like and
// Census-like datasets. The paper reports near-zero gaps between DPClustX
// and TabEE in every cell.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const double epsilon = 0.2;
  const size_t k = 3;
  const size_t runs = NumRuns();

  struct WeightConfig {
    const char* name;
    GlobalWeights lambda;
  };
  const WeightConfig configs[] = {
      {"Equal", {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}},
      {"Int=0", {0.0, 0.5, 0.5}},
      {"Suf=0", {0.5, 0.0, 0.5}},
      {"Div=0", {0.5, 0.5, 0.0}},
  };
  // Quality is always evaluated with the same weights used for selection
  // (as in the paper's table).

  std::printf(
      "Table 1: Quality under different weight configurations "
      "(eps=%.2f, %zu runs)\n\n",
      epsilon, runs);

  for (const std::string& dataset_name :
       {std::string("diabetes"), std::string("census")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    eval::TablePrinter table({"#clusters", "method", "explainer", "Equal",
                              "Int=0", "Suf=0", "Div=0"});
    for (size_t clusters : {3u, 5u, 7u}) {
      for (const std::string& method : MethodsFor(dataset_name)) {
        const std::vector<ClusterId> labels =
            FitLabels(dataset, method, clusters, 1);
        const auto stats = StatsCache::Build(dataset, labels, clusters);
        DPX_CHECK_OK(stats.status());

        std::vector<std::string> dpx_row = {std::to_string(clusters), method,
                                            "DPClustX"};
        std::vector<std::string> tabee_row = {std::to_string(clusters),
                                              method, "TabEE"};
        for (const WeightConfig& config : configs) {
          double total = 0.0;
          for (size_t run = 0; run < runs; ++run) {
            const AttributeCombination ac = RunDpClustXSelection(
                *stats, epsilon, k, config.lambda, 6000 + run);
            total += eval::SensitiveQuality(*stats, ac, config.lambda);
          }
          dpx_row.push_back(
              eval::TablePrinter::Num(total / static_cast<double>(runs)));
          tabee_row.push_back(eval::TablePrinter::Num(
              eval::SensitiveQuality(
                  *stats, RunTabeeSelection(*stats, k, config.lambda),
                  config.lambda)));
        }
        table.AddRow(std::move(dpx_row));
        table.AddRow(std::move(tabee_row));
      }
    }
    std::printf("--- dataset: %s ---\n", dataset_name.c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
