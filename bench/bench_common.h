// Shared infrastructure for the experiment binaries that regenerate the
// paper's tables and figures. Each binary prints the same rows/series the
// paper reports; absolute values come from the synthetic substitutes
// (DESIGN.md §1), so the *shapes* — method ordering, crossovers, growth
// rates — are the reproduction target (see EXPERIMENTS.md).
//
// Environment knobs:
//   DPX_BENCH_RUNS   repetitions per configuration (default 5; paper: 10)
//   DPX_BENCH_SCALE  row-count multiplier for the synthetic datasets
//                    (default 1.0)

#ifndef DPCLUSTX_BENCH_BENCH_COMMON_H_
#define DPCLUSTX_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/explainer.h"
#include "core/quality.h"
#include "core/stats_cache.h"
#include "data/dataset.h"

namespace dpclustx::bench {

/// Records the execution environment (DPCLUSTX_THREADS as exported, the
/// resolved compute-pool width, hardware concurrency) as google-benchmark
/// custom context, so every JSON snapshot states the parallelism it was
/// measured under. Call after benchmark::Initialize, before
/// RunSpecifiedBenchmarks.
void AddPoolContext();

/// Repetitions per configuration (DPX_BENCH_RUNS, default 5).
size_t NumRuns();

/// Dataset scale multiplier (DPX_BENCH_SCALE, default 1.0).
double Scale();

/// Builds one of the three paper datasets' synthetic substitutes:
/// "census" (68 attrs), "diabetes" (47 attrs), "stackoverflow" (60 attrs).
/// Row counts are scaled-down versions of the originals (50k/30k/30k at
/// scale 1) so every bench binary finishes in minutes.
Dataset MakeDataset(const std::string& name);

/// The clustering methods of §6.1. Census excludes agglomerative (as in the
/// paper, for scalability).
std::vector<std::string> MethodsFor(const std::string& dataset_name);

/// Fits the named method ("k-means", "dp-k-means", "k-modes",
/// "agglomerative", "gmm") and returns per-row labels.
std::vector<ClusterId> FitLabels(const Dataset& dataset,
                                 const std::string& method, size_t k,
                                 uint64_t seed);

/// Attribute-selection runs (generate_histograms = false), matching the
/// paper's quality experiments where "histogram generation is not needed".
/// `epsilon` is the combined selection budget, split evenly between
/// ε_CandSet and ε_TopComb.
AttributeCombination RunDpClustXSelection(const StatsCache& stats,
                                          double epsilon, size_t k,
                                          const GlobalWeights& lambda,
                                          uint64_t seed);
AttributeCombination RunDpTabeeSelection(const StatsCache& stats,
                                         double epsilon, size_t k,
                                         const GlobalWeights& lambda,
                                         uint64_t seed);
AttributeCombination RunDpNaiveSelection(const StatsCache& stats,
                                         double epsilon, size_t k,
                                         const GlobalWeights& lambda,
                                         uint64_t seed);
AttributeCombination RunTabeeSelection(const StatsCache& stats, size_t k,
                                       const GlobalWeights& lambda);

}  // namespace dpclustx::bench

#endif  // DPCLUSTX_BENCH_BENCH_COMMON_H_
