// Figure 6: Mean absolute error of the selected attribute combination
// against the non-private TabEE reference, as the total selection budget ε
// varies. MAE = fraction of clusters whose selected attribute differs from
// TabEE's choice (correlated attributes count as different — the paper
// notes this inflates MAE even when Quality is near-optimal).

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const std::vector<double> epsilons = {0.001, 0.01, 0.1, 1.0};
  const size_t clusters = 5;
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  std::printf(
      "Figure 6: MAE of selected attributes vs the non-private TabEE "
      "baseline\n(|C|=%zu, k=%zu, %zu runs averaged)\n\n",
      clusters, k, runs);

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes"),
        std::string("stackoverflow")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    std::vector<std::string> headers = {"method", "explainer"};
    for (double eps : epsilons) {
      headers.push_back("eps=" + eval::TablePrinter::Num(eps, 3));
    }
    eval::TablePrinter table(std::move(headers));

    for (const std::string& method : MethodsFor(dataset_name)) {
      const std::vector<ClusterId> labels =
          FitLabels(dataset, method, clusters, 1);
      const auto stats = StatsCache::Build(dataset, labels, clusters);
      DPX_CHECK_OK(stats.status());
      const AttributeCombination reference =
          RunTabeeSelection(*stats, k, lambda);

      struct Explainer {
        const char* name;
        AttributeCombination (*run)(const StatsCache&, double, size_t,
                                    const GlobalWeights&, uint64_t);
      };
      const Explainer explainers[] = {
          {"DPClustX", &RunDpClustXSelection},
          {"DP-Naive", &RunDpNaiveSelection},
          {"DP-TabEE", &RunDpTabeeSelection},
      };
      for (const Explainer& explainer : explainers) {
        std::vector<std::string> row = {method, explainer.name};
        for (double eps : epsilons) {
          double total = 0.0;
          for (size_t run = 0; run < runs; ++run) {
            const AttributeCombination ac =
                explainer.run(*stats, eps, k, lambda, 2000 + run);
            total += eval::MeanAbsoluteError(ac, reference);
          }
          row.push_back(eval::TablePrinter::Num(total /
                                                static_cast<double>(runs),
                                                3));
        }
        table.AddRow(std::move(row));
      }
    }
    std::printf("--- dataset: %s ---\n", dataset_name.c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
