// Ablation: Stage-1 selector — one-shot top-k (the paper's Algorithm 1) vs
// a Sparse-Vector-Technique AboveThreshold scan at the same ε_CandSet.
// Top-k keeps the k noisy-best attributes; SVT keeps the first attributes
// (in scan order) whose score clears a bar of τ·|D_c|. The comparison shows
// where each shines: top-k is robust without tuning, SVT adapts its set
// size to how many genuinely strong attributes exist but is order-biased
// and spends budget on the noisy size estimate.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "core/candidate_selection.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();
  const Dataset dataset = MakeDataset("diabetes");
  const std::vector<ClusterId> labels =
      FitLabels(dataset, "k-means", clusters, 1);
  const auto stats = StatsCache::Build(dataset, labels, clusters);
  DPX_CHECK_OK(stats.status());

  std::printf(
      "Ablation: Stage-1 selector (Diabetes, |C|=%zu, %zu runs). Quality = "
      "full DPClustX Quality with each Stage-1 variant feeding the same "
      "Stage-2 (eps_TopComb = eps_CandSet).\n\n",
      clusters, runs);

  eval::TablePrinter table({"eps_CandSet", "selector", "mean set size",
                            "Quality"});
  for (const double epsilon : {0.05, 0.1, 0.5, 1.0}) {
    // Variant A: one-shot top-k (k = 3).
    {
      double quality = 0.0, set_size = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        Rng rng(50000 + run);
        CandidateSelectionOptions stage1;
        stage1.epsilon = epsilon;
        stage1.k = 3;
        stage1.gamma = lambda.ConditionalSingleClusterWeights();
        const auto sets = SelectCandidates(*stats, stage1, rng);
        DPX_CHECK_OK(sets.status());
        for (const auto& set : *sets) {
          set_size += static_cast<double>(set.size());
        }
        const auto tables =
            core_internal::BuildLowSensitivityTables(*stats, *sets, lambda);
        const auto combo = core_internal::SearchCombination(
            *sets, tables, epsilon, kGlScoreSensitivity, 1 << 20, rng);
        DPX_CHECK_OK(combo.status());
        quality += eval::SensitiveQuality(*stats, *combo, lambda);
      }
      table.AddRow({eval::TablePrinter::Num(epsilon, 2), "top-k(3)",
                    eval::TablePrinter::Num(
                        set_size / static_cast<double>(runs * clusters), 2),
                    eval::TablePrinter::Num(quality /
                                            static_cast<double>(runs))});
    }
    // Variant B: SVT at a 30% bar.
    {
      double quality = 0.0, set_size = 0.0;
      for (size_t run = 0; run < runs; ++run) {
        Rng rng(60000 + run);
        SvtCandidateOptions stage1;
        stage1.epsilon = epsilon;
        stage1.max_candidates = 3;
        stage1.threshold_fraction = 0.3;
        stage1.gamma = lambda.ConditionalSingleClusterWeights();
        const auto sets = SvtSelectCandidates(*stats, stage1, rng);
        DPX_CHECK_OK(sets.status());
        for (const auto& set : *sets) {
          set_size += static_cast<double>(set.size());
        }
        const auto tables =
            core_internal::BuildLowSensitivityTables(*stats, *sets, lambda);
        const auto combo = core_internal::SearchCombination(
            *sets, tables, epsilon, kGlScoreSensitivity, 1 << 20, rng);
        DPX_CHECK_OK(combo.status());
        quality += eval::SensitiveQuality(*stats, *combo, lambda);
      }
      table.AddRow({eval::TablePrinter::Num(epsilon, 2), "svt(0.3)",
                    eval::TablePrinter::Num(
                        set_size / static_cast<double>(runs * clusters), 2),
                    eval::TablePrinter::Num(quality /
                                            static_cast<double>(runs))});
    }
  }
  table.Print();
  return 0;
}
