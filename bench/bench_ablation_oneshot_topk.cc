// Ablation: the one-shot top-k mechanism vs k iterated exponential
// mechanisms in Stage-1 (paper §1/§5.1 — "computes the noisy scores ONCE
// ... further reduces execution times"). Both are distributionally
// identical releases at the same ε; the ablation shows the cost difference
// (one noisy pass vs k passes with re-noising) and confirms equal selection
// quality.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "dp/topk.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const double epsilon = 0.1;  // ε_CandSet
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  const Dataset dataset = MakeDataset("diabetes");
  const std::vector<ClusterId> labels =
      FitLabels(dataset, "k-means", clusters, 1);
  const auto stats = StatsCache::Build(dataset, labels, clusters);
  DPX_CHECK_OK(stats.status());
  const SingleClusterWeights gamma = lambda.ConditionalSingleClusterWeights();

  std::printf(
      "Ablation: one-shot top-k vs iterated EM in Stage-1 "
      "(Diabetes, |C|=%zu, eps=%.2f, %zu runs)\n"
      "Selection time covers all %zu per-cluster top-k draws over %zu "
      "attributes; quality is the mean true SScore of the selected sets.\n\n",
      clusters, epsilon, runs, clusters, stats->num_attributes());

  eval::TablePrinter table({"k", "mechanism", "time_us", "mean SScore"});
  for (const size_t k : {1u, 2u, 3u, 4u, 5u}) {
    for (const bool oneshot : {true, false}) {
      double total_score = 0.0;
      eval::WallTimer timer;
      // Repeat the whole Stage-1 sweep many times so per-call overhead is
      // measurable.
      constexpr size_t kTimingReps = 200;
      size_t scored_runs = 0;
      for (size_t rep = 0; rep < kTimingReps; ++rep) {
        Rng rng(10000 + rep);
        const double eps_topk =
            epsilon / static_cast<double>(clusters);
        for (size_t c = 0; c < clusters; ++c) {
          std::vector<double> scores(stats->num_attributes());
          for (size_t a = 0; a < scores.size(); ++a) {
            scores[a] = SingleClusterScore(*stats,
                                           static_cast<ClusterId>(c),
                                           static_cast<AttrIndex>(a), gamma);
          }
          const auto selected =
              oneshot ? OneShotTopK(scores, kSScoreSensitivity, eps_topk, k,
                                    rng)
                      : IteratedExponentialTopK(scores, kSScoreSensitivity,
                                                eps_topk, k, rng);
          DPX_CHECK_OK(selected.status());
          if (rep < runs) {
            for (size_t index : *selected) total_score += scores[index];
            ++scored_runs;
          }
        }
      }
      const double elapsed_us =
          timer.ElapsedSeconds() * 1e6 / kTimingReps;
      table.AddRow({std::to_string(k),
                    oneshot ? "one-shot" : "iterated-EM",
                    eval::TablePrinter::Num(elapsed_us, 1),
                    eval::TablePrinter::Num(
                        total_score / static_cast<double>(scored_runs * k),
                        2)});
    }
  }
  table.Print();
  return 0;
}
