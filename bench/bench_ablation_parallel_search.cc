// Ablation: multithreaded Stage-2 search. The k^|C| enumeration dominates
// runtime past ~11 clusters (Fig. 9a); it shards perfectly across threads.
// This bench measures the serial vs parallel search on large combination
// spaces and verifies (in exact mode) that the results agree.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "common/logging.h"
#include "core/candidate_selection.h"
#include "eval/harness.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const Dataset dataset = MakeDataset("diabetes");
  std::printf(
      "Ablation: serial vs multithreaded Stage-2 combination search "
      "(Diabetes, k=3)\n"
      "(this host reports %u hardware threads; speedups only materialize "
      "with >1 core — the exact-match column verifies correctness "
      "regardless)\n\n",
      std::thread::hardware_concurrency());

  eval::TablePrinter table({"|C|", "combinations", "serial_ms", "2thr_ms",
                            "4thr_ms", "8thr_ms", "exact match"});
  GlobalWeights lambda;
  for (const size_t clusters : {11u, 13u, 14u}) {
    const std::vector<ClusterId> labels =
        FitLabels(dataset, "k-means", clusters, 1);
    const auto stats = StatsCache::Build(dataset, labels, clusters);
    DPX_CHECK_OK(stats.status());
    const auto sets = SelectCandidatesExact(*stats, 3, {0.5, 0.5});
    DPX_CHECK_OK(sets.status());
    const auto tables =
        core_internal::BuildLowSensitivityTables(*stats, *sets, lambda);

    double combos = 1.0;
    for (size_t c = 0; c < clusters; ++c) combos *= 3.0;

    Rng rng(1);
    eval::WallTimer timer;
    const auto serial = core_internal::SearchCombination(
        *sets, tables, 0.0, 1.0, 1ull << 40, rng);
    const double serial_ms = timer.ElapsedSeconds() * 1e3;
    DPX_CHECK_OK(serial.status());

    std::vector<std::string> row = {std::to_string(clusters),
                                    eval::TablePrinter::Num(combos, 0),
                                    eval::TablePrinter::Num(serial_ms, 1)};
    bool all_match = true;
    for (const size_t threads : {2u, 4u, 8u}) {
      Rng thread_rng(1);
      timer.Reset();
      const auto parallel = core_internal::SearchCombinationParallel(
          *sets, tables, 0.0, 1.0, 1ull << 40, thread_rng, threads);
      const double ms = timer.ElapsedSeconds() * 1e3;
      DPX_CHECK_OK(parallel.status());
      all_match = all_match && (*parallel == *serial);
      row.push_back(eval::TablePrinter::Num(ms, 1));
    }
    row.push_back(all_match ? "yes" : "NO");
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}
