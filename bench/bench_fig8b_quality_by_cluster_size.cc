// Figure 8(b): Quality of the selected attributes as the average cluster
// size shrinks. An η-fraction of each cluster is sampled (η from 10^-3 to
// 1) and the explainers run on the sample. The paper's findings: the
// non-private TabEE stays flat, while the DP methods degrade once average
// cluster sizes drop into the low thousands — small count differences get
// masked by the DP noise.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/rng.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const std::vector<double> etas = {0.001, 0.00316, 0.01, 0.0316, 0.1,
                                    0.316, 1.0};
  const size_t clusters = 5;
  const double epsilon = 0.2;
  const size_t k = 3;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  std::printf(
      "Figure 8b: Quality vs per-cluster sample fraction eta (k-means, "
      "eps=%.2f, %zu runs)\n\n",
      epsilon, runs);

  for (const std::string& dataset_name :
       {std::string("census"), std::string("diabetes")}) {
    const Dataset dataset = MakeDataset(dataset_name);
    const std::vector<ClusterId> full_labels =
        FitLabels(dataset, "k-means", clusters, 1);

    std::vector<std::string> headers = {"explainer"};
    for (double eta : etas) {
      headers.push_back("eta=" + eval::TablePrinter::Num(eta, 3));
    }
    eval::TablePrinter table(std::move(headers));
    std::vector<std::vector<std::string>> rows(4);
    rows[0] = {"TabEE"};
    rows[1] = {"DPClustX"};
    rows[2] = {"DP-Naive"};
    rows[3] = {"DP-TabEE"};
    std::vector<std::string> size_row = {"avg cluster size"};

    for (double eta : etas) {
      // Per-cluster Bernoulli sampling preserves the cluster proportions.
      Rng sample_rng(77);
      std::vector<uint32_t> kept;
      for (size_t r = 0; r < dataset.num_rows(); ++r) {
        if (sample_rng.Bernoulli(eta)) {
          kept.push_back(static_cast<uint32_t>(r));
        }
      }
      if (kept.size() < clusters * 2) {
        for (auto& row : rows) row.push_back("-");
        size_row.push_back("-");
        continue;
      }
      const Dataset sample = dataset.SelectRows(kept);
      std::vector<ClusterId> labels;
      labels.reserve(kept.size());
      for (uint32_t r : kept) labels.push_back(full_labels[r]);
      const auto stats = StatsCache::Build(sample, labels, clusters);
      DPX_CHECK_OK(stats.status());
      size_row.push_back(eval::TablePrinter::Num(
          static_cast<double>(sample.num_rows()) /
              static_cast<double>(clusters),
          0));

      rows[0].push_back(eval::TablePrinter::Num(eval::SensitiveQuality(
          *stats, RunTabeeSelection(*stats, k, lambda), lambda)));
      struct Explainer {
        size_t row;
        AttributeCombination (*run)(const StatsCache&, double, size_t,
                                    const GlobalWeights&, uint64_t);
      };
      const Explainer explainers[] = {{1, &RunDpClustXSelection},
                                      {2, &RunDpNaiveSelection},
                                      {3, &RunDpTabeeSelection}};
      for (const Explainer& explainer : explainers) {
        double total = 0.0;
        for (size_t run = 0; run < runs; ++run) {
          total += eval::SensitiveQuality(
              *stats,
              explainer.run(*stats, epsilon, k, lambda, 5000 + run),
              lambda);
        }
        rows[explainer.row].push_back(
            eval::TablePrinter::Num(total / static_cast<double>(runs)));
      }
    }
    table.AddRow(std::move(size_row));
    for (auto& row : rows) table.AddRow(std::move(row));
    std::printf("--- dataset: %s ---\n", dataset_name.c_str());
    table.Print();
    std::printf("\n");
  }
  return 0;
}
