// Closed-loop throughput comparison: one dpclustx_serve worker versus the
// dpclustx_router fronting N shard workers, over the real line protocol and
// real pipes (fork/exec, same as production).
//
// The workload is budget-charged `explain` releases spread across several
// datasets — every request a distinct ε so the release cache never
// short-circuits the candidate search — driven through a pipelined window
// of in-flight requests (the protocol allows out-of-order responses, so a
// windowed client measures server capacity rather than round-trip
// latency). Datasets shard across workers by consistent hash, so on a
// multi-core host the router configuration gets real multi-process
// parallelism; on a single core the interesting number is the router's
// overhead (speedup ~1.0x means the extra hop costs nothing at this
// request weight).
//
// Usage:
//   bench_router_throughput [--workers N] [--requests N] [--window N]
//                           [--rows N] [--datasets N] [--state-dir DIR]
//
// Prints one human line per configuration and a final machine-readable
// JSON line (consumed by scripts/bench_snapshot.sh → BENCH_service.json):
//   {"bench":"router_vs_single","single_rps":...,"router_rps":...,...}

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/status.h"

namespace {

using Clock = std::chrono::steady_clock;
using dpclustx::JsonValue;
using dpclustx::StatusOr;

struct BenchConfig {
  size_t workers = 2;
  size_t requests = 400;
  size_t window = 16;  // in-flight pipeline depth
  size_t rows = 2000;
  size_t datasets = 4;
  std::string state_dir = "/tmp/dpclustx_router_bench";
};

std::string BuildDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  DPX_CHECK(n > 0);
  buf[n] = '\0';
  std::string path(buf);                    // .../build/bench/bench_...
  path = path.substr(0, path.rfind('/'));   // .../build/bench
  return path.substr(0, path.rfind('/'));   // .../build
}

/// A line-protocol child (serve or router) driven through a pipelined
/// request window.
class ProtocolChild {
 public:
  explicit ProtocolChild(const std::vector<std::string>& args) {
    int to_child[2];
    int from_child[2];
    DPX_CHECK(::pipe(to_child) == 0 && ::pipe(from_child) == 0);
    pid_ = ::fork();
    DPX_CHECK(pid_ >= 0);
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ~ProtocolChild() {
    if (stdin_fd_ >= 0) ::close(stdin_fd_);
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
  }

  void Send(const std::string& line) {
    const std::string payload = line + "\n";
    size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(stdin_fd_, payload.data() + off, payload.size() - off);
      DPX_CHECK(n > 0) << "write to child failed";
      off += static_cast<size_t>(n);
    }
  }

  /// Blocks until the response with string id `id` arrives.
  JsonValue Await(const std::string& id) {
    for (;;) {
      auto it = received_.find(id);
      if (it != received_.end()) {
        JsonValue response = it->second;
        received_.erase(it);
        return response;
      }
      ReadSome();
    }
  }

  /// Drains one readable chunk, parsing any complete lines into received_.
  void ReadSome() {
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    DPX_CHECK(::poll(&pfd, 1, 30000) > 0) << "child response timeout";
    char chunk[8192];
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    DPX_CHECK(n > 0) << "child closed its stdout";
    buffer_.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer_.find('\n')) != std::string::npos) {
      const std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      StatusOr<JsonValue> parsed = JsonValue::Parse(line);
      if (!parsed.ok() || parsed->type() != JsonValue::Type::kObject ||
          !parsed->Has("id") ||
          parsed->at("id").type() != JsonValue::Type::kString) {
        continue;
      }
      received_[parsed->at("id").AsString()] = std::move(*parsed);
    }
  }

  size_t pending() const { return received_.size(); }

 private:
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
  std::map<std::string, JsonValue> received_;
};

void Require(const JsonValue& response) {
  DPX_CHECK(response.at("ok").AsBool()) << response.Dump();
}

/// Loads/clusters `datasets` synthetic sets and opens one big session per
/// dataset. Setup ops are awaited one by one (ordering matters here).
void SetUpWorkload(ProtocolChild& child, const BenchConfig& config) {
  for (size_t d = 0; d < config.datasets; ++d) {
    const std::string name = "bench-d" + std::to_string(d);
    char request[512];
    std::snprintf(request, sizeof(request),
                  R"({"op":"load_dataset","name":"%s","source":"synthetic",)"
                  R"("generator":"diabetes","rows":%zu,"seed":%zu,)"
                  R"("id":"setup-load-%zu"})",
                  name.c_str(), config.rows, d + 1, d);
    child.Send(request);
    Require(child.Await("setup-load-" + std::to_string(d)));
    std::snprintf(request, sizeof(request),
                  R"({"op":"cluster","dataset":"%s","method":"k-means",)"
                  R"("k":4,"seed":3,"id":"setup-cluster-%zu"})",
                  name.c_str(), d);
    child.Send(request);
    Require(child.Await("setup-cluster-" + std::to_string(d)));
    std::snprintf(request, sizeof(request),
                  R"({"op":"create_session","dataset":"%s",)"
                  R"("session":"bench-s%zu","epsilon":100000.0,)"
                  R"("id":"setup-session-%zu"})",
                  name.c_str(), d, d);
    child.Send(request);
    Require(child.Await("setup-session-" + std::to_string(d)));
  }
}

/// Pipelined closed-loop run: keeps `window` explain releases in flight
/// until `requests` have completed. Every request carries a distinct ε
/// split, so each one misses the cache and pays for the full candidate
/// search + exponential mechanism — the compute that sharding across
/// worker processes actually parallelizes.
double RunExplainLoad(ProtocolChild& child, const BenchConfig& config) {
  size_t sent = 0;
  size_t done = 0;
  size_t next_await = 0;
  const auto start = Clock::now();
  auto send_one = [&](size_t i) {
    const size_t d = i % config.datasets;
    char request[384];
    std::snprintf(request, sizeof(request),
                  R"({"op":"explain","session":"bench-s%zu",)"
                  R"("epsilon":%.8f,"id":"h%zu"})",
                  d, 0.3 + 1e-7 * static_cast<double>(i), i);
    child.Send(request);
  };
  while (sent < config.window && sent < config.requests) send_one(sent++);
  while (done < config.requests) {
    Require(child.Await("h" + std::to_string(next_await++)));
    ++done;
    if (sent < config.requests) send_one(sent++);
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(config.requests) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    auto size_flag = [&](const char* name, size_t* out) {
      if (std::strcmp(argv[i], name) != 0) return false;
      DPX_CHECK(i + 1 < argc) << name << " needs a value";
      *out = static_cast<size_t>(std::stoull(argv[++i]));
      return true;
    };
    if (size_flag("--workers", &config.workers) ||
        size_flag("--requests", &config.requests) ||
        size_flag("--window", &config.window) ||
        size_flag("--rows", &config.rows) ||
        size_flag("--datasets", &config.datasets)) {
      continue;
    }
    if (std::strcmp(argv[i], "--state-dir") == 0 && i + 1 < argc) {
      config.state_dir = argv[++i];
      continue;
    }
    std::cerr << "unknown flag '" << argv[i] << "'\n";
    return 2;
  }
  ::signal(SIGPIPE, SIG_IGN);
  const std::string build = BuildDir();
  const std::string serve = build + "/tools/dpclustx_serve";
  const std::string router = build + "/tools/dpclustx_router";

  // Both configurations run with full durability (snapshot + audit
  // journal), so the comparison isolates the router topology rather than
  // charging journal flushes to one side only. State dirs must be clean:
  // restored ledgers from a previous run would refuse re-loading datasets.
  const std::string scrub = "rm -rf " + config.state_dir +
                            " && mkdir -p " + config.state_dir;
  DPX_CHECK(std::system(scrub.c_str()) == 0);

  // Baseline: one durable worker, no router in the path.
  double single_rps = 0.0;
  {
    ProtocolChild child({serve,
                         "--snapshot", config.state_dir + "/single.snap",
                         "--audit-journal",
                         config.state_dir + "/single.journal"});
    SetUpWorkload(child, config);
    single_rps = RunExplainLoad(child, config);
    std::printf("single worker        : %8.1f req/s (%zu explain releases)\n",
                single_rps, config.requests);
  }
  double router_rps = 0.0;
  {
    ProtocolChild child({router, "--workers", std::to_string(config.workers),
                         "--serve", serve, "--state-dir", config.state_dir});
    SetUpWorkload(child, config);
    router_rps = RunExplainLoad(child, config);
    std::printf("router x%zu workers   : %8.1f req/s (%zu explain releases)\n",
                config.workers, router_rps, config.requests);
  }
  std::printf("router speedup       : %8.2fx\n", router_rps / single_rps);

  JsonValue result = JsonValue::Object();
  result.Set("bench", JsonValue::String("router_vs_single"));
  result.Set("workers", JsonValue::Number(static_cast<double>(config.workers)));
  result.Set("requests",
             JsonValue::Number(static_cast<double>(config.requests)));
  result.Set("window", JsonValue::Number(static_cast<double>(config.window)));
  result.Set("datasets",
             JsonValue::Number(static_cast<double>(config.datasets)));
  result.Set("rows", JsonValue::Number(static_cast<double>(config.rows)));
  result.Set("single_rps", JsonValue::Number(single_rps));
  result.Set("router_rps", JsonValue::Number(router_rps));
  result.Set("speedup", JsonValue::Number(router_rps / single_rps));
  std::printf("%s\n", result.Dump().c_str());
  return 0;
}
