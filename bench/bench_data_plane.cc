// Data-plane microbenchmarks: rows/sec for the width-dispatched kernels —
// histogram build, dataset embedding, and batched cluster assignment — on
// the 250k-row Census-like table, at the adaptive narrow layout vs. the
// pre-narrowing uint32 layout (WidthPolicy::kForce32, the seed's storage),
// plus a pure width sweep (u8/u16/u32 columns with identical code streams).
//
// Every kernel is bitwise-deterministic and layout-independent in its
// *output* (tests/dataset_layout_test), so these runs differ only in memory
// traffic: the adaptive/force32 ratio is the payoff of narrow codes, and
// the per-row variants show what the batched virtuals replaced. Results
// feed BENCH_data_plane.json (scripts/bench_snapshot.sh) and the
// EXPERIMENTS.md data-plane table.

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/clustering.h"
#include "cluster/gmm.h"
#include "common/logging.h"
#include "data/column.h"
#include "data/dataset.h"
#include "data/kernels/isa.h"
#include "data/schema.h"
#include "data/synthetic.h"

namespace {

using namespace dpclustx;
using namespace dpclustx::bench;

constexpr size_t kRows = 250000;
constexpr size_t kClusters = 5;
constexpr size_t kWidthSweepAttrs = 16;

// Benchmark arg 0/1 → adaptive/force32 (named via ArgName below).
WidthPolicy PolicyArg(const benchmark::State& state) {
  return state.range(0) == 0 ? WidthPolicy::kAdaptive : WidthPolicy::kForce32;
}

Dataset Rewiden(const Dataset& dataset, WidthPolicy policy) {
  Dataset out(dataset.schema(), policy);
  out.Reserve(dataset.num_rows());
  std::vector<ValueCode> row;
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    dataset.RowInto(r, &row);
    out.AppendRowUnchecked(row);
  }
  return out;
}

struct Prepared {
  Dataset adaptive;
  Dataset force32;
  std::vector<ClusterId> labels;
  std::vector<std::vector<ValueCode>> modes;
};

// Census-like table in both layouts. Labels come from a real k-means fit
// (as in bench_parallel_scaling): fitted labels are skewed and run-heavy,
// which is exactly the bin-increment pattern the histogram kernels face in
// production — synthetic round-robin labels would hide it.
const Prepared& Census() {
  static auto* prepared = new Prepared{[] {
    Dataset adaptive = std::move(*synth::Generate(synth::CensusLike(kRows)));
    Dataset force32 = Rewiden(adaptive, WidthPolicy::kForce32);
    std::vector<ClusterId> labels =
        FitLabels(adaptive, "k-means", kClusters, 1);
    std::vector<std::vector<ValueCode>> modes;
    for (size_t c = 0; c < kClusters; ++c) modes.push_back(adaptive.Row(c));
    return Prepared{std::move(adaptive), std::move(force32),
                    std::move(labels), std::move(modes)};
  }()};
  return *prepared;
}

const Dataset& CensusAt(WidthPolicy policy) {
  return policy == WidthPolicy::kAdaptive ? Census().adaptive
                                          : Census().force32;
}

// One dataset per storage width, same row count and code stream shape:
// codes cycle through the domain so every cache line of the column is
// touched. Domain sizes sit just at the width boundaries (256 → u8,
// 65536 → u16, 65537 → u32).
Dataset MakeWidthDataset(size_t domain) {
  std::vector<Attribute> attrs;
  for (size_t a = 0; a < kWidthSweepAttrs; ++a) {
    attrs.push_back(Attribute::WithAnonymousDomain(
        "w" + std::to_string(domain) + "_" + std::to_string(a), domain));
  }
  Dataset out{Schema(std::move(attrs))};
  out.Reserve(kRows);
  std::vector<ValueCode> row(kWidthSweepAttrs);
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t a = 0; a < kWidthSweepAttrs; ++a) {
      row[a] = static_cast<ValueCode>((r * 7 + a * 131) % domain);
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

const Dataset& WidthDataset(size_t domain) {
  static auto* u8 = new Dataset(MakeWidthDataset(256));
  static auto* u16 = new Dataset(MakeWidthDataset(65536));
  static auto* u32 = new Dataset(MakeWidthDataset(65537));
  switch (domain) {
    case 256: return *u8;
    case 65536: return *u16;
    default: return *u32;
  }
}

void SetRowsProcessed(benchmark::State& state) {
  state.SetItemsProcessed(static_cast<int64_t>(kRows) *
                          static_cast<int64_t>(state.iterations()));
}

// --- Census-like, adaptive vs force32 -------------------------------------

// The StatsCache-shaped build: per-cluster histograms of every attribute in
// one fused sweep (the dominant cost of explanation preprocessing).
void BM_CensusGroupHistograms(benchmark::State& state) {
  const Dataset& dataset = CensusAt(PolicyArg(state));
  for (auto _ : state) {
    const auto hists =
        dataset.ComputeAllGroupHistograms(Census().labels, kClusters,
                                          /*max_threads=*/1);
    DPX_CHECK_OK(hists.status());
    benchmark::DoNotOptimize(hists->size());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusGroupHistograms)
    ->ArgName("force32")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

// The seed's histogram build: one columnar pass per attribute
// (ComputeGroupHistograms, still the unbanked per-attribute kernel) on the
// seed's uint32 layout — the pre-PR path the fused banked sweep replaces.
void BM_CensusGroupHistogramsLegacyPerAttribute(benchmark::State& state) {
  const Dataset& dataset = Census().force32;
  for (auto _ : state) {
    std::vector<std::vector<Histogram>> hists;
    hists.reserve(dataset.num_attributes());
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      hists.push_back(dataset.ComputeGroupHistograms(
          static_cast<AttrIndex>(a), Census().labels, kClusters));
    }
    benchmark::DoNotOptimize(hists.size());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusGroupHistogramsLegacyPerAttribute)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

// Full per-attribute histograms (the ungrouped scan used by EDA paths).
void BM_CensusFullHistograms(benchmark::State& state) {
  const Dataset& dataset = CensusAt(PolicyArg(state));
  for (auto _ : state) {
    double total = 0.0;
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      total +=
          dataset.ComputeHistogram(static_cast<AttrIndex>(a)).Total();
    }
    benchmark::DoNotOptimize(total);
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusFullHistograms)
    ->ArgName("force32")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_CensusEmbed(benchmark::State& state) {
  const Dataset& dataset = CensusAt(PolicyArg(state));
  for (auto _ : state) {
    const std::vector<double> points = EmbedDataset(dataset);
    benchmark::DoNotOptimize(points.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusEmbed)
    ->ArgName("force32")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// The seed's embedding: one whole-column sweep per attribute over the
// uint32 codes, re-touching every row-major output cache line once per
// attribute — the pre-PR path the L1-tiled EmbedRows replaces. Identical
// arithmetic (offset + scale·code), identical output.
void BM_CensusEmbedLegacyColumnSweep(benchmark::State& state) {
  const Dataset& dataset = Census().force32;
  const size_t rows = dataset.num_rows();
  const size_t dims = dataset.num_attributes();
  std::vector<double> scales, offsets;
  EmbedScales(dataset.schema(), &scales, &offsets);
  for (auto _ : state) {
    std::vector<double> points(rows * dims);
    for (size_t a = 0; a < dims; ++a) {
      const uint32_t* col = dataset.column(static_cast<AttrIndex>(a)).u32();
      for (size_t row = 0; row < rows; ++row) {
        points[row * dims + a] =
            offsets[a] + scales[a] * static_cast<double>(col[row]);
      }
    }
    benchmark::DoNotOptimize(points.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusEmbedLegacyColumnSweep)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CensusKModesAssign(benchmark::State& state) {
  const Dataset& dataset = CensusAt(PolicyArg(state));
  const ModeClustering clustering(dataset.schema(), Census().modes,
                                  "bench-modes");
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusKModesAssign)
    ->ArgName("force32")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// The seed's assignment strategy — one virtual Assign per row, one
// materialized tuple per row — on the seed's uint32 layout. This is the
// baseline both batched variants above are measured against.
void BM_CensusKModesAssignPerRowLegacy(benchmark::State& state) {
  const Dataset& dataset = Census().force32;
  const ModeClustering clustering(dataset.schema(), Census().modes,
                                  "bench-modes");
  for (auto _ : state) {
    std::vector<ClusterId> labels(dataset.num_rows());
    for (size_t row = 0; row < dataset.num_rows(); ++row) {
      labels[row] = clustering.Assign(dataset.Row(row));
    }
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusKModesAssignPerRowLegacy)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CensusCentroidAssign(benchmark::State& state) {
  const Dataset& dataset = CensusAt(PolicyArg(state));
  std::vector<std::vector<double>> centers;
  for (size_t c = 0; c < kClusters; ++c) {
    centers.push_back(EmbedTuple(dataset.schema(), Census().modes[c]));
  }
  const CentroidClustering clustering(dataset.schema(), std::move(centers),
                                      "bench-centroids");
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_CensusCentroidAssign)
    ->ArgName("force32")->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// --- Pure width sweep: identical kernels, only the code width varies ------

void BM_WidthHistograms(benchmark::State& state) {
  const Dataset& dataset = WidthDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    double total = 0.0;
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      total +=
          dataset.ComputeHistogram(static_cast<AttrIndex>(a)).Total();
    }
    benchmark::DoNotOptimize(total);
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_WidthHistograms)
    ->ArgName("domain")->Arg(256)->Arg(65536)->Arg(65537)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_WidthEmbed(benchmark::State& state) {
  const Dataset& dataset = WidthDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const std::vector<double> points = EmbedDataset(dataset);
    benchmark::DoNotOptimize(points.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_WidthEmbed)
    ->ArgName("domain")->Arg(256)->Arg(65536)->Arg(65537)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_WidthModesAssign(benchmark::State& state) {
  const Dataset& dataset = WidthDataset(static_cast<size_t>(state.range(0)));
  std::vector<std::vector<ValueCode>> modes;
  for (size_t c = 0; c < kClusters; ++c) modes.push_back(dataset.Row(c));
  const ModeClustering clustering(dataset.schema(), std::move(modes),
                                  "bench-modes");
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}
BENCHMARK(BM_WidthModesAssign)
    ->ArgName("domain")->Arg(256)->Arg(65536)->Arg(65537)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

// --- Forced-ISA sweep: same kernels, dispatch clamped per level -----------
//
// Registered dynamically in main() for every level the host supports
// (generic → detected), so BENCH_data_plane.json carries a per-ISA entry of
// each hot kernel. The kernels are bitwise-identical across levels
// (tests/dataset_layout_test), so rows/sec is the only thing that moves.

void IsaGroupHistograms(benchmark::State& state, kernels::IsaLevel level) {
  kernels::ScopedForceIsa force(level);
  const Dataset& dataset = Census().adaptive;
  for (auto _ : state) {
    const auto hists =
        dataset.ComputeAllGroupHistograms(Census().labels, kClusters,
                                          /*max_threads=*/1);
    DPX_CHECK_OK(hists.status());
    benchmark::DoNotOptimize(hists->size());
  }
  SetRowsProcessed(state);
}

void IsaEmbed(benchmark::State& state, kernels::IsaLevel level) {
  kernels::ScopedForceIsa force(level);
  const Dataset& dataset = Census().adaptive;
  for (auto _ : state) {
    const std::vector<double> points = EmbedDataset(dataset);
    benchmark::DoNotOptimize(points.data());
  }
  SetRowsProcessed(state);
}

void IsaKModesAssign(benchmark::State& state, kernels::IsaLevel level) {
  kernels::ScopedForceIsa force(level);
  const Dataset& dataset = Census().adaptive;
  const ModeClustering clustering(dataset.schema(), Census().modes,
                                  "bench-modes");
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}

void IsaCentroidAssign(benchmark::State& state, kernels::IsaLevel level) {
  kernels::ScopedForceIsa force(level);
  const Dataset& dataset = Census().adaptive;
  std::vector<std::vector<double>> centers;
  for (size_t c = 0; c < kClusters; ++c) {
    centers.push_back(EmbedTuple(dataset.schema(), Census().modes[c]));
  }
  const CentroidClustering clustering(dataset.schema(), std::move(centers),
                                      "bench-centroids");
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}

// GMM-E-step-shaped load: per-row quadratic forms against k diagonal
// components over the embedded tile (the quad_form kernel dominates).
void IsaGmmScore(benchmark::State& state, kernels::IsaLevel level) {
  kernels::ScopedForceIsa force(level);
  const Dataset& dataset = Census().adaptive;
  const size_t dims = dataset.num_attributes();
  std::vector<double> log_weights(kClusters,
                                  -std::log(static_cast<double>(kClusters)));
  std::vector<std::vector<double>> means, vars;
  for (size_t c = 0; c < kClusters; ++c) {
    means.push_back(EmbedTuple(dataset.schema(), Census().modes[c]));
    vars.emplace_back(dims, 0.05 + 0.01 * static_cast<double>(c));
  }
  const GmmClustering clustering(dataset.schema(), std::move(log_weights),
                                 std::move(means), std::move(vars));
  for (auto _ : state) {
    const std::vector<ClusterId> labels = clustering.AssignAll(dataset);
    benchmark::DoNotOptimize(labels.data());
  }
  SetRowsProcessed(state);
}

void RegisterIsaSweep() {
  using Fn = void (*)(benchmark::State&, kernels::IsaLevel);
  const std::pair<const char*, Fn> benches[] = {
      {"BM_IsaGroupHistograms", IsaGroupHistograms},
      {"BM_IsaEmbed", IsaEmbed},
      {"BM_IsaKModesAssign", IsaKModesAssign},
      {"BM_IsaCentroidAssign", IsaCentroidAssign},
      {"BM_IsaGmmScore", IsaGmmScore},
  };
  for (const auto& [name, fn] : benches) {
    for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
      const std::string full =
          std::string(name) + "/isa:" + kernels::IsaLevelName(level);
      benchmark::RegisterBenchmark(full.c_str(), fn, level)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dpclustx::bench::AddPoolContext();
  // Record the adaptive Census layout so the snapshot shows what "adaptive"
  // resolved to on this schema.
  const Dataset& census = Census().adaptive;
  size_t n8 = 0, n16 = 0, n32 = 0;
  for (size_t a = 0; a < census.num_attributes(); ++a) {
    switch (census.column_width(static_cast<AttrIndex>(a))) {
      case ColumnWidth::k8: ++n8; break;
      case ColumnWidth::k16: ++n16; break;
      case ColumnWidth::k32: ++n32; break;
    }
  }
  benchmark::AddCustomContext(
      "census_column_widths", "u8=" + std::to_string(n8) +
                                  " u16=" + std::to_string(n16) +
                                  " u32=" + std::to_string(n32));
  RegisterIsaSweep();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
