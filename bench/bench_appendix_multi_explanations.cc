// Appendix B: multiple explanations per cluster. The extension enlarges the
// Stage-2 search space from k^|C| to C(k, ℓ)^|C| and splits the per-cluster
// histogram budget across ℓ releases. This bench measures both effects:
// selection quality (scored by the extended global quality over the chosen
// ℓ-sets, and by the best single attribute within each set) and wall time,
// for ℓ = 1..3 at k = 4.

#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "core/multi_explainer.h"
#include "eval/harness.h"
#include "eval/metrics.h"

int main() {
  using namespace dpclustx;
  using namespace dpclustx::bench;

  const size_t clusters = 5;
  const size_t k = 4;
  const GlobalWeights lambda;
  const size_t runs = NumRuns();

  const Dataset dataset = MakeDataset("diabetes");
  const std::vector<ClusterId> labels =
      FitLabels(dataset, "k-means", clusters, 1);
  const auto stats = StatsCache::Build(dataset, labels, clusters);
  DPX_CHECK_OK(stats.status());

  std::printf(
      "Appendix B: multi-explanations per cluster (Diabetes, |C|=%zu, "
      "k=%zu, %zu runs)\n"
      "multi-Q = extended global quality of the selected l-sets (low-"
      "sensitivity form, normalized by the mean cluster size); best-1 Q = "
      "paper Quality of the best single attribute per cluster within the "
      "selection.\n\n",
      clusters, k, runs);

  eval::TablePrinter table(
      {"l", "search space", "time_ms", "multi-Q", "best-1 Q"});
  for (const size_t l : {1u, 2u, 3u}) {
    double multi_q = 0.0, best1_q = 0.0;
    eval::WallTimer timer;
    for (size_t run = 0; run < runs; ++run) {
      MultiExplainOptions options;
      options.attrs_per_cluster = l;
      options.base.num_candidates = k;
      options.base.generate_histograms = false;
      options.base.seed = 70000 + run;
      const auto result = ExplainDpClustXMultiWithLabels(
          dataset, labels, clusters, options);
      DPX_CHECK_OK(result.status());

      // Extended score, normalized into [0, 1] by the mean cluster size so
      // the ℓ values are comparable.
      double mean_size = 0.0;
      for (size_t c = 0; c < clusters; ++c) {
        mean_size += static_cast<double>(stats->cluster_size(
            static_cast<ClusterId>(c)));
      }
      mean_size /= static_cast<double>(clusters);
      multi_q += MultiGlobalScore(*stats, result->combination, lambda) /
                 mean_size;

      // Paper Quality of the best single attribute per cluster.
      AttributeCombination best(clusters);
      for (size_t c = 0; c < clusters; ++c) {
        const auto cluster = static_cast<ClusterId>(c);
        double best_score = -1.0;
        for (AttrIndex attr : result->combination[c]) {
          const double score = SingleClusterScore(
              *stats, cluster, attr,
              lambda.ConditionalSingleClusterWeights());
          if (score > best_score) {
            best_score = score;
            best[c] = attr;
          }
        }
      }
      best1_q += eval::SensitiveQuality(*stats, best, lambda);
    }
    const double ms =
        timer.ElapsedSeconds() * 1e3 / static_cast<double>(runs);
    // C(k, l)^|C|.
    auto choose = [](size_t n, size_t r) {
      double result = 1.0;
      for (size_t i = 0; i < r; ++i) {
        result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
      }
      return result;
    };
    double space = 1.0;
    for (size_t c = 0; c < clusters; ++c) space *= choose(k, l);
    table.AddRow({std::to_string(l), eval::TablePrinter::Num(space, 0),
                  eval::TablePrinter::Num(ms, 2),
                  eval::TablePrinter::Num(multi_q /
                                          static_cast<double>(runs)),
                  eval::TablePrinter::Num(best1_q /
                                          static_cast<double>(runs))});
  }
  table.Print();
  return 0;
}
