#include "core/stats_cache.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Dataset MakeDataset() {
  Schema schema({Attribute::WithAnonymousDomain("a", 3),
                 Attribute::WithAnonymousDomain("b", 2)});
  Dataset dataset(schema);
  dataset.AppendRowUnchecked({0, 0});
  dataset.AppendRowUnchecked({1, 1});
  dataset.AppendRowUnchecked({2, 0});
  dataset.AppendRowUnchecked({1, 0});
  dataset.AppendRowUnchecked({0, 1});
  return dataset;
}

TEST(StatsCacheTest, BuildValidatesInput) {
  const Dataset dataset = MakeDataset();
  EXPECT_FALSE(StatsCache::Build(dataset, {0, 0}, 2).ok());  // wrong size
  EXPECT_FALSE(StatsCache::Build(dataset, {0, 0, 0, 0, 5}, 2).ok());
  EXPECT_FALSE(StatsCache::Build(dataset, {0, 0, 0, 0, 0}, 0).ok());
}

TEST(StatsCacheTest, ClusterSizesAndHistograms) {
  const Dataset dataset = MakeDataset();
  const std::vector<ClusterId> labels = {0, 1, 0, 1, 1};
  const auto stats = StatsCache::Build(dataset, labels, 2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_rows(), 5u);
  EXPECT_EQ(stats->num_clusters(), 2u);
  EXPECT_EQ(stats->cluster_size(0), 2u);
  EXPECT_EQ(stats->cluster_size(1), 3u);
  // Cluster 0 holds rows {0,2}: attr a values {0,2}.
  EXPECT_DOUBLE_EQ(stats->cluster_histogram(0, 0).bin(0), 1.0);
  EXPECT_DOUBLE_EQ(stats->cluster_histogram(0, 0).bin(1), 0.0);
  EXPECT_DOUBLE_EQ(stats->cluster_histogram(0, 0).bin(2), 1.0);
}

TEST(StatsCacheTest, ClusterHistogramsSumToFull) {
  const Dataset dataset = MakeDataset();
  const std::vector<ClusterId> labels = {0, 1, 2, 1, 0};
  const auto stats = StatsCache::Build(dataset, labels, 3);
  ASSERT_TRUE(stats.ok());
  for (size_t a = 0; a < 2; ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    Histogram sum(stats->full_histogram(attr).domain_size());
    for (size_t c = 0; c < 3; ++c) {
      sum = sum.Plus(stats->cluster_histogram(static_cast<ClusterId>(c),
                                              attr));
    }
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(sum, stats->full_histogram(attr)), 0.0);
  }
}

TEST(StatsCacheTest, SupportsEmptyClusters) {
  const Dataset dataset = MakeDataset();
  const std::vector<ClusterId> labels = {0, 0, 0, 0, 0};
  const auto stats = StatsCache::Build(dataset, labels, 3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cluster_size(1), 0u);
  EXPECT_DOUBLE_EQ(stats->cluster_histogram(1, 0).Total(), 0.0);
}

TEST(StatsCacheTest, FromHistogramsRoundTrip) {
  const Dataset dataset = MakeDataset();
  const std::vector<ClusterId> labels = {0, 1, 0, 1, 1};
  const auto built = StatsCache::Build(dataset, labels, 2);
  ASSERT_TRUE(built.ok());

  std::vector<Histogram> full = {built->full_histogram(0),
                                 built->full_histogram(1)};
  std::vector<std::vector<Histogram>> clusters = {
      {built->cluster_histogram(0, 0), built->cluster_histogram(1, 0)},
      {built->cluster_histogram(0, 1), built->cluster_histogram(1, 1)}};
  const auto rebuilt = StatsCache::FromHistograms(dataset.schema(),
                                                  std::move(full),
                                                  std::move(clusters));
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->num_rows(), 5u);
  EXPECT_EQ(rebuilt->cluster_size(1), 3u);
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(rebuilt->full_histogram(0),
                                         built->full_histogram(0)),
                   0.0);
}

TEST(StatsCacheTest, FromHistogramsValidatesShapes) {
  const Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  // Wrong attribute count.
  EXPECT_FALSE(StatsCache::FromHistograms(schema, {}, {}).ok());
  // Wrong domain size.
  EXPECT_FALSE(StatsCache::FromHistograms(schema, {Histogram(3)},
                                          {{Histogram(3)}})
                   .ok());
  // Inconsistent cluster counts.
  EXPECT_FALSE(StatsCache::FromHistograms(
                   Schema({Attribute::WithAnonymousDomain("a", 2),
                           Attribute::WithAnonymousDomain("b", 2)}),
                   {Histogram(2), Histogram(2)},
                   {{Histogram(2)}, {Histogram(2), Histogram(2)}})
                   .ok());
}

}  // namespace
}  // namespace dpclustx
