// Property-based verification of the paper's sensitivity propositions:
// adding one tuple to the dataset (with any fixed cluster assignment) must
// change each low-sensitivity quality function by at most its proven bound.
// Each parameterized instance runs a randomized trial batch with a distinct
// seed; together they sweep cluster counts, domain shapes, and degenerate
// cases (tiny clusters, empty clusters).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/quality.h"
#include "core/stats_cache.h"

namespace dpclustx {
namespace {

struct SensitivityCase {
  uint64_t seed;
  size_t rows;
  size_t num_clusters;
  size_t domain;
  // Probability a row lands in cluster 0; small values create tiny clusters,
  // the regime where the original metrics blow up (Prop. 4.1).
  double cluster0_bias;
};

class QualitySensitivityTest
    : public ::testing::TestWithParam<SensitivityCase> {};

struct NeighborPair {
  StatsCache before;
  StatsCache after;
};

// Builds D ~ D' = D ∪ {t} with a fixed clustering for both.
NeighborPair MakeNeighbors(const SensitivityCase& param, Rng& rng) {
  Schema schema({Attribute::WithAnonymousDomain("a", param.domain),
                 Attribute::WithAnonymousDomain("b", 3)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (size_t r = 0; r < param.rows; ++r) {
    dataset.AppendRowUnchecked(
        {static_cast<ValueCode>(rng.UniformInt(param.domain)),
         static_cast<ValueCode>(rng.UniformInt(3))});
    if (rng.Bernoulli(param.cluster0_bias)) {
      labels.push_back(0);
    } else {
      labels.push_back(static_cast<ClusterId>(
          1 + rng.UniformInt(param.num_clusters - 1)));
    }
  }
  auto before = StatsCache::Build(dataset, labels, param.num_clusters);

  // The added tuple goes to a uniformly random cluster.
  dataset.AppendRowUnchecked(
      {static_cast<ValueCode>(rng.UniformInt(param.domain)),
       static_cast<ValueCode>(rng.UniformInt(3))});
  labels.push_back(
      static_cast<ClusterId>(rng.UniformInt(param.num_clusters)));
  auto after = StatsCache::Build(dataset, labels, param.num_clusters);
  return {std::move(*before), std::move(*after)};
}

constexpr int kTrials = 60;
constexpr double kTolerance = 1e-9;

TEST_P(QualitySensitivityTest, InterestingnessPBoundedByOne) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < kTrials; ++trial) {
    const NeighborPair pair = MakeNeighbors(GetParam(), rng);
    for (size_t c = 0; c < GetParam().num_clusters; ++c) {
      for (AttrIndex a = 0; a < 2; ++a) {
        const auto cluster = static_cast<ClusterId>(c);
        const double diff =
            std::fabs(InterestingnessP(pair.after, cluster, a) -
                      InterestingnessP(pair.before, cluster, a));
        ASSERT_LE(diff, 1.0 + kTolerance)
            << "trial " << trial << " cluster " << c << " attr " << a;
      }
    }
  }
}

TEST_P(QualitySensitivityTest, SufficiencyPBoundedByOne) {
  Rng rng(GetParam().seed + 1000);
  for (int trial = 0; trial < kTrials; ++trial) {
    const NeighborPair pair = MakeNeighbors(GetParam(), rng);
    for (size_t c = 0; c < GetParam().num_clusters; ++c) {
      for (AttrIndex a = 0; a < 2; ++a) {
        const auto cluster = static_cast<ClusterId>(c);
        const double diff = std::fabs(SufficiencyP(pair.after, cluster, a) -
                                      SufficiencyP(pair.before, cluster, a));
        ASSERT_LE(diff, 1.0 + kTolerance)
            << "trial " << trial << " cluster " << c << " attr " << a;
      }
    }
  }
}

TEST_P(QualitySensitivityTest, PairDiversityBoundedByOne) {
  Rng rng(GetParam().seed + 2000);
  for (int trial = 0; trial < kTrials; ++trial) {
    const NeighborPair pair = MakeNeighbors(GetParam(), rng);
    for (size_t c = 0; c < GetParam().num_clusters; ++c) {
      for (size_t cp = c + 1; cp < GetParam().num_clusters; ++cp) {
        for (AttrIndex a1 = 0; a1 < 2; ++a1) {
          for (AttrIndex a2 = 0; a2 < 2; ++a2) {
            const double diff = std::fabs(
                PairDiversity(pair.after, static_cast<ClusterId>(c),
                              static_cast<ClusterId>(cp), a1, a2) -
                PairDiversity(pair.before, static_cast<ClusterId>(c),
                              static_cast<ClusterId>(cp), a1, a2));
            ASSERT_LE(diff, 1.0 + kTolerance) << "trial " << trial;
          }
        }
      }
    }
  }
}

TEST_P(QualitySensitivityTest, ScoresBoundedByOne) {
  Rng rng(GetParam().seed + 3000);
  const SingleClusterWeights gamma{0.5, 0.5};
  GlobalWeights lambda;
  for (int trial = 0; trial < kTrials; ++trial) {
    const NeighborPair pair = MakeNeighbors(GetParam(), rng);
    // SScore (Prop. 4.10).
    for (size_t c = 0; c < GetParam().num_clusters; ++c) {
      const auto cluster = static_cast<ClusterId>(c);
      const double diff =
          std::fabs(SingleClusterScore(pair.after, cluster, 0, gamma) -
                    SingleClusterScore(pair.before, cluster, 0, gamma));
      ASSERT_LE(diff, 1.0 + kTolerance) << "trial " << trial;
    }
    // Div_p and GlScore (Props. 4.8, 4.12) on a random combination.
    AttributeCombination ac(GetParam().num_clusters);
    for (auto& attr : ac) attr = static_cast<AttrIndex>(rng.UniformInt(2));
    ASSERT_LE(std::fabs(DiversityP(pair.after, ac) -
                        DiversityP(pair.before, ac)),
              1.0 + kTolerance)
        << "trial " << trial;
    ASSERT_LE(std::fabs(GlobalScore(pair.after, ac, lambda) -
                        GlobalScore(pair.before, ac, lambda)),
              1.0 + kTolerance)
        << "trial " << trial;
  }
}

// Neighboring is symmetric (add OR remove a tuple, Def. 2.4); check the
// removal direction explicitly by deleting a random row.
TEST_P(QualitySensitivityTest, RemovalDirectionAlsoBounded) {
  Rng rng(GetParam().seed + 4000);
  GlobalWeights lambda;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Build D, then D' = D minus one random row (same labels elsewhere).
    Schema schema({Attribute::WithAnonymousDomain("a", GetParam().domain),
                   Attribute::WithAnonymousDomain("b", 3)});
    Dataset dataset(schema);
    std::vector<ClusterId> labels;
    for (size_t r = 0; r < GetParam().rows; ++r) {
      dataset.AppendRowUnchecked(
          {static_cast<ValueCode>(rng.UniformInt(GetParam().domain)),
           static_cast<ValueCode>(rng.UniformInt(3))});
      labels.push_back(static_cast<ClusterId>(
          rng.UniformInt(GetParam().num_clusters)));
    }
    const auto before =
        StatsCache::Build(dataset, labels, GetParam().num_clusters);
    const size_t removed = rng.UniformInt(GetParam().rows);
    std::vector<uint32_t> kept;
    std::vector<ClusterId> kept_labels;
    for (size_t r = 0; r < GetParam().rows; ++r) {
      if (r == removed) continue;
      kept.push_back(static_cast<uint32_t>(r));
      kept_labels.push_back(labels[r]);
    }
    const auto after = StatsCache::Build(dataset.SelectRows(kept),
                                         kept_labels,
                                         GetParam().num_clusters);
    AttributeCombination ac(GetParam().num_clusters);
    for (auto& attr : ac) attr = static_cast<AttrIndex>(rng.UniformInt(2));
    ASSERT_LE(std::fabs(GlobalScore(*after, ac, lambda) -
                        GlobalScore(*before, ac, lambda)),
              1.0 + kTolerance)
        << "trial " << trial;
    for (size_t c = 0; c < GetParam().num_clusters; ++c) {
      const auto cluster = static_cast<ClusterId>(c);
      ASSERT_LE(std::fabs(InterestingnessP(*after, cluster, 0) -
                          InterestingnessP(*before, cluster, 0)),
                1.0 + kTolerance);
      ASSERT_LE(std::fabs(SufficiencyP(*after, cluster, 0) -
                          SufficiencyP(*before, cluster, 0)),
                1.0 + kTolerance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QualitySensitivityTest,
    ::testing::Values(
        // Balanced medium clusters.
        SensitivityCase{101, 300, 3, 5, 1.0 / 3.0},
        // Tiny cluster 0 — the adversarial regime from the paper's examples.
        SensitivityCase{202, 200, 3, 4, 0.01},
        // Many clusters, small dataset (some clusters empty).
        SensitivityCase{303, 40, 8, 3, 0.1},
        // Two clusters, binary-ish domain (matches Example 4.1's setup).
        SensitivityCase{404, 500, 2, 2, 0.002},
        // Larger domain than rows (sparse histograms).
        SensitivityCase{505, 30, 4, 24, 0.25}),
    [](const ::testing::TestParamInfo<SensitivityCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dpclustx
