// Narrow-column data-plane equivalence (DESIGN.md §9).
//
// Codes are exact integers in every storage width, so narrowing a column
// from uint32 to uint16/uint8 must not change ANY downstream result: these
// tests pin histograms, group histograms, clustering labels, and end-to-end
// explanations to be bitwise-identical between the adaptive layout and the
// legacy force-32 layout, across the 8/16/32-bit width boundaries (domain
// sizes 2, 255, 256, 65536, 65537), between the batched AssignBatch kernels
// and the per-row Assign scan, and at 0/1/8 threads.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <chrono>

#include "cluster/clustering.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "common/rng.h"
#include "core/explainer.h"
#include "core/serialization.h"
#include "core/stats_cache.h"
#include "data/column.h"
#include "data/columnar_format.h"
#include "data/dataset.h"
#include "data/kernels/isa.h"

namespace dpclustx {
namespace {

// The five domain sizes straddling the uint8/uint16/uint32 boundaries.
const size_t kBoundaryDomains[] = {2, 255, 256, 65536, 65537};

Schema BoundarySchema() {
  std::vector<Attribute> attrs;
  size_t i = 0;
  for (const size_t domain : kBoundaryDomains) {
    attrs.push_back(Attribute::WithAnonymousDomain(
        "attr" + std::to_string(i++), domain));
  }
  return Schema(std::move(attrs));
}

// Deterministic rows exercising the full code range of every domain,
// including the extreme codes 0 and domain−1.
void FillRows(Dataset* dataset, size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  const Schema& schema = dataset->schema();
  dataset->Reserve(num_rows);
  std::vector<ValueCode> row(schema.num_attributes());
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      const size_t domain =
          schema.attribute(static_cast<AttrIndex>(a)).domain_size();
      if (r < 2) {
        row[a] = static_cast<ValueCode>(r == 0 ? 0 : domain - 1);
      } else {
        row[a] = static_cast<ValueCode>(rng.UniformInt(domain));
      }
    }
    dataset->AppendRowUnchecked(row);
  }
}

struct LayoutPair {
  Dataset adaptive;
  Dataset force32;
};

LayoutPair MakeBoundaryPair(size_t num_rows, uint64_t seed = 7) {
  LayoutPair pair{Dataset(BoundarySchema(), WidthPolicy::kAdaptive),
                  Dataset(BoundarySchema(), WidthPolicy::kForce32)};
  FillRows(&pair.adaptive, num_rows, seed);
  FillRows(&pair.force32, num_rows, seed);
  return pair;
}

std::vector<uint32_t> MakeLabels(size_t num_rows, size_t num_groups,
                                 uint64_t seed = 11) {
  Rng rng(seed);
  std::vector<uint32_t> labels(num_rows);
  for (uint32_t& label : labels) {
    label = static_cast<uint32_t>(rng.UniformInt(num_groups));
  }
  return labels;
}

TEST(DatasetLayoutTest, AdaptiveWidthsMatchDomainBoundaries) {
  const Dataset dataset(BoundarySchema(), WidthPolicy::kAdaptive);
  EXPECT_EQ(dataset.column_width(0), ColumnWidth::k8);   // domain 2
  EXPECT_EQ(dataset.column_width(1), ColumnWidth::k8);   // domain 255
  EXPECT_EQ(dataset.column_width(2), ColumnWidth::k8);   // domain 256
  EXPECT_EQ(dataset.column_width(3), ColumnWidth::k16);  // domain 65536
  EXPECT_EQ(dataset.column_width(4), ColumnWidth::k32);  // domain 65537

  const Dataset wide(BoundarySchema(), WidthPolicy::kForce32);
  for (AttrIndex a = 0; a < 5; ++a) {
    EXPECT_EQ(wide.column_width(a), ColumnWidth::k32);
  }
}

TEST(DatasetLayoutTest, CellAccessorsIdenticalAcrossWidths) {
  const LayoutPair pair = MakeBoundaryPair(500);
  ASSERT_EQ(pair.adaptive.num_rows(), pair.force32.num_rows());
  std::vector<ValueCode> scratch;
  for (size_t r = 0; r < pair.adaptive.num_rows(); ++r) {
    ASSERT_EQ(pair.adaptive.Row(r), pair.force32.Row(r)) << "row " << r;
    pair.adaptive.RowInto(r, &scratch);
    ASSERT_EQ(scratch, pair.force32.Row(r)) << "row " << r;
  }
  for (AttrIndex a = 0; a < pair.adaptive.num_attributes(); ++a) {
    ASSERT_EQ(pair.adaptive.ColumnCodes(a), pair.force32.ColumnCodes(a));
    const ColumnView narrow = pair.adaptive.column(a);
    const ColumnView wide = pair.force32.column(a);
    ASSERT_EQ(narrow.size(), wide.size());
    for (size_t r = 0; r < narrow.size(); ++r) {
      ASSERT_EQ(narrow[r], wide[r]) << "attr " << a << " row " << r;
    }
  }
}

TEST(DatasetLayoutTest, HistogramsBitwiseIdenticalAcrossWidths) {
  const LayoutPair pair = MakeBoundaryPair(2000);
  for (AttrIndex a = 0; a < pair.adaptive.num_attributes(); ++a) {
    EXPECT_EQ(pair.adaptive.ComputeHistogram(a).bins(),
              pair.force32.ComputeHistogram(a).bins())
        << "attr " << a;
  }
  // Sub-bag histograms over an arbitrary index list (with duplicates).
  std::vector<uint32_t> rows = {0, 1, 1, 5, 99, 1337, 1999};
  for (AttrIndex a = 0; a < pair.adaptive.num_attributes(); ++a) {
    EXPECT_EQ(pair.adaptive.ComputeHistogram(a, rows).bins(),
              pair.force32.ComputeHistogram(a, rows).bins())
        << "attr " << a;
  }
}

TEST(DatasetLayoutTest, GroupHistogramsBitwiseIdenticalAcrossWidthsAndThreads) {
  constexpr size_t kGroups = 4;
  const LayoutPair pair = MakeBoundaryPair(2000);
  const std::vector<uint32_t> labels = MakeLabels(2000, kGroups);

  for (AttrIndex a = 0; a < pair.adaptive.num_attributes(); ++a) {
    const auto narrow =
        pair.adaptive.ComputeGroupHistograms(a, labels, kGroups);
    const auto wide = pair.force32.ComputeGroupHistograms(a, labels, kGroups);
    for (size_t g = 0; g < kGroups; ++g) {
      EXPECT_EQ(narrow[g].bins(), wide[g].bins())
          << "attr " << a << " group " << g;
    }
  }

  // The fused sweep: every (width, thread-count) combination must agree
  // bin-for-bin. 0 = compute-pool width.
  const auto reference =
      pair.force32.ComputeAllGroupHistograms(labels, kGroups, 1);
  ASSERT_TRUE(reference.ok());
  for (const Dataset* dataset : {&pair.adaptive, &pair.force32}) {
    for (const size_t threads : {size_t{0}, size_t{1}, size_t{8}}) {
      const auto got =
          dataset->ComputeAllGroupHistograms(labels, kGroups, threads);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), reference->size());
      for (size_t a = 0; a < got->size(); ++a) {
        for (size_t g = 0; g < kGroups; ++g) {
          EXPECT_EQ((*got)[a][g].bins(), (*reference)[a][g].bins())
              << "attr " << a << " group " << g << " threads " << threads;
        }
      }
    }
  }
}

TEST(DatasetLayoutTest, SelectAndSamplePreserveEquivalence) {
  const LayoutPair pair = MakeBoundaryPair(800);
  const std::vector<uint32_t> rows = {7, 7, 0, 799, 123, 456};
  const Dataset narrow_sel = pair.adaptive.SelectRows(rows);
  const Dataset wide_sel = pair.force32.SelectRows(rows);
  EXPECT_EQ(narrow_sel.width_policy(), WidthPolicy::kAdaptive);
  EXPECT_EQ(wide_sel.width_policy(), WidthPolicy::kForce32);
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(narrow_sel.Row(r), wide_sel.Row(r));
  }

  const Dataset narrow_proj = pair.adaptive.SelectAttributes({4, 0, 3});
  const Dataset wide_proj = pair.force32.SelectAttributes({4, 0, 3});
  EXPECT_EQ(narrow_proj.column_width(0), ColumnWidth::k32);  // domain 65537
  EXPECT_EQ(narrow_proj.column_width(1), ColumnWidth::k8);   // domain 2
  EXPECT_EQ(narrow_proj.column_width(2), ColumnWidth::k16);  // domain 65536
  for (size_t r = 0; r < narrow_proj.num_rows(); ++r) {
    EXPECT_EQ(narrow_proj.Row(r), wide_proj.Row(r));
  }

  Rng rng_a(3), rng_b(3);
  const Dataset narrow_sample = pair.adaptive.SampleRows(0.4, rng_a);
  const Dataset wide_sample = pair.force32.SampleRows(0.4, rng_b);
  ASSERT_EQ(narrow_sample.num_rows(), wide_sample.num_rows());
  for (size_t r = 0; r < narrow_sample.num_rows(); ++r) {
    EXPECT_EQ(narrow_sample.Row(r), wide_sample.Row(r));
  }
}

TEST(DatasetLayoutTest, EmbeddingBitwiseIdenticalAcrossWidths) {
  const LayoutPair pair = MakeBoundaryPair(1200);
  const std::vector<double> narrow = EmbedDataset(pair.adaptive);
  const std::vector<double> wide = EmbedDataset(pair.force32);
  ASSERT_EQ(narrow.size(), wide.size());
  for (size_t i = 0; i < narrow.size(); ++i) {
    ASSERT_EQ(narrow[i], wide[i]) << "coordinate " << i;  // bitwise, not NEAR
  }
  // And the tile primitive agrees with the per-tuple embedding.
  for (size_t r = 0; r < 50; ++r) {
    const std::vector<double> tuple =
        EmbedTuple(pair.adaptive.schema(), pair.adaptive.Row(r));
    for (size_t a = 0; a < tuple.size(); ++a) {
      ASSERT_EQ(narrow[r * tuple.size() + a], tuple[a]);
    }
  }
}

// Every fitted clustering must produce identical labels on both layouts,
// through AssignAll (batched kernels), per-row Assign, and the default
// scratch-tuple AssignBatch fallback.
void ExpectAssignmentEquivalence(const ClusteringFunction& clustering,
                                 const Dataset& narrow, const Dataset& wide) {
  const std::vector<ClusterId> batched = clustering.AssignAll(narrow);
  EXPECT_EQ(batched, clustering.AssignAll(wide));

  std::vector<ClusterId> direct(narrow.num_rows());
  clustering.AssignBatch(narrow, 0, narrow.num_rows(), direct.data());
  EXPECT_EQ(batched, direct);

  // Unaligned batch windows must see the same labels as full sweeps.
  if (narrow.num_rows() > 70) {
    std::vector<ClusterId> window(63);
    clustering.AssignBatch(narrow, 7, 70, window.data());
    for (size_t i = 0; i < window.size(); ++i) {
      EXPECT_EQ(window[i], batched[7 + i]) << "window row " << (7 + i);
    }
  }

  for (size_t r = 0; r < narrow.num_rows(); ++r) {
    ASSERT_EQ(batched[r], clustering.Assign(narrow.Row(r))) << "row " << r;
  }
}

TEST(DatasetLayoutTest, ClusteringLabelsIdenticalAcrossWidthsAndKernels) {
  constexpr size_t kRows = 600;
  constexpr size_t kClusters = 4;
  const LayoutPair pair = MakeBoundaryPair(kRows);

  KModesOptions kmodes;
  kmodes.num_clusters = kClusters;
  kmodes.seed = 5;
  KMeansOptions kmeans;
  kmeans.num_clusters = kClusters;
  kmeans.seed = 5;
  GmmOptions gmm;
  gmm.num_components = kClusters;
  gmm.seed = 5;
  gmm.max_iterations = 10;

  for (const size_t threads : {size_t{0}, size_t{1}, size_t{8}}) {
    kmodes.num_threads = threads;
    kmeans.num_threads = threads;
    gmm.num_threads = threads;

    const auto modes_narrow = FitKModes(pair.adaptive, kmodes);
    const auto modes_wide = FitKModes(pair.force32, kmodes);
    ASSERT_TRUE(modes_narrow.ok() && modes_wide.ok());
    EXPECT_EQ((*modes_narrow)->AssignAll(pair.adaptive),
              (*modes_wide)->AssignAll(pair.force32))
        << "k-modes fit diverged at threads=" << threads;
    ExpectAssignmentEquivalence(**modes_narrow, pair.adaptive, pair.force32);

    const auto kmeans_narrow = FitKMeans(pair.adaptive, kmeans);
    const auto kmeans_wide = FitKMeans(pair.force32, kmeans);
    ASSERT_TRUE(kmeans_narrow.ok() && kmeans_wide.ok());
    EXPECT_EQ((*kmeans_narrow)->AssignAll(pair.adaptive),
              (*kmeans_wide)->AssignAll(pair.force32))
        << "k-means fit diverged at threads=" << threads;
    ExpectAssignmentEquivalence(**kmeans_narrow, pair.adaptive, pair.force32);

    const auto gmm_narrow = FitGmm(pair.adaptive, gmm);
    const auto gmm_wide = FitGmm(pair.force32, gmm);
    ASSERT_TRUE(gmm_narrow.ok() && gmm_wide.ok());
    EXPECT_EQ((*gmm_narrow)->AssignAll(pair.adaptive),
              (*gmm_wide)->AssignAll(pair.force32))
        << "gmm fit diverged at threads=" << threads;
    ExpectAssignmentEquivalence(**gmm_narrow, pair.adaptive, pair.force32);
  }
}

// ---- Multi-arch kernel dispatch (DESIGN.md §12) ----
//
// The per-ISA kernel TUs compile identical source at different vector
// widths; integer kernels (and the fixed-reduction float kernels) must
// produce bitwise-identical results at every level the host can run. Each
// sweep below pins every supported level against a forced-generic
// reference, across storage widths and thread counts.

TEST(KernelDispatchTest, ForcingSwitchesAndRestoresActiveLevel) {
  const std::vector<kernels::IsaLevel> levels = kernels::SupportedIsaLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), kernels::IsaLevel::kGeneric);
  EXPECT_LE(kernels::ActiveIsaLevel(), kernels::DetectedIsaLevel());
  const kernels::IsaLevel before = kernels::ActiveIsaLevel();
  for (const kernels::IsaLevel level : levels) {
    kernels::ScopedForceIsa force(level);
    EXPECT_EQ(kernels::ActiveIsaLevel(), level);
  }
  EXPECT_EQ(kernels::ActiveIsaLevel(), before);
  {
    // Forcing above the detected level clamps instead of dispatching
    // unsupported instructions.
    kernels::ScopedForceIsa force(kernels::IsaLevel::kAvx512);
    EXPECT_LE(kernels::ActiveIsaLevel(), kernels::DetectedIsaLevel());
  }
}

TEST(KernelDispatchTest, HistogramsBitwiseIdenticalAcrossIsaLevels) {
  constexpr size_t kGroups = 4;
  const LayoutPair pair = MakeBoundaryPair(3000);
  const std::vector<uint32_t> labels = MakeLabels(3000, kGroups);
  std::vector<uint32_t> rows = {0, 1, 1, 5, 99, 1337, 2999};

  struct Reference {
    std::vector<std::vector<double>> hists;
    std::vector<std::vector<double>> row_hists;
    std::vector<std::vector<std::vector<double>>> group_hists;
  };
  const auto compute = [&](const Dataset& dataset, size_t threads) {
    Reference out;
    for (AttrIndex a = 0; a < dataset.num_attributes(); ++a) {
      out.hists.push_back(dataset.ComputeHistogram(a).bins());
      out.row_hists.push_back(dataset.ComputeHistogram(a, rows).bins());
    }
    const auto grouped =
        dataset.ComputeAllGroupHistograms(labels, kGroups, threads);
    EXPECT_TRUE(grouped.ok());
    for (const auto& per_attr : *grouped) {
      auto& slot = out.group_hists.emplace_back();
      for (const Histogram& h : per_attr) slot.push_back(h.bins());
    }
    return out;
  };

  kernels::ScopedForceIsa generic(kernels::IsaLevel::kGeneric);
  const Reference reference = compute(pair.force32, 1);
  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (const Dataset* dataset : {&pair.adaptive, &pair.force32}) {
      for (const size_t threads : {size_t{1}, size_t{8}}) {
        const Reference got = compute(*dataset, threads);
        EXPECT_EQ(got.hists, reference.hists)
            << "isa " << kernels::IsaLevelName(level) << " threads "
            << threads;
        EXPECT_EQ(got.row_hists, reference.row_hists)
            << "isa " << kernels::IsaLevelName(level);
        EXPECT_EQ(got.group_hists, reference.group_hists)
            << "isa " << kernels::IsaLevelName(level) << " threads "
            << threads;
      }
    }
  }
}

TEST(KernelDispatchTest, EmbeddingBitwiseIdenticalAcrossIsaLevels) {
  const LayoutPair pair = MakeBoundaryPair(1200);
  std::vector<double> reference;
  {
    kernels::ScopedForceIsa generic(kernels::IsaLevel::kGeneric);
    reference = EmbedDataset(pair.force32);
  }
  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (const Dataset* dataset : {&pair.adaptive, &pair.force32}) {
      const std::vector<double> got = EmbedDataset(*dataset);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], reference[i])  // bitwise, not NEAR
            << "isa " << kernels::IsaLevelName(level) << " coordinate " << i;
      }
    }
  }
}

// Clustering fits consume the kernels' float outputs (squared distances,
// quadratic forms, weighted accumulations), so identical fits + labels at
// every level prove the fixed-reduction contract end to end.
TEST(KernelDispatchTest, ClusteringLabelsIdenticalAcrossIsaLevels) {
  constexpr size_t kRows = 600;
  constexpr size_t kClusters = 4;
  const LayoutPair pair = MakeBoundaryPair(kRows);

  KModesOptions kmodes;
  kmodes.num_clusters = kClusters;
  kmodes.seed = 5;
  KMeansOptions kmeans;
  kmeans.num_clusters = kClusters;
  kmeans.seed = 5;
  GmmOptions gmm;
  gmm.num_components = kClusters;
  gmm.seed = 5;
  gmm.max_iterations = 10;

  std::vector<ClusterId> ref_modes, ref_means, ref_gmm;
  std::unique_ptr<ClusteringFunction> generic_gmm;
  {
    kernels::ScopedForceIsa generic(kernels::IsaLevel::kGeneric);
    ref_modes = (*FitKModes(pair.adaptive, kmodes))->AssignAll(pair.adaptive);
    ref_means = (*FitKMeans(pair.adaptive, kmeans))->AssignAll(pair.adaptive);
    auto fitted = FitGmm(pair.adaptive, gmm);
    ASSERT_TRUE(fitted.ok());
    generic_gmm = std::move(fitted).value();
    ref_gmm = generic_gmm->AssignAll(pair.adaptive);
  }

  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      kmodes.num_threads = threads;
      kmeans.num_threads = threads;
      gmm.num_threads = threads;

      const auto modes = FitKModes(pair.adaptive, kmodes);
      ASSERT_TRUE(modes.ok());
      EXPECT_EQ((*modes)->AssignAll(pair.adaptive), ref_modes)
          << "k-modes diverged at isa " << kernels::IsaLevelName(level)
          << " threads " << threads;
      ExpectAssignmentEquivalence(**modes, pair.adaptive, pair.force32);

      const auto means = FitKMeans(pair.adaptive, kmeans);
      ASSERT_TRUE(means.ok());
      EXPECT_EQ((*means)->AssignAll(pair.adaptive), ref_means)
          << "k-means diverged at isa " << kernels::IsaLevelName(level)
          << " threads " << threads;
      ExpectAssignmentEquivalence(**means, pair.adaptive, pair.force32);

      const auto mixture = FitGmm(pair.adaptive, gmm);
      ASSERT_TRUE(mixture.ok());
      EXPECT_EQ((*mixture)->AssignAll(pair.adaptive), ref_gmm)
          << "gmm diverged at isa " << kernels::IsaLevelName(level)
          << " threads " << threads;
      ExpectAssignmentEquivalence(**mixture, pair.adaptive, pair.force32);
    }
    // Cross-level scoring: a model fitted at the generic level must assign
    // the same labels when scored by this level's kernels.
    EXPECT_EQ(generic_gmm->AssignAll(pair.adaptive), ref_gmm)
        << "generic-fitted gmm scored differently at isa "
        << kernels::IsaLevelName(level);
  }
}

TEST(KernelDispatchTest, ExplanationsBitwiseIdenticalAcrossIsaLevels) {
  constexpr size_t kRows = 1500;
  constexpr size_t kClusters = 3;
  const LayoutPair pair = MakeBoundaryPair(kRows);
  const std::vector<uint32_t> labels = MakeLabels(kRows, kClusters);

  DpClustXOptions options;
  options.seed = 21;
  options.num_threads = 1;

  std::string reference;
  {
    kernels::ScopedForceIsa generic(kernels::IsaLevel::kGeneric);
    const auto explanation = ExplainDpClustXWithLabels(pair.adaptive, labels,
                                                       kClusters, options);
    ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
    reference = ExplanationToJson(*explanation, pair.adaptive.schema());
  }
  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    const auto explanation = ExplainDpClustXWithLabels(pair.adaptive, labels,
                                                       kClusters, options);
    ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
    EXPECT_EQ(ExplanationToJson(*explanation, pair.adaptive.schema()),
              reference)
        << "explanation diverged at isa " << kernels::IsaLevelName(level);
  }
}

TEST(DatasetLayoutTest, ExplanationsBitwiseIdenticalAcrossWidthsAndThreads) {
  constexpr size_t kRows = 1500;
  constexpr size_t kClusters = 3;
  const LayoutPair pair = MakeBoundaryPair(kRows);
  const std::vector<uint32_t> labels = MakeLabels(kRows, kClusters);

  DpClustXOptions options;
  options.seed = 21;

  // Reference: the legacy layout, serial. Stage-2's noise stream is keyed
  // by num_threads (see DpClustXOptions), so compare per thread count; the
  // storage width must never change the bytes.
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    options.num_threads = threads;
    const auto narrow = ExplainDpClustXWithLabels(pair.adaptive, labels,
                                                  kClusters, options);
    const auto wide = ExplainDpClustXWithLabels(pair.force32, labels,
                                                kClusters, options);
    ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
    ASSERT_TRUE(wide.ok()) << wide.status().ToString();
    EXPECT_EQ(ExplanationToJson(*narrow, pair.adaptive.schema()),
              ExplanationToJson(*wide, pair.force32.schema()))
        << "explanation diverged at threads=" << threads;
  }
}

// ---- Memory-mapped DPXCOL equivalence (DESIGN.md §13) ----
//
// A mapped dataset hands the kernels pointers into the page cache instead
// of heap columns; nothing downstream may notice. These sweeps pin the
// mapped layout to the heap layout bitwise — histograms, fits, and
// explanation JSON — across ISA levels and thread counts, and pin the
// append-only delta build (StatsCache::BuildAppended) to a cold rebuild.

std::string MappedTempPath(const std::string& name) {
  return testing::TempDir() + "/dpclustx_layout_" + name;
}

StatusOr<Dataset> WriteAndMap(const Dataset& heap, const std::string& path) {
  DPX_RETURN_IF_ERROR(WriteColumnarFile(heap, path));
  DPX_ASSIGN_OR_RETURN(std::shared_ptr<const MappedColumnar> mapped,
                       MappedColumnar::Open(path));
  return Dataset::FromMapped(std::move(mapped));
}

TEST(MappedLayoutTest, MappedDatasetBitwiseIdenticalToHeap) {
  constexpr size_t kRows = 2000;
  constexpr size_t kGroups = 4;
  Dataset heap(BoundarySchema(), WidthPolicy::kAdaptive);
  FillRows(&heap, kRows, 7);
  const auto mapped = WriteAndMap(heap, MappedTempPath("equiv.dpxcol"));
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(mapped->is_mapped());
  const std::vector<uint32_t> labels = MakeLabels(kRows, kGroups);

  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (AttrIndex a = 0; a < heap.num_attributes(); ++a) {
      ASSERT_EQ(mapped->ComputeHistogram(a).bins(),
                heap.ComputeHistogram(a).bins())
          << "attr " << a << " isa " << kernels::IsaLevelName(level);
    }
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      const auto from_heap =
          heap.ComputeAllGroupHistograms(labels, kGroups, threads);
      const auto from_map =
          mapped->ComputeAllGroupHistograms(labels, kGroups, threads);
      ASSERT_TRUE(from_heap.ok() && from_map.ok());
      for (size_t a = 0; a < from_heap->size(); ++a) {
        for (size_t g = 0; g < kGroups; ++g) {
          ASSERT_EQ((*from_map)[a][g].bins(), (*from_heap)[a][g].bins())
              << "attr " << a << " group " << g << " isa "
              << kernels::IsaLevelName(level) << " threads " << threads;
        }
      }
    }
  }

  // Fitted models and end-to-end explanation bytes agree too.
  KModesOptions kmodes;
  kmodes.num_clusters = kGroups;
  kmodes.seed = 5;
  const auto fit_heap = FitKModes(heap, kmodes);
  const auto fit_map = FitKModes(*mapped, kmodes);
  ASSERT_TRUE(fit_heap.ok() && fit_map.ok());
  EXPECT_EQ((*fit_map)->AssignAll(*mapped), (*fit_heap)->AssignAll(heap));

  DpClustXOptions options;
  options.seed = 21;
  options.num_threads = 1;
  const auto heap_explained =
      ExplainDpClustXWithLabels(heap, labels, kGroups, options);
  const auto map_explained =
      ExplainDpClustXWithLabels(*mapped, labels, kGroups, options);
  ASSERT_TRUE(heap_explained.ok()) << heap_explained.status().ToString();
  ASSERT_TRUE(map_explained.ok()) << map_explained.status().ToString();
  EXPECT_EQ(ExplanationToJson(*map_explained, mapped->schema()),
            ExplanationToJson(*heap_explained, heap.schema()));
}

void ExpectSameCache(const StatsCache& a, const StatsCache& b,
                     const std::string& what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.cluster_sizes(), b.cluster_sizes()) << what;
  for (AttrIndex attr = 0; attr < a.num_attributes(); ++attr) {
    ASSERT_EQ(a.full_histogram(attr).bins(), b.full_histogram(attr).bins())
        << what << " attr " << attr;
    for (ClusterId c = 0; c < a.num_clusters(); ++c) {
      ASSERT_EQ(a.cluster_histogram(c, attr).bins(),
                b.cluster_histogram(c, attr).bins())
          << what << " attr " << attr << " cluster " << c;
    }
  }
}

TEST(MappedLayoutTest, AppendedStatsIdenticalToColdRebuild) {
  constexpr size_t kBaseRows = 1500;
  constexpr size_t kTailRows = 300;
  constexpr size_t kGroups = 4;
  // FillRows is a deterministic stream, so a kBaseRows fill is exactly the
  // prefix of a (kBaseRows + kTailRows) fill with the same seed.
  Dataset full(BoundarySchema(), WidthPolicy::kAdaptive);
  FillRows(&full, kBaseRows + kTailRows, 7);
  Dataset base(BoundarySchema(), WidthPolicy::kAdaptive);
  FillRows(&base, kBaseRows, 7);
  std::vector<uint32_t> tail_rows(kTailRows);
  for (size_t i = 0; i < kTailRows; ++i) {
    tail_rows[i] = static_cast<uint32_t>(kBaseRows + i);
  }
  const Dataset tail = full.SelectRows(tail_rows);

  const std::vector<uint32_t> labels =
      MakeLabels(kBaseRows + kTailRows, kGroups);
  const std::vector<uint32_t> base_labels(labels.begin(),
                                          labels.begin() + kBaseRows);
  const std::vector<uint32_t> tail_labels(labels.begin() + kBaseRows,
                                          labels.end());

  const auto mapped_full = WriteAndMap(full, MappedTempPath("full.dpxcol"));
  const auto mapped_base = WriteAndMap(base, MappedTempPath("base.dpxcol"));
  ASSERT_TRUE(mapped_full.ok() && mapped_base.ok());

  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      const std::string what = std::string("isa ") +
                               kernels::IsaLevelName(level) + " threads " +
                               std::to_string(threads);
      const auto cold = StatsCache::Build(full, labels, kGroups, threads);
      ASSERT_TRUE(cold.ok()) << what;
      for (const Dataset* base_variant :
           {static_cast<const Dataset*>(&base),
            static_cast<const Dataset*>(&*mapped_base)}) {
        const auto warm = StatsCache::Build(*base_variant, base_labels,
                                            kGroups, threads);
        ASSERT_TRUE(warm.ok()) << what;
        const auto delta =
            StatsCache::BuildAppended(*warm, tail, tail_labels, threads);
        ASSERT_TRUE(delta.ok()) << what;
        ExpectSameCache(*delta, *cold,
                        what + (base_variant->is_mapped() ? " mapped"
                                                          : " heap"));
      }
      // Cold-building from the mapped full file agrees as well.
      const auto cold_mapped =
          StatsCache::Build(*mapped_full, labels, kGroups, threads);
      ASSERT_TRUE(cold_mapped.ok()) << what;
      ExpectSameCache(*cold_mapped, *cold, what + " cold-mapped");
    }
  }
}

// The acceptance bar for the format: a Census-scale file (2.46M rows × 68
// attributes) opens in milliseconds because Open is O(header) — mmap plus
// structural checks, never a data scan. Building and writing the file
// dominates this test's runtime; the open itself is timed best-of-3 to
// shrug off scheduler noise.
TEST(MappedLayoutTest, CensusScaleOpenIsHeaderTimeOnly) {
  constexpr size_t kRows = 2460000;
  constexpr size_t kAttrs = 68;
  std::vector<Attribute> attrs;
  attrs.reserve(kAttrs);
  for (size_t a = 0; a < kAttrs; ++a) {
    attrs.push_back(Attribute::WithAnonymousDomain(
        "attr" + std::to_string(a), 2 + (a % 31)));
  }
  Dataset dataset(Schema(std::move(attrs)), WidthPolicy::kAdaptive);
  dataset.Reserve(kRows);
  std::vector<ValueCode> row(kAttrs);
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t a = 0; a < kAttrs; ++a) {
      // Deterministic filler touching every code of every domain.
      row[a] = static_cast<ValueCode>((r * (a + 3) + 17) % (2 + (a % 31)));
    }
    dataset.AppendRowUnchecked(row);
  }
  const std::string path = MappedTempPath("census.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(dataset, path).ok());

  double best_ms = 1e9;
  std::shared_ptr<const MappedColumnar> mapped;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    auto opened = MappedColumnar::Open(path);
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    ASSERT_TRUE(opened.ok()) << opened.status();
    mapped = std::move(*opened);
    best_ms = std::min(best_ms, elapsed.count());
  }
  EXPECT_LT(best_ms, 10.0) << "O(header) open regressed to a data scan?";
  EXPECT_EQ(mapped->num_rows(), kRows);

  // And the mapping is genuinely usable: one histogram over 2.46M mapped
  // rows, checked against exact arithmetic for one of the cyclic fillers.
  const auto ds = Dataset::FromMapped(mapped);
  ASSERT_TRUE(ds.ok()) << ds.status();
  const Histogram hist = ds->ComputeHistogram(0);  // domain 2, filler r*3+17
  double total = 0;
  for (const double bin : hist.bins()) total += bin;
  EXPECT_EQ(total, static_cast<double>(kRows));

  std::remove(path.c_str());  // 167 MB — do not leave it in TempDir
}

}  // namespace
}  // namespace dpclustx
