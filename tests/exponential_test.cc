#include "dp/exponential.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(ExponentialMechanismTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(ExponentialMechanism({}, 1.0, 1.0, rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 0.0, 1.0, rng).ok());
  EXPECT_FALSE(ExponentialMechanism({1.0}, 1.0, 0.0, rng).ok());
}

TEST(ExponentialMechanismTest, SingleCandidateAlwaysSelected) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto result = ExponentialMechanism({3.14}, 1.0, 1.0, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, 0u);
  }
}

TEST(ExponentialMechanismTest, MatchesTheoreticalDistribution) {
  // P(select i) = exp(ε·s_i/2) / Σ exp(ε·s_j/2).
  const std::vector<double> scores = {0.0, 2.0, 4.0};
  const double epsilon = 1.0;
  std::vector<double> expected(3);
  double total = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    expected[i] = std::exp(epsilon * scores[i] / 2.0);
    total += expected[i];
  }
  for (double& e : expected) e /= total;

  Rng rng(3);
  constexpr size_t kSamples = 200000;
  std::vector<size_t> counts(3, 0);
  for (size_t s = 0; s < kSamples; ++s) {
    ++counts[ExponentialMechanism(scores, 1.0, epsilon, rng).value()];
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, expected[i], 0.01)
        << "candidate " << i;
  }
}

TEST(ExponentialMechanismTest, HighEpsilonSelectsArgmax) {
  Rng rng(4);
  const std::vector<double> scores = {1.0, 5.0, 2.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ExponentialMechanism(scores, 1.0, 1000.0, rng).value(), 1u);
  }
}

TEST(ExponentialMechanismTest, StableForHugeScaledScores) {
  // Scores whose exp() would overflow; the Gumbel-max form must not.
  Rng rng(5);
  const std::vector<double> scores = {1e6, 2e6};
  const auto result = ExponentialMechanism(scores, 1.0, 10.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 1u);
}

TEST(ExponentialMechanismTest, LowEpsilonNearUniform) {
  Rng rng(6);
  const std::vector<double> scores = {0.0, 1.0};
  constexpr size_t kSamples = 100000;
  size_t first = 0;
  for (size_t s = 0; s < kSamples; ++s) {
    if (ExponentialMechanism(scores, 1.0, 1e-6, rng).value() == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / kSamples, 0.5, 0.01);
}

TEST(ExponentialMechanismErrorBoundTest, ShrinksWithEpsilon) {
  const double loose = ExponentialMechanismErrorBound(10, 1.0, 0.1, 1.0);
  const double tight = ExponentialMechanismErrorBound(10, 1.0, 1.0, 1.0);
  EXPECT_GT(loose, tight);
  EXPECT_NEAR(loose / tight, 10.0, 1e-9);
}

TEST(ExponentialMechanismErrorBoundTest, EmpiricalUtilityHolds) {
  // With probability >= 1 − e^{−t}, selected score >= max − bound.
  const std::vector<double> scores = {0.0, 1.0, 2.0, 3.0, 10.0};
  const double epsilon = 2.0, t = 3.0;
  const double bound = ExponentialMechanismErrorBound(scores.size(), 1.0,
                                                      epsilon, t);
  Rng rng(7);
  constexpr size_t kSamples = 20000;
  size_t violations = 0;
  for (size_t s = 0; s < kSamples; ++s) {
    const double selected =
        scores[ExponentialMechanism(scores, 1.0, epsilon, rng).value()];
    if (selected < 10.0 - bound) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations) / kSamples,
            std::exp(-t) * 1.5 + 0.001);
}

}  // namespace
}  // namespace dpclustx
