// Parameterized DP-compliance sweeps: for each mechanism configuration, the
// empirical output distributions on neighboring inputs must respect the
// e^ε likelihood-ratio bound, and calibrated noise must match its nominal
// moments. These are statistical tests with fixed seeds and generous (but
// meaningful) tolerances.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "dp/dp_histogram.h"
#include "dp/exponential.h"
#include "dp/mechanisms.h"

namespace dpclustx {
namespace {

struct DpCase {
  const char* name;
  HistogramNoise noise;
  double epsilon;
};

class DpHistogramComplianceTest : public ::testing::TestWithParam<DpCase> {};

// Discretized likelihood-ratio check on one bin: release the histograms of
// neighboring counts many times; every (binned) output's empirical
// probability ratio must be within e^ε up to sampling slack.
TEST_P(DpHistogramComplianceTest, NeighboringRatioBounded) {
  const DpCase param = GetParam();
  Rng rng(42);
  DpHistogramOptions options;
  options.noise = param.noise;
  options.clamp_non_negative = false;

  constexpr size_t kSamples = 120000;
  const double bucket = 1.0;  // discretization for Laplace outputs
  std::map<long long, double> p_n, p_n1;
  const Histogram h_n(std::vector<double>{50.0});
  const Histogram h_n1(std::vector<double>{51.0});
  for (size_t s = 0; s < kSamples; ++s) {
    p_n[static_cast<long long>(std::floor(
        ReleaseDpHistogram(h_n, param.epsilon, rng, options)->bin(0) /
        bucket))] += 1.0;
    p_n1[static_cast<long long>(std::floor(
        ReleaseDpHistogram(h_n1, param.epsilon, rng, options)->bin(0) /
        bucket))] += 1.0;
  }
  // Laplace noise shifted by 1 across a 1-wide bucket can straddle bucket
  // boundaries, inflating the discretized ratio by up to one extra e^ε
  // bucket-width factor; allow multiplicative slack accordingly.
  const double bound = std::exp(param.epsilon * (1.0 + bucket)) * 1.15;
  for (const auto& [value, count] : p_n) {
    if (count < 2000.0) continue;  // skip high-variance tails
    const auto it = p_n1.find(value);
    ASSERT_NE(it, p_n1.end()) << "output bucket " << value;
    const double ratio = count / it->second;
    EXPECT_LT(ratio, bound) << param.name << " bucket " << value;
    EXPECT_GT(ratio, 1.0 / bound) << param.name << " bucket " << value;
  }
}

TEST_P(DpHistogramComplianceTest, UnclampedNoiseIsCentered) {
  const DpCase param = GetParam();
  Rng rng(43);
  DpHistogramOptions options;
  options.noise = param.noise;
  options.clamp_non_negative = false;
  const Histogram exact(std::vector<double>{1000.0, 500.0, 0.0, 250.0});
  Histogram sum(4);
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sum = sum.Plus(*ReleaseDpHistogram(exact, param.epsilon, rng, options));
  }
  const double tolerance = 4.0 / param.epsilon / std::sqrt(kTrials) * 5.0;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sum.bin(static_cast<ValueCode>(i)) / kTrials,
                exact.bin(static_cast<ValueCode>(i)), tolerance + 0.5)
        << param.name << " bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, DpHistogramComplianceTest,
    ::testing::Values(DpCase{"geometric_tight", HistogramNoise::kGeometric,
                             0.3},
                      DpCase{"geometric_loose", HistogramNoise::kGeometric,
                             1.0},
                      DpCase{"laplace_tight", HistogramNoise::kLaplace, 0.3},
                      DpCase{"laplace_loose", HistogramNoise::kLaplace,
                             1.0}),
    [](const ::testing::TestParamInfo<DpCase>& info) {
      return info.param.name;
    });

struct EmCase {
  double epsilon;
  double sensitivity;
};

class ExponentialMechanismSweepTest
    : public ::testing::TestWithParam<EmCase> {};

TEST_P(ExponentialMechanismSweepTest, MatchesClosedFormDistribution) {
  const EmCase param = GetParam();
  const std::vector<double> scores = {0.0, 1.0, 3.0, 3.5};
  std::vector<double> expected(scores.size());
  double total = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    expected[i] =
        std::exp(param.epsilon * scores[i] / (2.0 * param.sensitivity));
    total += expected[i];
  }
  for (double& e : expected) e /= total;

  Rng rng(44);
  constexpr size_t kSamples = 150000;
  std::vector<size_t> counts(scores.size(), 0);
  for (size_t s = 0; s < kSamples; ++s) {
    ++counts[ExponentialMechanism(scores, param.sensitivity, param.epsilon,
                                  rng)
                 .value()];
  }
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, expected[i],
                0.01)
        << "eps=" << param.epsilon << " candidate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExponentialMechanismSweepTest,
                         ::testing::Values(EmCase{0.5, 1.0}, EmCase{2.0, 1.0},
                                           EmCase{2.0, 4.0}),
                         [](const ::testing::TestParamInfo<EmCase>& info) {
                           return "case" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace dpclustx
