#include "core/explainer.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "data/synthetic.h"

namespace dpclustx {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<ClusterId> labels;
  size_t num_clusters;
};

Fixture MakeFixture(size_t rows = 4000, size_t clusters = 3,
                    uint64_t seed = 1) {
  synth::SyntheticConfig config;
  config.num_rows = rows;
  config.num_attributes = 10;
  config.num_latent_groups = clusters;
  config.min_domain = 2;
  config.max_domain = 8;
  config.signal_strength = 0.9;
  config.informative_fraction = 0.5;
  config.seed = seed;
  Dataset dataset = std::move(*synth::Generate(config));
  KMeansOptions kmeans;
  kmeans.num_clusters = clusters;
  kmeans.seed = seed;
  const auto clustering = FitKMeans(dataset, kmeans);
  std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  return {std::move(dataset), std::move(labels), clusters};
}

TEST(ExplainerTest, ValidatesOptions) {
  const Fixture f = MakeFixture(500);
  DpClustXOptions options;
  options.epsilon_cand_set = 0.0;
  EXPECT_FALSE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                         options)
                   .ok());
  options = DpClustXOptions{};
  options.num_candidates = 0;
  EXPECT_FALSE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                         options)
                   .ok());
  options = DpClustXOptions{};
  options.lambda = GlobalWeights{0.9, 0.9, 0.9};
  EXPECT_FALSE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                         options)
                   .ok());
  options = DpClustXOptions{};
  options.epsilon_hist = 0.0;  // required when histograms are generated
  EXPECT_FALSE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                         options)
                   .ok());
}

TEST(ExplainerTest, ProducesCompleteExplanation) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.seed = 2;
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination.size(), f.num_clusters);
  EXPECT_EQ(explanation->per_cluster.size(), f.num_clusters);
  EXPECT_EQ(explanation->candidate_sets.size(), f.num_clusters);
  for (size_t c = 0; c < f.num_clusters; ++c) {
    const SingleClusterExplanation& e = explanation->per_cluster[c];
    EXPECT_EQ(e.cluster, c);
    EXPECT_EQ(e.attribute, explanation->combination[c]);
    const size_t domain =
        f.dataset.schema().attribute(e.attribute).domain_size();
    EXPECT_EQ(e.inside.domain_size(), domain);
    EXPECT_EQ(e.outside.domain_size(), domain);
  }
}

TEST(ExplainerTest, CombinationDrawnFromCandidateSets) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.seed = 3;
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok());
  for (size_t c = 0; c < f.num_clusters; ++c) {
    const auto& set = explanation->candidate_sets[c];
    EXPECT_EQ(set.size(), options.num_candidates);
    EXPECT_NE(std::find(set.begin(), set.end(),
                        explanation->combination[c]),
              set.end());
  }
}

TEST(ExplainerTest, NoisyHistogramsAreNonNegative) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.seed = 4;
  options.epsilon_hist = 0.05;  // heavy noise
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok());
  for (const auto& e : explanation->per_cluster) {
    for (size_t i = 0; i < e.inside.domain_size(); ++i) {
      EXPECT_GE(e.inside.bin(static_cast<ValueCode>(i)), 0.0);
      EXPECT_GE(e.outside.bin(static_cast<ValueCode>(i)), 0.0);
    }
  }
}

TEST(ExplainerTest, SkipHistogramsLeavesThemEmpty) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.generate_histograms = false;
  options.epsilon_hist = 0.0;  // legal in this mode
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->per_cluster.empty());
  EXPECT_EQ(explanation->combination.size(), f.num_clusters);
}

TEST(ExplainerTest, ChargesBudgetLedger) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  DpClustXOptions options;
  options.epsilon_cand_set = 0.1;
  options.epsilon_top_comb = 0.2;
  options.epsilon_hist = 0.3;
  ASSERT_TRUE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                        options, &budget)
                  .ok());
  EXPECT_NEAR(budget.spent_epsilon(), 0.6, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 3u);
}

TEST(ExplainerTest, BudgetShortfallFailsBeforeRelease) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(0.25);
  DpClustXOptions options;  // needs 0.3 total
  EXPECT_EQ(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                      options, &budget)
                .status()
                .code(),
            StatusCode::kOutOfBudget);
}

TEST(ExplainerTest, DeterministicGivenSeed) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.seed = 99;
  const auto a = ExplainDpClustXWithLabels(f.dataset, f.labels,
                                           f.num_clusters, options);
  const auto b = ExplainDpClustXWithLabels(f.dataset, f.labels,
                                           f.num_clusters, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->combination, b->combination);
  for (size_t c = 0; c < f.num_clusters; ++c) {
    EXPECT_DOUBLE_EQ(Histogram::L1Distance(a->per_cluster[c].inside,
                                           b->per_cluster[c].inside),
                     0.0);
  }
}

TEST(ExplainerTest, MaxCombinationsGuardTriggers) {
  const Fixture f = MakeFixture(2000, 3);
  DpClustXOptions options;
  options.max_combinations = 10;  // 3^3 = 27 > 10
  const auto result = ExplainDpClustXWithLabels(f.dataset, f.labels,
                                                f.num_clusters, options);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplainerTest, SvtStageOneProducesValidExplanation) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.stage1 = Stage1Selector::kSvt;
  options.svt_threshold_fraction = 0.2;
  options.epsilon_cand_set = 1.0;  // SVT needs more signal to be useful
  options.seed = 6;
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination.size(), f.num_clusters);
  for (size_t c = 0; c < f.num_clusters; ++c) {
    const auto& set = explanation->candidate_sets[c];
    ASSERT_FALSE(set.empty());
    EXPECT_LE(set.size(), options.num_candidates);
    EXPECT_NE(std::find(set.begin(), set.end(),
                        explanation->combination[c]),
              set.end());
  }
}

TEST(ExplainerTest, SvtStageOneValidatesThreshold) {
  const Fixture f = MakeFixture(500);
  DpClustXOptions options;
  options.stage1 = Stage1Selector::kSvt;
  options.svt_threshold_fraction = 0.0;
  EXPECT_FALSE(ExplainDpClustXWithLabels(f.dataset, f.labels, f.num_clusters,
                                         options)
                   .ok());
}

TEST(ExplainerTest, EndToEndAgainstClusteringFunction) {
  const Fixture f = MakeFixture();
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  const auto clustering = FitKMeans(f.dataset, kmeans);
  ASSERT_TRUE(clustering.ok());
  DpClustXOptions options;
  const auto explanation =
      ExplainDpClustX(f.dataset, **clustering, options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->combination.size(), 3u);
}

TEST(SearchCombinationTest, ExactModePicksArgmax) {
  // Hand-built tables: 2 clusters × 2 candidates; unary makes (1, 0) best.
  core_internal::CombinationScoreTables tables;
  tables.unary = {{0.0, 5.0}, {3.0, 1.0}};
  const std::vector<std::vector<AttrIndex>> sets = {{7, 8}, {9, 10}};
  Rng rng(1);
  const auto combo = core_internal::SearchCombination(
      sets, tables, /*epsilon=*/0.0, 1.0, 1000, rng);
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(*combo, (AttributeCombination{8, 9}));
}

TEST(SearchCombinationTest, PairTermsInfluenceSelection) {
  // Unary alone would pick (0, 0); a strong pair bonus flips to (1, 1).
  core_internal::CombinationScoreTables tables;
  tables.unary = {{1.0, 0.5}, {1.0, 0.5}};
  tables.pair.resize(2);
  tables.pair[0].resize(2);
  tables.pair[0][1] = {0.0, 0.0, 0.0, 10.0};  // bonus only for (1, 1)
  const std::vector<std::vector<AttrIndex>> sets = {{7, 8}, {9, 10}};
  Rng rng(2);
  const auto combo = core_internal::SearchCombination(
      sets, tables, 0.0, 1.0, 1000, rng);
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(*combo, (AttributeCombination{8, 10}));
}

TEST(SearchCombinationParallelTest, ExactModeMatchesSerial) {
  // Random tables over 4 clusters × 4 candidates; the exact argmax must be
  // identical in serial and parallel mode, for any thread count.
  Rng table_rng(77);
  const std::vector<std::vector<AttrIndex>> sets(4, {0, 1, 2, 3});
  core_internal::CombinationScoreTables tables;
  tables.unary.assign(4, std::vector<double>(4));
  for (auto& row : tables.unary) {
    for (double& value : row) value = table_rng.UniformDouble();
  }
  tables.pair.resize(4);
  for (size_t c = 0; c < 4; ++c) {
    tables.pair[c].resize(4);
    for (size_t cp = c + 1; cp < 4; ++cp) {
      tables.pair[c][cp].resize(16);
      for (double& value : tables.pair[c][cp]) {
        value = table_rng.UniformDouble();
      }
    }
  }
  Rng rng_serial(1);
  const auto serial = core_internal::SearchCombination(
      sets, tables, 0.0, 1.0, 1 << 20, rng_serial);
  ASSERT_TRUE(serial.ok());
  for (const size_t threads : {1u, 2u, 3u, 8u, 64u}) {
    Rng rng_parallel(1);
    const auto parallel = core_internal::SearchCombinationParallel(
        sets, tables, 0.0, 1.0, 1 << 20, rng_parallel, threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*parallel, *serial) << threads << " threads";
  }
}

TEST(SearchCombinationParallelTest, PrivateModeReturnsValidCombination) {
  const std::vector<std::vector<AttrIndex>> sets = {{5, 6}, {7, 8}, {9, 1}};
  core_internal::CombinationScoreTables tables;
  tables.unary = {{0.1, 0.9}, {0.5, 0.4}, {0.2, 0.8}};
  Rng rng(3);
  const auto combo = core_internal::SearchCombinationParallel(
      sets, tables, 2.0, 1.0, 1000, rng, 4);
  ASSERT_TRUE(combo.ok());
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE((*combo)[c] == sets[c][0] || (*combo)[c] == sets[c][1]);
  }
}

TEST(ExplainerTest, MultithreadedOptionProducesValidExplanation) {
  const Fixture f = MakeFixture();
  DpClustXOptions options;
  options.num_threads = 4;
  options.seed = 5;
  const auto explanation = ExplainDpClustXWithLabels(
      f.dataset, f.labels, f.num_clusters, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  for (size_t c = 0; c < f.num_clusters; ++c) {
    const auto& set = explanation->candidate_sets[c];
    EXPECT_NE(std::find(set.begin(), set.end(),
                        explanation->combination[c]),
              set.end());
  }
}

TEST(SearchCombinationTest, ValidatesShapes) {
  core_internal::CombinationScoreTables tables;
  tables.unary = {{1.0}};
  Rng rng(3);
  EXPECT_FALSE(core_internal::SearchCombination({{0}, {1}}, tables, 0.0, 1.0,
                                                1000, rng)
                   .ok());
  EXPECT_FALSE(
      core_internal::SearchCombination({}, {}, 0.0, 1.0, 1000, rng).ok());
}

}  // namespace
}  // namespace dpclustx
