#include "core/multi_explainer.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "data/synthetic.h"

namespace dpclustx {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<ClusterId> labels;
  size_t num_clusters;
  StatsCache stats;
};

Fixture MakeFixture(uint64_t seed = 1) {
  synth::SyntheticConfig config;
  config.num_rows = 3000;
  config.num_attributes = 8;
  config.num_latent_groups = 3;
  config.max_domain = 6;
  config.signal_strength = 0.9;
  config.seed = seed;
  Dataset dataset = std::move(*synth::Generate(config));
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  kmeans.seed = seed;
  const auto clustering = FitKMeans(dataset, kmeans);
  std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  auto stats = StatsCache::Build(dataset, labels, 3);
  return {std::move(dataset), std::move(labels), 3, std::move(*stats)};
}

TEST(MultiExplainerTest, ValidatesAttrsPerCluster) {
  const Fixture f = MakeFixture();
  MultiExplainOptions options;
  options.attrs_per_cluster = 0;
  EXPECT_FALSE(ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3, options)
                   .ok());
  options.attrs_per_cluster = 5;  // > k = 3
  EXPECT_FALSE(ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3, options)
                   .ok());
}

TEST(MultiExplainerTest, ProducesEllExplanationsPerCluster) {
  const Fixture f = MakeFixture();
  MultiExplainOptions options;
  options.attrs_per_cluster = 2;
  options.base.seed = 7;
  const auto result =
      ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->combination.size(), 3u);
  ASSERT_EQ(result->explanations.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(result->combination[c].size(), 2u);
    EXPECT_EQ(result->explanations[c].size(), 2u);
    // Distinct attributes within a cluster (subsets, not multisets).
    const std::set<AttrIndex> distinct(result->combination[c].begin(),
                                       result->combination[c].end());
    EXPECT_EQ(distinct.size(), 2u);
    // Each selected attribute comes from the candidate set.
    for (AttrIndex attr : result->combination[c]) {
      const auto& set = result->candidate_sets[c];
      EXPECT_NE(std::find(set.begin(), set.end(), attr), set.end());
    }
  }
}

TEST(MultiExplainerTest, EllOneScoreMatchesGlobalScore) {
  // Appendix B: the extended score coincides with GlScore when ℓ = 1.
  const Fixture f = MakeFixture();
  GlobalWeights lambda;
  const AttributeCombination ac = {0, 3, 5};
  std::vector<std::vector<AttrIndex>> multi_ac = {{0}, {3}, {5}};
  EXPECT_NEAR(MultiGlobalScore(f.stats, multi_ac, lambda),
              GlobalScore(f.stats, ac, lambda), 1e-9);
}

TEST(MultiExplainerTest, IntraClusterPairsCountTowardDiversity) {
  // With ℓ = 2 and distinct attributes in one cluster, the pair (c, A),
  // (c, A') contributes min(|D_c|, |D_c|) = |D_c| to diversity.
  const Fixture f = MakeFixture();
  GlobalWeights div_only{0.0, 0.0, 1.0};
  // Single cluster view: build a 1-cluster stats cache.
  const std::vector<ClusterId> one_cluster(f.dataset.num_rows(), 0);
  const auto stats = StatsCache::Build(f.dataset, one_cluster, 1);
  std::vector<std::vector<AttrIndex>> multi_ac = {{0, 1}};
  EXPECT_NEAR(MultiGlobalScore(*stats, multi_ac, div_only),
              static_cast<double>(f.dataset.num_rows()), 1e-9);
}

TEST(MultiExplainerTest, DeterministicGivenSeed) {
  const Fixture f = MakeFixture();
  MultiExplainOptions options;
  options.attrs_per_cluster = 2;
  options.base.seed = 13;
  const auto a = ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3,
                                                options);
  const auto b = ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3,
                                                options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->combination, b->combination);
}

TEST(MultiExplainerTest, ChargesBudget) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  MultiExplainOptions options;
  options.attrs_per_cluster = 2;
  ASSERT_TRUE(ExplainDpClustXMultiWithLabels(f.dataset, f.labels, 3, options,
                                             &budget)
                  .ok());
  EXPECT_NEAR(budget.spent_epsilon(), 0.3, 1e-12);
}

TEST(MultiExplainerTest, WorksAgainstClusteringFunction) {
  const Fixture f = MakeFixture();
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  const auto clustering = FitKMeans(f.dataset, kmeans);
  MultiExplainOptions options;
  options.attrs_per_cluster = 2;
  const auto result = ExplainDpClustXMulti(f.dataset, **clustering, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->combination.size(), 3u);
}

}  // namespace
}  // namespace dpclustx
