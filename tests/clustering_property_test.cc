// Parameterized properties that every clustering method must satisfy, over
// a sweep of data shapes: labels in range, determinism under a fixed seed,
// totality (arbitrary domain tuples get valid labels), consistency between
// Assign and AssignAll, and recovery of well-separated planted blocks.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/agglomerative.h"
#include "cluster/dp_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "test_util.h"

namespace dpclustx {
namespace {

struct ClusteringCase {
  std::string method;
  size_t rows_per_block;
  size_t dims;
  size_t domain;
  // Separated-block recovery is only asserted for non-private methods.
  bool assert_recovery;
};

class ClusteringPropertyTest
    : public ::testing::TestWithParam<ClusteringCase> {};

StatusOr<std::unique_ptr<ClusteringFunction>> Fit(
    const std::string& method, const Dataset& dataset, size_t k,
    uint64_t seed) {
  if (method == "k-means") {
    KMeansOptions options;
    options.num_clusters = k;
    options.seed = seed;
    return FitKMeans(dataset, options);
  }
  if (method == "dp-k-means") {
    DpKMeansOptions options;
    options.num_clusters = k;
    options.epsilon = 50.0;  // generous: properties, not utility, under test
    options.seed = seed;
    return FitDpKMeans(dataset, options);
  }
  if (method == "k-modes") {
    KModesOptions options;
    options.num_clusters = k;
    options.seed = seed;
    return FitKModes(dataset, options);
  }
  if (method == "agglomerative") {
    AgglomerativeOptions options;
    options.num_clusters = k;
    options.seed = seed;
    return FitAgglomerative(dataset, options);
  }
  GmmOptions options;
  options.num_components = k;
  options.seed = seed;
  return FitGmm(dataset, options);
}

TEST_P(ClusteringPropertyTest, LabelsValidAndConsistent) {
  const ClusteringCase& param = GetParam();
  const Dataset dataset = testutil::MakeTwoBlockDataset(
      param.rows_per_block, param.dims, param.domain, 11);
  const auto clustering = Fit(param.method, dataset, 2, 3);
  ASSERT_TRUE(clustering.ok()) << clustering.status();
  EXPECT_EQ((*clustering)->num_clusters(), 2u);
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  ASSERT_EQ(labels.size(), dataset.num_rows());
  for (size_t r = 0; r < labels.size(); ++r) {
    ASSERT_LT(labels[r], 2u);
  }
  // AssignAll must agree with per-tuple Assign.
  for (size_t r = 0; r < dataset.num_rows(); r += 37) {
    EXPECT_EQ(labels[r], (*clustering)->Assign(dataset.Row(r)))
        << param.method << " row " << r;
  }
}

TEST_P(ClusteringPropertyTest, TotalOnDomain) {
  const ClusteringCase& param = GetParam();
  const Dataset dataset = testutil::MakeTwoBlockDataset(
      param.rows_per_block, param.dims, param.domain, 13);
  const auto clustering = Fit(param.method, dataset, 2, 5);
  ASSERT_TRUE(clustering.ok());
  // Tuples never seen in the data — including extreme corners — must be
  // assignable (clustering functions are total on dom(R), paper §2.2).
  std::vector<ValueCode> corner_low(param.dims, 0);
  std::vector<ValueCode> corner_high(
      param.dims, static_cast<ValueCode>(param.domain - 1));
  EXPECT_LT((*clustering)->Assign(corner_low), 2u);
  EXPECT_LT((*clustering)->Assign(corner_high), 2u);
}

TEST_P(ClusteringPropertyTest, DeterministicGivenSeed) {
  const ClusteringCase& param = GetParam();
  const Dataset dataset = testutil::MakeTwoBlockDataset(
      param.rows_per_block, param.dims, param.domain, 17);
  const auto a = Fit(param.method, dataset, 2, 7);
  const auto b = Fit(param.method, dataset, 2, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST_P(ClusteringPropertyTest, RecoversSeparatedBlocks) {
  const ClusteringCase& param = GetParam();
  if (!param.assert_recovery) {
    GTEST_SKIP() << "recovery not asserted for " << param.method;
  }
  const Dataset dataset = testutil::MakeTwoBlockDataset(
      param.rows_per_block, param.dims, param.domain, 19);
  const auto clustering = Fit(param.method, dataset, 2, 9);
  ASSERT_TRUE(clustering.ok());
  EXPECT_GT(testutil::TwoBlockPurity((*clustering)->AssignAll(dataset)),
            0.9)
      << param.method;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ClusteringPropertyTest,
    ::testing::Values(
        ClusteringCase{"k-means", 400, 5, 9, true},
        ClusteringCase{"k-means", 150, 2, 3, true},
        ClusteringCase{"dp-k-means", 800, 4, 9, false},
        ClusteringCase{"k-modes", 400, 5, 9, true},
        ClusteringCase{"k-modes", 150, 8, 4, true},
        ClusteringCase{"agglomerative", 300, 5, 9, true},
        ClusteringCase{"gmm", 400, 5, 9, true},
        ClusteringCase{"gmm", 150, 2, 12, true}),
    [](const ::testing::TestParamInfo<ClusteringCase>& info) {
      std::string name = info.param.method + "_" +
                         std::to_string(info.param.dims) + "d" +
                         std::to_string(info.param.domain);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dpclustx
