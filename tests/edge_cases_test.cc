// Boundary-condition coverage across modules: empty datasets, degenerate
// cluster structures, single-candidate searches, exact bin edges, and
// filesystem failures — the inputs that never appear in the happy-path
// tests but do appear in production.

#include <gtest/gtest.h>

#include "baselines/tabee.h"
#include <fstream>

#include "core/candidate_selection.h"
#include "core/explainer.h"
#include "core/quality.h"
#include "core/stats_cache.h"
#include "data/binning.h"
#include "data/csv.h"
#include "eval/metrics.h"

namespace dpclustx {
namespace {

TEST(EdgeCaseTest, EmptyDatasetStatsAreAllZero) {
  Schema schema({Attribute::WithAnonymousDomain("a", 3)});
  const Dataset empty(schema);
  const auto stats = StatsCache::Build(empty, {}, 2);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_rows(), 0u);
  EXPECT_EQ(stats->cluster_size(0), 0u);
  EXPECT_DOUBLE_EQ(InterestingnessP(*stats, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SufficiencyP(*stats, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(DiversityP(*stats, {0, 0}), 0.0);
  GlobalWeights lambda;
  EXPECT_DOUBLE_EQ(GlobalScore(*stats, {0, 0}, lambda), 0.0);
}

TEST(EdgeCaseTest, EveryRowInOneClusterOfMany) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (int i = 0; i < 100; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(i % 2)});
    labels.push_back(3);  // only cluster 3 of 5 is populated
  }
  const auto stats = StatsCache::Build(dataset, labels, 5);
  ASSERT_TRUE(stats.ok());
  // The populated cluster is the whole dataset: zero interestingness.
  EXPECT_NEAR(InterestingnessP(*stats, 3, 0), 0.0, 1e-9);
  // The framework still runs end to end over the degenerate clustering.
  DpClustXOptions options;
  options.num_candidates = 1;
  const auto explanation =
      ExplainDpClustXWithLabels(dataset, labels, 5, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination.size(), 5u);
}

TEST(EdgeCaseTest, SingleClusterSingleAttribute) {
  Schema schema({Attribute::WithAnonymousDomain("only", 4)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (int i = 0; i < 50; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(i % 4)});
    labels.push_back(0);
  }
  DpClustXOptions options;
  options.num_candidates = 1;
  const auto explanation =
      ExplainDpClustXWithLabels(dataset, labels, 1, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination, AttributeCombination{0});
}

TEST(EdgeCaseTest, SearchCombinationSingleCandidateIsForced) {
  core_internal::CombinationScoreTables tables;
  tables.unary = {{1.0}, {2.0}};
  Rng rng(1);
  const auto combo = core_internal::SearchCombination(
      {{7}, {9}}, tables, 5.0, 1.0, 100, rng);
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(*combo, (AttributeCombination{7, 9}));
}

TEST(EdgeCaseTest, TabeeOnTinyDataset) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2),
                 Attribute::WithAnonymousDomain("b", 2)});
  Dataset dataset(schema);
  dataset.AppendRowUnchecked({0, 1});
  dataset.AppendRowUnchecked({1, 0});
  const auto stats =
      StatsCache::Build(dataset, std::vector<ClusterId>{0, 1}, 2);
  ASSERT_TRUE(stats.ok());
  baselines::TabeeOptions options;
  options.num_candidates = 2;
  const auto explanation = baselines::ExplainTabee(*stats, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  GlobalWeights lambda;
  // Two singleton clusters with disjoint values: perfect sufficiency.
  EXPECT_NEAR(eval::Sufficiency(*stats, explanation->combination), 1.0,
              1e-9);
  (void)lambda;
}

TEST(EdgeCaseTest, BinnerExactEdgeValues) {
  const auto binner = Binner::FromEdges("x", {0.0, 10.0, 20.0, 30.0});
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->CodeFor(0.0), 0u);
  EXPECT_EQ(binner->CodeFor(10.0), 1u);   // left-closed
  EXPECT_EQ(binner->CodeFor(20.0), 2u);
  EXPECT_EQ(binner->CodeFor(30.0), 2u);   // last bin right-closed
  EXPECT_EQ(binner->CodeFor(29.999999), 2u);
}

TEST(EdgeCaseTest, WriteCsvToUnwritablePathFails) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  dataset.AppendRowUnchecked({0});
  const Status status = WriteCsv(dataset, "/nonexistent_dir/zz/a.csv");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(EdgeCaseTest, CsvWithOnlyHeaderGivesEmptyDataset) {
  const std::string path = testing::TempDir() + "/dpx_header_only.csv";
  {
    std::ofstream out(path);
    out << "a,b\n";
  }
  const auto dataset = ReadCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_rows(), 0u);
  EXPECT_EQ(dataset->num_attributes(), 2u);
}

TEST(EdgeCaseTest, MaeOverOneClusterIsBinary) {
  EXPECT_DOUBLE_EQ(eval::MeanAbsoluteError({3}, {3}), 0.0);
  EXPECT_DOUBLE_EQ(eval::MeanAbsoluteError({3}, {4}), 1.0);
}

TEST(EdgeCaseTest, CandidateSelectionWithKEqualToAttributeCount) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2),
                 Attribute::WithAnonymousDomain("b", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(2)),
                                static_cast<ValueCode>(rng.UniformInt(2))});
    labels.push_back(static_cast<ClusterId>(i % 2));
  }
  const auto stats = StatsCache::Build(dataset, labels, 2);
  CandidateSelectionOptions options;
  options.k = 2;  // == |A|: the candidate set is a noisy permutation
  const auto sets = SelectCandidates(*stats, options, rng);
  ASSERT_TRUE(sets.ok());
  for (const auto& set : *sets) {
    EXPECT_EQ(set.size(), 2u);
  }
}

TEST(EdgeCaseTest, GlobalWeightsSingleFacetConfigurations) {
  // Degenerate but legal weightings must flow through the whole scorer.
  Schema schema({Attribute::WithAnonymousDomain("a", 3)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(3))});
    labels.push_back(static_cast<ClusterId>(i % 3));
  }
  const auto stats = StatsCache::Build(dataset, labels, 3);
  for (const GlobalWeights lambda :
       {GlobalWeights{1.0, 0.0, 0.0}, GlobalWeights{0.0, 1.0, 0.0},
        GlobalWeights{0.0, 0.0, 1.0}}) {
    ASSERT_TRUE(lambda.Validate().ok());
    const double score = GlobalScore(*stats, {0, 0, 0}, lambda);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, GlobalScoreRangeBound(*stats, lambda) + 1e-9);
  }
}

}  // namespace
}  // namespace dpclustx
