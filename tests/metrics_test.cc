#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dpclustx::eval {
namespace {

StatsCache MakeStats(size_t rows, size_t clusters, uint64_t seed) {
  Schema schema({Attribute::WithAnonymousDomain("a", 4),
                 Attribute::WithAnonymousDomain("b", 3)});
  Dataset dataset(schema);
  Rng rng(seed);
  std::vector<ClusterId> labels;
  for (size_t r = 0; r < rows; ++r) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(4)),
                                static_cast<ValueCode>(rng.UniformInt(3))});
    labels.push_back(static_cast<ClusterId>(rng.UniformInt(clusters)));
  }
  return std::move(*StatsCache::Build(dataset, labels, clusters));
}

// Dataset where cluster values are disjoint from the rest: TVD = 1 regime.
StatsCache MakeDisjointStats() {
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (int i = 0; i < 50; ++i) {
    dataset.AppendRowUnchecked({0});
    labels.push_back(0);
  }
  for (int i = 0; i < 50; ++i) {
    dataset.AppendRowUnchecked({1});
    labels.push_back(1);
  }
  return std::move(*StatsCache::Build(dataset, labels, 2));
}

TEST(TvdInterestingnessTest, RangeAndEmptyCluster) {
  const StatsCache stats = MakeStats(200, 2, 1);
  for (size_t c = 0; c < 2; ++c) {
    for (AttrIndex a = 0; a < 2; ++a) {
      const double tvd =
          TvdInterestingness(stats, static_cast<ClusterId>(c), a);
      EXPECT_GE(tvd, 0.0);
      EXPECT_LE(tvd, 1.0);
    }
  }
  // An empty cluster scores 0 by convention.
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  dataset.AppendRowUnchecked({0});
  const auto with_empty =
      StatsCache::Build(dataset, std::vector<ClusterId>{0}, 2);
  EXPECT_DOUBLE_EQ(TvdInterestingness(*with_empty, 1, 0), 0.0);
}

TEST(TvdInterestingnessTest, DisjointSupportsGiveHalfTvd) {
  // Cluster 0 is all-zeros, full data is 50/50: TVD = 1/2.
  const StatsCache stats = MakeDisjointStats();
  EXPECT_NEAR(TvdInterestingness(stats, 0, 0), 0.5, 1e-9);
}

TEST(SufficiencyTest, PerfectSeparationScoresOne) {
  const StatsCache stats = MakeDisjointStats();
  // Each cluster's values appear only inside it.
  EXPECT_NEAR(Sufficiency(stats, {0, 0}), 1.0, 1e-9);
}

TEST(SufficiencyTest, WithinUnitInterval) {
  const StatsCache stats = MakeStats(300, 3, 3);
  const AttributeCombination ac = {0, 1, 0};
  const double suf = Sufficiency(stats, ac);
  EXPECT_GE(suf, 0.0);
  EXPECT_LE(suf, 1.0);
}

TEST(TabeeDiversityTest, AllDistinctAttributesScoreOne) {
  const StatsCache stats = MakeStats(200, 2, 4);
  EXPECT_NEAR(TabeeDiversity(stats, {0, 1}), 1.0, 1e-9);
}

TEST(TabeeDiversityTest, SharedAttributeIdenticalClustersScoreHalf) {
  // Two clusters with identical distributions sharing one attribute:
  // the chain is 1 + TVD(=0) = 1, normalized by |C| = 2 → 0.5.
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (int i = 0; i < 40; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(i % 2)});
    labels.push_back(static_cast<ClusterId>(i % 2 == 0 ? 0 : 1));
  }
  // Both clusters are constant-but-different... make them identical instead:
  Dataset identical(schema);
  std::vector<ClusterId> labels2;
  for (int i = 0; i < 40; ++i) {
    identical.AppendRowUnchecked({static_cast<ValueCode>(i % 2)});
    labels2.push_back(static_cast<ClusterId>((i / 2) % 2));
  }
  const auto stats = StatsCache::Build(identical, labels2, 2);
  EXPECT_NEAR(TabeeDiversity(*stats, {0, 0}), 0.5, 1e-9);
}

TEST(TabeeDiversityTest, SharedAttributeDisjointClustersScoreOne) {
  const StatsCache stats = MakeDisjointStats();
  // Chain: 1 + TVD(=1) = 2, normalized by |C| = 2 → 1.
  EXPECT_NEAR(TabeeDiversity(stats, {0, 0}), 1.0, 1e-9);
}

TEST(TabeeDiversityTest, LargeExplainedBySetUsesMonteCarlo) {
  // 9 clusters sharing one attribute exercises the sampling path; the value
  // must stay in [0, 1] and be deterministic.
  const StatsCache stats = MakeStats(900, 9, 5);
  const AttributeCombination ac(9, 0);
  const double d1 = TabeeDiversity(stats, ac);
  const double d2 = TabeeDiversity(stats, ac);
  EXPECT_GE(d1, 0.0);
  EXPECT_LE(d1, 1.0);
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(SensitiveQualityTest, CombinesWeightedTerms) {
  const StatsCache stats = MakeStats(300, 3, 6);
  const AttributeCombination ac = {0, 1, 1};
  GlobalWeights lambda;
  const double expected = (Interestingness(stats, ac) +
                           Sufficiency(stats, ac) +
                           TabeeDiversity(stats, ac)) /
                          3.0;
  EXPECT_NEAR(SensitiveQuality(stats, ac, lambda), expected, 1e-9);
}

TEST(SensitiveQualityTest, InUnitInterval) {
  const StatsCache stats = MakeStats(400, 4, 7);
  Rng rng(8);
  GlobalWeights lambda;
  for (int trial = 0; trial < 30; ++trial) {
    AttributeCombination ac(4);
    for (auto& attr : ac) attr = static_cast<AttrIndex>(rng.UniformInt(2));
    const double quality = SensitiveQuality(stats, ac, lambda);
    EXPECT_GE(quality, 0.0);
    EXPECT_LE(quality, 1.0);
  }
}

TEST(SensitiveSingleClusterScoreTest, MatchesScaledLowSensitivityScore) {
  // SScore_p = |D_c| · sensitive SScore (same per-cluster ranking).
  const StatsCache stats = MakeStats(300, 2, 9);
  const SingleClusterWeights gamma{0.5, 0.5};
  for (AttrIndex a = 0; a < 2; ++a) {
    const double sensitive =
        SensitiveSingleClusterScore(stats, 0, a, gamma);
    const double low_sens = SingleClusterScore(stats, 0, a, gamma);
    EXPECT_NEAR(low_sens,
                static_cast<double>(stats.cluster_size(0)) * sensitive,
                1e-6);
  }
}

TEST(SensitivePairwiseDiversityTest, BoundsAndDistinctAttrs) {
  const StatsCache stats = MakeStats(200, 3, 10);
  EXPECT_NEAR(SensitivePairwiseDiversity(stats, {0, 1, 0}),
              (1.0 + 1.0 +
               Histogram::Tvd(stats.cluster_histogram(0, 0),
                              stats.cluster_histogram(2, 0))) /
                  3.0,
              1e-9);
}

TEST(MeanAbsoluteErrorTest, CountsMismatches) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {1, 9, 9}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({5}, {6}), 1.0);
}

TEST(QualityBreakdownReportTest, ListsClustersAndQuality) {
  const StatsCache stats = MakeStats(300, 2, 12);
  GlobalWeights lambda;
  const std::string report =
      QualityBreakdownReport(stats, {0, 1}, lambda, stats.schema());
  EXPECT_NE(report.find("cluster"), std::string::npos);
  EXPECT_NE(report.find("a"), std::string::npos);  // attribute name
  EXPECT_NE(report.find("Quality"), std::string::npos);
  // One row per cluster plus header, rule, and the quality line.
  size_t lines = 0;
  for (char c : report) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);
}

TEST(BuildSensitiveTablesTest, UnaryMatchesDirectEvaluation) {
  const StatsCache stats = MakeStats(300, 2, 11);
  const std::vector<std::vector<AttrIndex>> sets = {{0, 1}, {1, 0}};
  GlobalWeights lambda;
  const auto tables = BuildSensitiveTables(stats, sets, lambda);
  ASSERT_EQ(tables.unary.size(), 2u);
  // unary[0][0] corresponds to attribute 0 for cluster 0.
  const double expected =
      lambda.interestingness * TvdInterestingness(stats, 0, 0) / 2.0 +
      lambda.sufficiency * SufficiencyP(stats, 0, 0) /
          static_cast<double>(stats.num_rows());
  EXPECT_NEAR(tables.unary[0][0], expected, 1e-9);
}

}  // namespace
}  // namespace dpclustx::eval
