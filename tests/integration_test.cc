// End-to-end pipeline tests: synthesize → cluster (privately) → explain
// (privately) → evaluate, with budget accounting across the whole flow.

#include <gtest/gtest.h>

#include "baselines/tabee.h"
#include "cluster/dp_kmeans.h"
#include "cluster/kmeans.h"
#include "core/explainer.h"
#include "core/explanation.h"
#include "core/pipeline.h"
#include "core/serialization.h"
#include "data/derived.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace dpclustx {
namespace {

Dataset MakeData(uint64_t seed = 1, size_t rows = 8000) {
  synth::SyntheticConfig config;
  config.num_rows = rows;
  config.num_attributes = 15;
  config.num_latent_groups = 4;
  config.max_domain = 10;
  config.signal_strength = 0.9;
  config.informative_fraction = 0.4;
  config.seed = seed;
  return std::move(*synth::Generate(config));
}

TEST(IntegrationTest, FullPrivatePipelineUnderOneBudget) {
  const Dataset dataset = MakeData();
  PrivacyBudget budget(1.5);

  DpKMeansOptions clustering_options;
  clustering_options.num_clusters = 4;
  clustering_options.epsilon = 1.0;
  clustering_options.seed = 2;
  const auto clustering =
      FitDpKMeans(dataset, clustering_options, &budget);
  ASSERT_TRUE(clustering.ok());

  DpClustXOptions explain_options;  // 0.3 total
  explain_options.seed = 3;
  const auto explanation =
      ExplainDpClustX(dataset, **clustering, explain_options, &budget);
  ASSERT_TRUE(explanation.ok()) << explanation.status();

  // ε_clust + ε_exp = 1.0 + 0.3.
  EXPECT_NEAR(budget.spent_epsilon(), 1.3, 1e-9);
  EXPECT_EQ(budget.ledger().size(), 4u);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.2, 1e-9);

  // A second full explanation must not fit in the remaining 0.2.
  const auto second =
      ExplainDpClustX(dataset, **clustering, explain_options, &budget);
  EXPECT_EQ(second.status().code(), StatusCode::kOutOfBudget);
}

TEST(IntegrationTest, PipelineIsDeterministicGivenSeeds) {
  const Dataset dataset = MakeData();
  auto run = [&]() {
    DpKMeansOptions c;
    c.num_clusters = 3;
    c.seed = 5;
    const auto clustering = FitDpKMeans(dataset, c);
    DpClustXOptions e;
    e.seed = 7;
    return ExplainDpClustX(dataset, **clustering, e).value().combination;
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, ExplanationQualityTracksNonPrivateAtModerateEpsilon) {
  const Dataset dataset = MakeData(11);
  KMeansOptions kmeans;
  kmeans.num_clusters = 4;
  kmeans.seed = 11;
  const auto clustering = FitKMeans(dataset, kmeans);
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  const auto stats = StatsCache::Build(dataset, labels, 4);

  const auto tabee = baselines::ExplainTabee(*stats, {});
  ASSERT_TRUE(tabee.ok());
  GlobalWeights lambda;
  const double reference =
      eval::SensitiveQuality(*stats, tabee->combination, lambda);

  DpClustXOptions options;
  options.epsilon_cand_set = 0.5;
  options.epsilon_top_comb = 0.5;
  options.generate_histograms = false;
  double quality = 0.0;
  constexpr int kRuns = 8;
  for (int run = 0; run < kRuns; ++run) {
    options.seed = 100 + static_cast<uint64_t>(run);
    const auto explanation =
        ExplainDpClustXWithLabels(dataset, labels, 4, options);
    ASSERT_TRUE(explanation.ok());
    quality +=
        eval::SensitiveQuality(*stats, explanation->combination, lambda);
  }
  quality /= kRuns;
  EXPECT_GT(quality, 0.85 * reference);
}

TEST(IntegrationTest, RenderedReportMentionsEveryCluster) {
  const Dataset dataset = MakeData(13, 3000);
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  const auto clustering = FitKMeans(dataset, kmeans);
  DpClustXOptions options;
  options.epsilon_hist = 1.0;
  const auto explanation = ExplainDpClustX(dataset, **clustering, options);
  ASSERT_TRUE(explanation.ok());
  const std::string report =
      RenderGlobalExplanation(*explanation, dataset.schema());
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_NE(report.find("Cluster " + std::to_string(c)),
              std::string::npos);
  }
  EXPECT_NE(report.find("%"), std::string::npos);
}

TEST(IntegrationTest, TextualDescriptionDetectsPlantedShift) {
  // Cluster concentrated in the high half of an ordered domain against a
  // low-half background must be described as "higher values".
  Schema schema({Attribute("lab_proc",
                           {"[0,10)", "[10,20)", "[20,30)", "[30,40)"})});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const bool in_cluster = i < 400;
    const ValueCode code =
        in_cluster ? static_cast<ValueCode>(2 + rng.UniformInt(2))
                   : static_cast<ValueCode>(rng.UniformInt(2));
    dataset.AppendRowUnchecked({code});
    labels.push_back(in_cluster ? 0 : 1);
  }
  const auto stats = StatsCache::Build(dataset, labels, 2);
  SingleClusterExplanation e;
  e.cluster = 0;
  e.attribute = 0;
  e.inside = stats->cluster_histogram(0, 0);
  e.outside = stats->cluster_histogram(1, 0);
  const std::string text = DescribeExplanation(e, schema);
  EXPECT_NE(text.find("lab_proc"), std::string::npos);
  EXPECT_NE(text.find("higher values"), std::string::npos);
}

TEST(IntegrationTest, ExplanationSerializationRoundTripsThroughPipeline) {
  const Dataset dataset = MakeData(19, 4000);
  PipelineOptions options;
  options.num_clusters = 3;
  const auto result = RunPipeline(dataset, options);
  ASSERT_TRUE(result.ok());
  const std::string json =
      ExplanationToJson(result->explanation, dataset.schema());
  const auto parsed = ExplanationFromJson(json, dataset.schema());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->combination, result->explanation.combination);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(parsed->per_cluster[c].inside,
                              result->explanation.per_cluster[c].inside),
        0.0);
  }
}

TEST(IntegrationTest, ProductAttributeFlowsThroughWholePipeline) {
  // Future-work §8: 2-D histograms via product domains. Plant an XOR
  // pattern only the product attribute can explain, run the full DPClustX
  // pipeline over the extended schema, and check the product wins.
  Schema schema({Attribute::WithAnonymousDomain("x", 2),
                 Attribute::WithAnonymousDomain("y", 2),
                 Attribute::WithAnonymousDomain("noise", 4)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  Rng rng(21);
  for (int i = 0; i < 8000; ++i) {
    const auto x = static_cast<ValueCode>(rng.UniformInt(2));
    const auto y = static_cast<ValueCode>(rng.UniformInt(2));
    dataset.AppendRowUnchecked(
        {x, y, static_cast<ValueCode>(rng.UniformInt(4))});
    labels.push_back(static_cast<ClusterId>(x ^ y));
  }
  const auto extended = WithProductAttribute(dataset, 0, 1);
  ASSERT_TRUE(extended.ok());
  DpClustXOptions options;
  options.epsilon_cand_set = 2.0;
  options.epsilon_top_comb = 2.0;
  options.num_candidates = 2;
  options.seed = 23;
  const auto explanation =
      ExplainDpClustXWithLabels(*extended, labels, 2, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  const auto product_attr = extended->schema().FindAttribute("xxy");
  ASSERT_TRUE(product_attr.ok());
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(explanation->combination[c], *product_attr)
        << "cluster " << c
        << " should be explained by the XOR product attribute";
  }
}

TEST(IntegrationTest, CloseDistributionsDescribedAsClose) {
  Schema schema({Attribute::WithAnonymousDomain("x", 3)});
  SingleClusterExplanation e;
  e.cluster = 1;
  e.attribute = 0;
  e.inside = Histogram({100.0, 100.0, 100.0});
  e.outside = Histogram({101.0, 99.0, 100.0});
  const std::string text = DescribeExplanation(e, schema);
  EXPECT_NE(text.find("close to"), std::string::npos);
}

}  // namespace
}  // namespace dpclustx
