#include "core/explanation.h"

#include <gtest/gtest.h>
#include <cmath>


#include "common/rng.h"
#include "core/serialization.h"

namespace dpclustx {
namespace {

Schema MakeSchema() {
  return Schema({Attribute("lab_proc",
                           {"[0,20)", "[20,40)", "[40,60)", "[60,80)"}),
                 Attribute("flag", {"no", "yes"}),
                 Attribute("single", {"only"})});
}

SingleClusterExplanation MakeShifted() {
  SingleClusterExplanation e;
  e.cluster = 1;
  e.attribute = 0;
  e.inside = Histogram({0.0, 5.0, 45.0, 50.0});    // high values
  e.outside = Histogram({60.0, 30.0, 8.0, 2.0});   // low values
  return e;
}

TEST(DescribeExplanationTest, NamesAttributeAndDirection) {
  const std::string text = DescribeExplanation(MakeShifted(), MakeSchema());
  EXPECT_NE(text.find("lab_proc"), std::string::npos);
  EXPECT_NE(text.find("higher values"), std::string::npos);
  EXPECT_NE(text.find("Cluster 1"), std::string::npos);
}

TEST(DescribeExplanationTest, OppositeShiftDescribedAsLower) {
  SingleClusterExplanation e = MakeShifted();
  std::swap(e.inside, e.outside);
  const std::string text = DescribeExplanation(e, MakeSchema());
  EXPECT_NE(text.find("lower range"), std::string::npos);
}

TEST(DescribeExplanationTest, SingleValueDomainDescribedAsClose) {
  SingleClusterExplanation e;
  e.cluster = 0;
  e.attribute = 2;
  e.inside = Histogram(std::vector<double>{10.0});
  e.outside = Histogram(std::vector<double>{90.0});
  const std::string text = DescribeExplanation(e, MakeSchema());
  EXPECT_NE(text.find("close to"), std::string::npos);
}

TEST(DescribeExplanationTest, EmptyHistogramsDoNotCrash) {
  SingleClusterExplanation e;
  e.cluster = 0;
  e.attribute = 1;
  e.inside = Histogram(2);
  e.outside = Histogram(2);
  const std::string text = DescribeExplanation(e, MakeSchema());
  EXPECT_FALSE(text.empty());
}

TEST(DescribeExplanationTest, RandomHistogramsAlwaysProduceText) {
  const Schema schema = MakeSchema();
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    SingleClusterExplanation e;
    e.cluster = static_cast<ClusterId>(trial % 5);
    e.attribute = static_cast<AttrIndex>(trial % 2);  // multi-bin attrs
    const size_t domain = schema.attribute(e.attribute).domain_size();
    e.inside = Histogram(domain);
    e.outside = Histogram(domain);
    for (size_t v = 0; v < domain; ++v) {
      e.inside.set_bin(static_cast<ValueCode>(v),
                       std::floor(rng.UniformRange(0.0, 100.0)));
      e.outside.set_bin(static_cast<ValueCode>(v),
                        std::floor(rng.UniformRange(0.0, 100.0)));
    }
    const std::string text = DescribeExplanation(e, schema);
    ASSERT_NE(text.find(schema.attribute(e.attribute).name()),
              std::string::npos);
  }
}

TEST(RenderGlobalExplanationTest, AnnotatesDpReleases) {
  GlobalExplanation explanation;
  SingleClusterExplanation e = MakeShifted();
  e.epsilon_inside = 0.05;
  e.epsilon_full = 0.05;
  e.noise = HistogramNoise::kGeometric;
  explanation.per_cluster = {e};
  explanation.combination = {0};
  const std::string report =
      RenderGlobalExplanation(explanation, MakeSchema());
  EXPECT_NE(report.find("DP release"), std::string::npos);
  EXPECT_NE(report.find("95%"), std::string::npos);
}

TEST(RenderGlobalExplanationTest, ExactHistogramsCarryNoAnnotation) {
  GlobalExplanation explanation;
  explanation.per_cluster = {MakeShifted()};  // epsilon fields zero
  explanation.combination = {0};
  const std::string report =
      RenderGlobalExplanation(explanation, MakeSchema());
  EXPECT_EQ(report.find("DP release"), std::string::npos);
}

TEST(ReleaseMetadataTest, SurvivesJsonRoundTrip) {
  GlobalExplanation explanation;
  SingleClusterExplanation e = MakeShifted();
  e.epsilon_inside = 0.05;
  e.epsilon_full = 0.0125;
  e.noise = HistogramNoise::kLaplace;
  explanation.per_cluster = {e};
  explanation.combination = {0};
  const Schema schema = MakeSchema();
  const auto parsed =
      ExplanationFromJson(ExplanationToJson(explanation, schema), schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->per_cluster[0].epsilon_inside, 0.05);
  EXPECT_DOUBLE_EQ(parsed->per_cluster[0].epsilon_full, 0.0125);
  EXPECT_EQ(parsed->per_cluster[0].noise, HistogramNoise::kLaplace);
}

TEST(NoiseQuantileTest, MatchesMechanismShapes) {
  // Geometric quantile is integral and shrinks with epsilon.
  const double g_tight = DpHistogramBinNoiseQuantile(
      HistogramNoise::kGeometric, 10, 0.05, 0.95);
  const double g_loose = DpHistogramBinNoiseQuantile(
      HistogramNoise::kGeometric, 10, 1.0, 0.95);
  EXPECT_GT(g_tight, g_loose);
  EXPECT_DOUBLE_EQ(g_tight, std::floor(g_tight));
  // Laplace closed form: −ln(0.05)/ε.
  EXPECT_NEAR(DpHistogramBinNoiseQuantile(HistogramNoise::kLaplace, 10, 0.5,
                                          0.95),
              -std::log(0.05) / 0.5, 1e-9);
  // Hierarchical bound exceeds flat Laplace (per-level budget split).
  EXPECT_GT(DpHistogramBinNoiseQuantile(HistogramNoise::kHierarchical, 32,
                                        0.5, 0.95),
            DpHistogramBinNoiseQuantile(HistogramNoise::kLaplace, 32, 0.5,
                                        0.95));
}

}  // namespace
}  // namespace dpclustx
