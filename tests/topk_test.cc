#include "dp/topk.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "dp/exponential.h"

namespace dpclustx {
namespace {

TEST(OneShotTopKTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(OneShotTopK({}, 1.0, 1.0, 1, rng).ok());
  EXPECT_FALSE(OneShotTopK({1.0, 2.0}, 1.0, 1.0, 0, rng).ok());
  EXPECT_FALSE(OneShotTopK({1.0, 2.0}, 1.0, 1.0, 3, rng).ok());
  EXPECT_FALSE(OneShotTopK({1.0, 2.0}, 0.0, 1.0, 1, rng).ok());
  EXPECT_FALSE(OneShotTopK({1.0, 2.0}, 1.0, -1.0, 1, rng).ok());
}

TEST(OneShotTopKTest, ReturnsKDistinctIndices) {
  Rng rng(2);
  const std::vector<double> scores = {5.0, 1.0, 3.0, 2.0, 4.0};
  const auto result = OneShotTopK(scores, 1.0, 0.5, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  const std::set<size_t> distinct(result->begin(), result->end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(OneShotTopKTest, HighEpsilonRecoversExactTopKInOrder) {
  Rng rng(3);
  const std::vector<double> scores = {5.0, 1.0, 3.0, 2.0, 4.0};
  for (int i = 0; i < 50; ++i) {
    const auto result = OneShotTopK(scores, 1.0, 1e6, 3, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, (std::vector<size_t>{0, 4, 2}));
  }
}

TEST(OneShotTopKTest, KEqualsNReturnsPermutation) {
  Rng rng(4);
  const std::vector<double> scores = {1.0, 2.0, 3.0};
  const auto result = OneShotTopK(scores, 1.0, 0.1, 3, rng);
  ASSERT_TRUE(result.ok());
  std::vector<size_t> sorted = *result;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<size_t>{0, 1, 2}));
}

// The first element of the one-shot top-k must follow the exponential-
// mechanism distribution at ε/k (Durfee & Rogers equivalence).
TEST(OneShotTopKTest, FirstSelectionMatchesExponentialMechanism) {
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  const double epsilon = 3.0;
  const size_t k = 2;
  constexpr size_t kSamples = 200000;

  Rng rng_topk(5);
  std::vector<size_t> topk_first(3, 0);
  for (size_t s = 0; s < kSamples; ++s) {
    const auto result = OneShotTopK(scores, 1.0, epsilon, k, rng_topk);
    ++topk_first[result->front()];
  }

  Rng rng_em(6);
  std::vector<size_t> em_counts(3, 0);
  for (size_t s = 0; s < kSamples; ++s) {
    ++em_counts[ExponentialMechanism(scores, 1.0, epsilon / k, rng_em)
                    .value()];
  }

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(topk_first[i]) / kSamples,
                static_cast<double>(em_counts[i]) / kSamples, 0.01)
        << "candidate " << i;
  }
}

// The full selected *set* must match iteratively applying the EM k times
// without replacement at ε/k each.
TEST(OneShotTopKTest, SelectedSetMatchesIteratedEm) {
  const std::vector<double> scores = {0.0, 1.5, 3.0};
  const double epsilon = 2.0;
  const size_t k = 2;
  constexpr size_t kSamples = 150000;

  auto set_key = [](std::vector<size_t> v) {
    std::sort(v.begin(), v.end());
    return v[0] * 10 + v[1];
  };

  Rng rng_topk(7);
  std::map<size_t, double> topk_sets;
  for (size_t s = 0; s < kSamples; ++s) {
    topk_sets[set_key(*OneShotTopK(scores, 1.0, epsilon, k, rng_topk))] +=
        1.0;
  }

  // Iterated EM without replacement.
  Rng rng_em(8);
  std::map<size_t, double> em_sets;
  for (size_t s = 0; s < kSamples; ++s) {
    std::vector<size_t> remaining = {0, 1, 2};
    std::vector<size_t> chosen;
    for (size_t round = 0; round < k; ++round) {
      std::vector<double> sub_scores;
      for (size_t index : remaining) sub_scores.push_back(scores[index]);
      const size_t pick =
          ExponentialMechanism(sub_scores, 1.0, epsilon / k, rng_em).value();
      chosen.push_back(remaining[pick]);
      remaining.erase(remaining.begin() + static_cast<long>(pick));
    }
    em_sets[set_key(chosen)] += 1.0;
  }

  for (const auto& [key, count] : topk_sets) {
    EXPECT_NEAR(count / kSamples, em_sets[key] / kSamples, 0.012)
        << "set key " << key;
  }
}

TEST(IteratedExponentialTopKTest, ValidatesArguments) {
  Rng rng(9);
  EXPECT_FALSE(IteratedExponentialTopK({}, 1.0, 1.0, 1, rng).ok());
  EXPECT_FALSE(IteratedExponentialTopK({1.0}, 1.0, 1.0, 2, rng).ok());
  EXPECT_FALSE(IteratedExponentialTopK({1.0}, 0.0, 1.0, 1, rng).ok());
}

TEST(IteratedExponentialTopKTest, HighEpsilonRecoversExactTopK) {
  Rng rng(10);
  const std::vector<double> scores = {5.0, 1.0, 3.0, 2.0, 4.0};
  const auto result = IteratedExponentialTopK(scores, 1.0, 1e6, 3, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<size_t>{0, 4, 2}));
}

// Durfee–Rogers equivalence: the one-shot mechanism's selected-sequence
// distribution matches the iterated exponential mechanism's.
TEST(IteratedExponentialTopKTest, DistributionMatchesOneShot) {
  const std::vector<double> scores = {0.0, 1.5, 3.0};
  const double epsilon = 2.0;
  const size_t k = 2;
  constexpr size_t kSamples = 150000;
  auto sequence_key = [](const std::vector<size_t>& v) {
    return v[0] * 10 + v[1];
  };

  Rng rng_iter(11), rng_oneshot(12);
  std::map<size_t, double> iterated, oneshot;
  for (size_t s = 0; s < kSamples; ++s) {
    iterated[sequence_key(
        *IteratedExponentialTopK(scores, 1.0, epsilon, k, rng_iter))] += 1.0;
    oneshot[sequence_key(*OneShotTopK(scores, 1.0, epsilon, k,
                                      rng_oneshot))] += 1.0;
  }
  for (const auto& [key, count] : iterated) {
    EXPECT_NEAR(count / kSamples, oneshot[key] / kSamples, 0.012)
        << "sequence " << key;
  }
}

TEST(OneShotTopKErrorBoundTest, GrowsWithKAndShrinksWithEpsilon) {
  EXPECT_GT(OneShotTopKErrorBound(50, 1.0, 0.1, 5, 1.0),
            OneShotTopKErrorBound(50, 1.0, 0.1, 3, 1.0));
  EXPECT_GT(OneShotTopKErrorBound(50, 1.0, 0.1, 3, 1.0),
            OneShotTopKErrorBound(50, 1.0, 1.0, 3, 1.0));
}

}  // namespace
}  // namespace dpclustx
