#include "core/quality.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"

namespace dpclustx {
namespace {

// Random dataset + labels for identity checks.
struct Fixture {
  Dataset dataset;
  std::vector<ClusterId> labels;
  StatsCache stats;
};

Fixture MakeFixture(size_t rows, size_t num_clusters, uint64_t seed) {
  Schema schema({Attribute::WithAnonymousDomain("a", 4),
                 Attribute::WithAnonymousDomain("b", 3),
                 Attribute::WithAnonymousDomain("c", 6)});
  Dataset dataset(schema);
  Rng rng(seed);
  std::vector<ClusterId> labels;
  for (size_t r = 0; r < rows; ++r) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(4)),
                                static_cast<ValueCode>(rng.UniformInt(3)),
                                static_cast<ValueCode>(rng.UniformInt(6))});
    labels.push_back(static_cast<ClusterId>(rng.UniformInt(num_clusters)));
  }
  auto stats = StatsCache::Build(dataset, labels, num_clusters);
  return {std::move(dataset), std::move(labels), std::move(*stats)};
}

TEST(GlobalWeightsTest, ValidateChecksSumAndSign) {
  GlobalWeights ok;
  EXPECT_TRUE(ok.Validate().ok());
  GlobalWeights bad_sum{0.5, 0.5, 0.5};
  EXPECT_FALSE(bad_sum.Validate().ok());
  GlobalWeights negative{-0.5, 1.0, 0.5};
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(GlobalWeightsTest, ConditionalSingleClusterWeights) {
  GlobalWeights lambda{0.2, 0.6, 0.2};
  const SingleClusterWeights gamma =
      lambda.ConditionalSingleClusterWeights();
  EXPECT_NEAR(gamma.interestingness, 0.25, 1e-12);
  EXPECT_NEAR(gamma.sufficiency, 0.75, 1e-12);
  // Degenerate: both zero falls back to (1/2, 1/2).
  GlobalWeights div_only{0.0, 0.0, 1.0};
  const SingleClusterWeights fallback =
      div_only.ConditionalSingleClusterWeights();
  EXPECT_DOUBLE_EQ(fallback.interestingness, 0.5);
  EXPECT_DOUBLE_EQ(fallback.sufficiency, 0.5);
}

// Paper remark under Def. 4.2: Int_p = |D_c| · TVD.
TEST(InterestingnessPTest, EqualsClusterSizeTimesTvd) {
  const Fixture f = MakeFixture(500, 3, 1);
  for (size_t c = 0; c < 3; ++c) {
    for (AttrIndex a = 0; a < 3; ++a) {
      const auto cluster = static_cast<ClusterId>(c);
      const double expected =
          static_cast<double>(f.stats.cluster_size(cluster)) *
          eval::TvdInterestingness(f.stats, cluster, a);
      EXPECT_NEAR(InterestingnessP(f.stats, cluster, a), expected, 1e-9);
    }
  }
}

TEST(InterestingnessPTest, RangeWithinClusterSize) {
  const Fixture f = MakeFixture(300, 4, 2);
  for (size_t c = 0; c < 4; ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    for (AttrIndex a = 0; a < 3; ++a) {
      const double value = InterestingnessP(f.stats, cluster, a);
      EXPECT_GE(value, 0.0);
      EXPECT_LE(value,
                static_cast<double>(f.stats.cluster_size(cluster)) + 1e-9);
    }
  }
}

TEST(InterestingnessPTest, ZeroWhenClusterMatchesData) {
  // One cluster containing the whole dataset: Int_p = 0.
  const Fixture f = MakeFixture(100, 1, 3);
  for (AttrIndex a = 0; a < 3; ++a) {
    EXPECT_NEAR(InterestingnessP(f.stats, 0, a), 0.0, 1e-9);
  }
}

// Prop. 4.6(1): |D|·Suf = Σ_c Suf_p.
TEST(SufficiencyPTest, GlobalIdentityHolds) {
  const Fixture f = MakeFixture(400, 3, 4);
  const AttributeCombination ac = {0, 2, 1};
  double sum = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    sum += SufficiencyP(f.stats, static_cast<ClusterId>(c), ac[c]);
  }
  EXPECT_NEAR(sum / static_cast<double>(f.stats.num_rows()),
              eval::Sufficiency(f.stats, ac), 1e-9);
}

TEST(SufficiencyPTest, MaximalWhenValuesExclusiveToCluster) {
  // Two clusters with disjoint value supports: Suf_p = |D_c|.
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  for (int i = 0; i < 10; ++i) {
    dataset.AppendRowUnchecked({0});
    labels.push_back(0);
  }
  for (int i = 0; i < 6; ++i) {
    dataset.AppendRowUnchecked({1});
    labels.push_back(1);
  }
  const auto stats = StatsCache::Build(dataset, labels, 2);
  EXPECT_DOUBLE_EQ(SufficiencyP(*stats, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(SufficiencyP(*stats, 1, 0), 6.0);
}

TEST(SufficiencyPTest, EmptyClusterScoresZero) {
  const Fixture f = MakeFixture(50, 1, 5);
  const auto stats = StatsCache::Build(f.dataset, f.labels, 2);  // cluster 1 empty
  EXPECT_DOUBLE_EQ(SufficiencyP(*stats, 1, 0), 0.0);
}

TEST(PairDiversityTest, DistinctAttributesGiveMinClusterSize) {
  const Fixture f = MakeFixture(200, 2, 6);
  const double expected = static_cast<double>(
      std::min(f.stats.cluster_size(0), f.stats.cluster_size(1)));
  EXPECT_DOUBLE_EQ(PairDiversity(f.stats, 0, 1, 0, 1), expected);
}

TEST(PairDiversityTest, SharedAttributeScalesTvd) {
  const Fixture f = MakeFixture(200, 2, 7);
  const double factor = static_cast<double>(
      std::min(f.stats.cluster_size(0), f.stats.cluster_size(1)));
  const double tvd = Histogram::Tvd(f.stats.cluster_histogram(0, 1),
                                    f.stats.cluster_histogram(1, 1));
  EXPECT_NEAR(PairDiversity(f.stats, 0, 1, 1, 1), factor * tvd, 1e-9);
}

TEST(PairDiversityTest, EmptyClusterContributesZero) {
  const Fixture f = MakeFixture(100, 1, 8);
  const auto stats = StatsCache::Build(f.dataset, f.labels, 2);
  EXPECT_DOUBLE_EQ(PairDiversity(*stats, 0, 1, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(PairDiversity(*stats, 0, 1, 0, 1), 0.0);
}

TEST(DiversityPTest, AveragesAllPairs) {
  const Fixture f = MakeFixture(300, 3, 9);
  const AttributeCombination ac = {0, 1, 0};
  const double expected = (PairDiversity(f.stats, 0, 1, 0, 1) +
                           PairDiversity(f.stats, 0, 2, 0, 0) +
                           PairDiversity(f.stats, 1, 2, 1, 0)) /
                          3.0;
  EXPECT_NEAR(DiversityP(f.stats, ac), expected, 1e-9);
}

TEST(DiversityPTest, SingleClusterIsZero) {
  const Fixture f = MakeFixture(100, 1, 10);
  EXPECT_DOUBLE_EQ(DiversityP(f.stats, {0}), 0.0);
}

TEST(SingleClusterScoreTest, CombinesWeightedTerms) {
  const Fixture f = MakeFixture(200, 2, 11);
  const SingleClusterWeights gamma{0.3, 0.7};
  const double expected = 0.3 * InterestingnessP(f.stats, 0, 2) +
                          0.7 * SufficiencyP(f.stats, 0, 2);
  EXPECT_NEAR(SingleClusterScore(f.stats, 0, 2, gamma), expected, 1e-9);
}

TEST(GlobalScoreTest, CombinesWeightedTerms) {
  const Fixture f = MakeFixture(300, 3, 12);
  const AttributeCombination ac = {2, 0, 1};
  GlobalWeights lambda;  // equal thirds
  double mean_int = 0.0, mean_suf = 0.0;
  for (size_t c = 0; c < 3; ++c) {
    mean_int += InterestingnessP(f.stats, static_cast<ClusterId>(c), ac[c]);
    mean_suf += SufficiencyP(f.stats, static_cast<ClusterId>(c), ac[c]);
  }
  const double expected = (mean_int / 3.0 + mean_suf / 3.0) / 3.0 +
                          DiversityP(f.stats, ac) / 3.0;
  EXPECT_NEAR(GlobalScore(f.stats, ac, lambda), expected, 1e-9);
}

TEST(GlobalScoreTest, WithinRangeBound) {
  const Fixture f = MakeFixture(400, 4, 13);
  GlobalWeights lambda;
  const double bound = GlobalScoreRangeBound(f.stats, lambda);
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    AttributeCombination ac(4);
    for (auto& attr : ac) {
      attr = static_cast<AttrIndex>(rng.UniformInt(3));
    }
    const double score = GlobalScore(f.stats, ac, lambda);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, bound + 1e-9);
  }
}

// Prop. 4.3 remark: the Int_p ranking of attributes for a fixed cluster is
// identical to the TVD ranking.
TEST(RankingEquivalenceTest, InterestingnessPreservesTvdOrder) {
  const Fixture f = MakeFixture(500, 3, 15);
  for (size_t c = 0; c < 3; ++c) {
    const auto cluster = static_cast<ClusterId>(c);
    if (f.stats.cluster_size(cluster) == 0) continue;
    for (AttrIndex a1 = 0; a1 < 3; ++a1) {
      for (AttrIndex a2 = 0; a2 < 3; ++a2) {
        const double tvd_order =
            eval::TvdInterestingness(f.stats, cluster, a1) -
            eval::TvdInterestingness(f.stats, cluster, a2);
        const double intp_order = InterestingnessP(f.stats, cluster, a1) -
                                  InterestingnessP(f.stats, cluster, a2);
        EXPECT_GE(tvd_order * intp_order, -1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dpclustx
