#include "cluster/agglomerative.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpclustx {
namespace {

TEST(AgglomerativeTest, ValidatesOptions) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(10, 3, 9, 1);
  AgglomerativeOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(FitAgglomerative(dataset, options).ok());
  options.num_clusters = 1000;
  EXPECT_FALSE(FitAgglomerative(dataset, options).ok());
}

TEST(AgglomerativeTest, RecoversTwoSeparatedBlocks) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(400, 5, 9, 2);
  AgglomerativeOptions options;
  options.num_clusters = 2;
  options.seed = 3;
  const auto clustering = FitAgglomerative(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  EXPECT_GT(testutil::TwoBlockPurity(labels), 0.97);
}

TEST(AgglomerativeTest, ProducesRequestedClusterCount) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 4, 9, 4);
  AgglomerativeOptions options;
  options.num_clusters = 5;
  const auto clustering = FitAgglomerative(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->num_clusters(), 5u);
}

TEST(AgglomerativeTest, DeterministicGivenSeed) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 3, 9, 5);
  AgglomerativeOptions options;
  options.num_clusters = 3;
  options.seed = 9;
  const auto a = FitAgglomerative(dataset, options);
  const auto b = FitAgglomerative(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST(AgglomerativeTest, SampleSmallerThanClusterCountStillWorks) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(50, 3, 9, 6);
  AgglomerativeOptions options;
  options.num_clusters = 4;
  options.max_sample = 2;  // clamped up to num_clusters internally
  const auto clustering = FitAgglomerative(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->num_clusters(), 4u);
}

}  // namespace
}  // namespace dpclustx
