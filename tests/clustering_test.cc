#include "cluster/clustering.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Schema MakeSchema() {
  return Schema({Attribute::WithAnonymousDomain("a", 5),
                 Attribute::WithAnonymousDomain("b", 2),
                 Attribute::WithAnonymousDomain("c", 1)});
}

TEST(EmbedTest, ScalesCodesIntoUnitInterval) {
  const std::vector<double> point = EmbedTuple(MakeSchema(), {4, 1, 0});
  ASSERT_EQ(point.size(), 3u);
  EXPECT_DOUBLE_EQ(point[0], 1.0);
  EXPECT_DOUBLE_EQ(point[1], 1.0);
  EXPECT_DOUBLE_EQ(point[2], 0.5);  // singleton domain maps to 0.5
  const std::vector<double> origin = EmbedTuple(MakeSchema(), {0, 0, 0});
  EXPECT_DOUBLE_EQ(origin[0], 0.0);
  EXPECT_DOUBLE_EQ(origin[1], 0.0);
}

TEST(EmbedTest, DatasetEmbeddingMatchesTupleEmbedding) {
  Dataset dataset(MakeSchema());
  dataset.AppendRowUnchecked({2, 1, 0});
  dataset.AppendRowUnchecked({4, 0, 0});
  const std::vector<double> points = EmbedDataset(dataset);
  for (size_t row = 0; row < 2; ++row) {
    const std::vector<double> expected =
        EmbedTuple(dataset.schema(), dataset.Row(row));
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_DOUBLE_EQ(points[row * 3 + a], expected[a]);
    }
  }
}

TEST(CentroidClusteringTest, AssignsToNearestCenter) {
  const Schema schema = MakeSchema();
  CentroidClustering clustering(
      schema, {{0.0, 0.0, 0.5}, {1.0, 1.0, 0.5}}, "test");
  EXPECT_EQ(clustering.num_clusters(), 2u);
  EXPECT_EQ(clustering.Assign({0, 0, 0}), 0u);
  EXPECT_EQ(clustering.Assign({4, 1, 0}), 1u);
}

TEST(CentroidClusteringTest, TieBreaksTowardLowerLabel) {
  const Schema schema = MakeSchema();
  CentroidClustering clustering(
      schema, {{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}, "test");
  EXPECT_EQ(clustering.Assign({2, 1, 0}), 0u);
}

TEST(CentroidClusteringTest, AssignAllMatchesAssign) {
  const Schema schema = MakeSchema();
  CentroidClustering clustering(
      schema, {{0.1, 0.2, 0.5}, {0.8, 0.9, 0.5}}, "test");
  Dataset dataset(schema);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(5)),
                                static_cast<ValueCode>(rng.UniformInt(2)),
                                0});
  }
  const std::vector<ClusterId> bulk = clustering.AssignAll(dataset);
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    EXPECT_EQ(bulk[row], clustering.Assign(dataset.Row(row)));
  }
}

TEST(ModeClusteringTest, AssignsByHammingDistance) {
  const Schema schema = MakeSchema();
  ModeClustering clustering(schema, {{0, 0, 0}, {4, 1, 0}}, "modes");
  EXPECT_EQ(clustering.Assign({0, 1, 0}), 0u);  // distance 1 vs 2
  EXPECT_EQ(clustering.Assign({4, 1, 0}), 1u);  // distance 3 vs 0
}

TEST(ClusterSizesTest, CountsLabels) {
  const std::vector<ClusterId> labels = {0, 2, 0, 2, 2};
  const std::vector<size_t> sizes = ClusterSizes(labels, 3);
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 0, 3}));
}

TEST(ClusterRowIndicesTest, GroupsRows) {
  const std::vector<ClusterId> labels = {1, 0, 1};
  const auto indices = ClusterRowIndices(labels, 2);
  EXPECT_EQ(indices[0], (std::vector<uint32_t>{1}));
  EXPECT_EQ(indices[1], (std::vector<uint32_t>{0, 2}));
}

}  // namespace
}  // namespace dpclustx
