#include "data/derived.h"

#include <gtest/gtest.h>

#include "core/stats_cache.h"
#include "core/quality.h"

namespace dpclustx {
namespace {

Dataset MakeDataset() {
  Schema schema({Attribute("color", {"red", "blue"}),
                 Attribute("size", {"S", "M", "L"})});
  Dataset dataset(schema);
  dataset.AppendRowUnchecked({0, 0});
  dataset.AppendRowUnchecked({0, 2});
  dataset.AppendRowUnchecked({1, 1});
  return dataset;
}

TEST(ProductAttributeTest, BuildsRowMajorProductDomain) {
  const auto extended = WithProductAttribute(MakeDataset(), 0, 1);
  ASSERT_TRUE(extended.ok()) << extended.status();
  ASSERT_EQ(extended->num_attributes(), 3u);
  const Attribute& product = extended->schema().attribute(2);
  EXPECT_EQ(product.name(), "colorxsize");
  ASSERT_EQ(product.domain_size(), 6u);
  EXPECT_EQ(product.label(0), "red|S");
  EXPECT_EQ(product.label(5), "blue|L");
  // Codes: (red,S)=0, (red,L)=2, (blue,M)=4.
  EXPECT_EQ(extended->at(0, 2), 0u);
  EXPECT_EQ(extended->at(1, 2), 2u);
  EXPECT_EQ(extended->at(2, 2), 4u);
}

TEST(ProductAttributeTest, ValidatesArguments) {
  const Dataset dataset = MakeDataset();
  EXPECT_FALSE(WithProductAttribute(dataset, 0, 0).ok());
  EXPECT_FALSE(WithProductAttribute(dataset, 0, 9).ok());
  ProductAttributeOptions tight;
  tight.max_domain = 5;  // 2 × 3 = 6 > 5
  EXPECT_FALSE(WithProductAttribute(dataset, 0, 1, tight).ok());
}

TEST(ProductAttributeTest, MultiplePairs) {
  const auto extended =
      WithProductAttributes(MakeDataset(), {{0, 1}, {1, 0}});
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->num_attributes(), 4u);
  EXPECT_EQ(extended->schema().attribute(3).name(), "sizexcolor");
}

TEST(ProductAttributeTest, ProductHistogramMatchesJointCounts) {
  const auto extended = WithProductAttribute(MakeDataset(), 0, 1);
  ASSERT_TRUE(extended.ok());
  const Histogram joint = extended->ComputeHistogram(2);
  EXPECT_DOUBLE_EQ(joint.bin(0), 1.0);  // (red, S)
  EXPECT_DOUBLE_EQ(joint.bin(2), 1.0);  // (red, L)
  EXPECT_DOUBLE_EQ(joint.bin(4), 1.0);  // (blue, M)
  EXPECT_DOUBLE_EQ(joint.Total(), 3.0);
}

// The future-work claim in action: a product attribute can carry strictly
// more explanatory power than either factor when the cluster is defined by
// the *combination* of values (an XOR pattern).
TEST(ProductAttributeTest, ProductExplainsXorClusterBetterThanFactors) {
  Schema schema({Attribute::WithAnonymousDomain("x", 2),
                 Attribute::WithAnonymousDomain("y", 2)});
  Dataset dataset(schema);
  std::vector<ClusterId> labels;
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    const auto x = static_cast<ValueCode>(rng.UniformInt(2));
    const auto y = static_cast<ValueCode>(rng.UniformInt(2));
    dataset.AppendRowUnchecked({x, y});
    labels.push_back(static_cast<ClusterId>(x ^ y));  // XOR clustering
  }
  const auto extended = WithProductAttribute(dataset, 0, 1);
  ASSERT_TRUE(extended.ok());
  const auto stats = StatsCache::Build(*extended, labels, 2);
  ASSERT_TRUE(stats.ok());
  // Marginals are uninformative (TVD-scaled Int_p near 0); the product
  // separates the clusters perfectly.
  const double int_x = InterestingnessP(*stats, 0, 0);
  const double int_y = InterestingnessP(*stats, 0, 1);
  const double int_product = InterestingnessP(*stats, 0, 2);
  EXPECT_GT(int_product, 10.0 * std::max({int_x, int_y, 1.0}));
}

}  // namespace
}  // namespace dpclustx
