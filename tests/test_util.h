// Shared helpers for DPClustX tests.

#ifndef DPCLUSTX_TESTS_TEST_UTIL_H_
#define DPCLUSTX_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "cluster/clustering.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace dpclustx::testutil {

/// Dataset with two well-separated planted blocks: the first
/// `rows_per_block` rows draw codes from the low end of each domain, the
/// next `rows_per_block` from the high end. Any reasonable clustering with
/// k = 2 should recover the blocks.
inline Dataset MakeTwoBlockDataset(size_t rows_per_block, size_t dims,
                                   size_t domain, uint64_t seed) {
  std::vector<Attribute> attrs;
  for (size_t a = 0; a < dims; ++a) {
    attrs.push_back(Attribute::WithAnonymousDomain(
        "attr" + std::to_string(a), domain));
  }
  Dataset dataset{Schema(std::move(attrs))};
  Rng rng(seed);
  std::vector<ValueCode> row(dims);
  for (size_t block = 0; block < 2; ++block) {
    // Low block draws from the bottom third, high block from the top third.
    const size_t lo = block == 0 ? 0 : (2 * domain) / 3;
    const size_t span = std::max<size_t>(1, domain / 3);
    for (size_t r = 0; r < rows_per_block; ++r) {
      for (size_t a = 0; a < dims; ++a) {
        row[a] = static_cast<ValueCode>(
            std::min<size_t>(domain - 1, lo + rng.UniformInt(span)));
      }
      dataset.AppendRowUnchecked(row);
    }
  }
  return dataset;
}

/// Fraction of rows whose cluster equals the majority cluster of their
/// block, for the two-block dataset above (labels.size() must be even).
inline double TwoBlockPurity(const std::vector<ClusterId>& labels) {
  const size_t half = labels.size() / 2;
  double correct = 0.0;
  for (size_t block = 0; block < 2; ++block) {
    std::vector<size_t> votes;
    for (size_t r = block * half; r < (block + 1) * half; ++r) {
      if (labels[r] >= votes.size()) votes.resize(labels[r] + 1, 0);
      ++votes[labels[r]];
    }
    correct += static_cast<double>(
        *std::max_element(votes.begin(), votes.end()));
  }
  return correct / static_cast<double>(labels.size());
}

}  // namespace dpclustx::testutil

#endif  // DPCLUSTX_TESTS_TEST_UTIL_H_
