#include "data/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpclustx::synth {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_rows = 3000;
  config.num_attributes = 8;
  config.num_latent_groups = 3;
  config.min_domain = 2;
  config.max_domain = 6;
  config.informative_fraction = 0.5;
  config.signal_strength = 0.9;
  config.seed = 99;
  return config;
}

TEST(SyntheticTest, GeneratesRequestedShape) {
  const auto dataset = Generate(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_rows(), 3000u);
  EXPECT_EQ(dataset->num_attributes(), 8u);
  for (size_t a = 0; a < 8; ++a) {
    const size_t domain = dataset->schema().attribute(a).domain_size();
    EXPECT_GE(domain, 2u);
    EXPECT_LE(domain, 6u);
  }
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  const auto a = Generate(SmallConfig());
  const auto b = Generate(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t r = 0; r < a->num_rows(); r += 97) {
    EXPECT_EQ(a->Row(r), b->Row(r));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config = SmallConfig();
  const auto a = Generate(config);
  config.seed = 100;
  const auto b = Generate(config);
  size_t differing = 0;
  for (size_t r = 0; r < a->num_rows(); ++r) {
    if (a->Row(r) != b->Row(r)) ++differing;
  }
  EXPECT_GT(differing, a->num_rows() / 2);
}

TEST(SyntheticTest, RejectsDegenerateConfigs) {
  SyntheticConfig config = SmallConfig();
  config.num_rows = 0;
  EXPECT_FALSE(Generate(config).ok());
  config = SmallConfig();
  config.min_domain = 1;
  EXPECT_FALSE(Generate(config).ok());
  config = SmallConfig();
  config.signal_strength = 1.5;
  EXPECT_FALSE(Generate(config).ok());
  config = SmallConfig();
  config.num_latent_groups = 0;
  EXPECT_FALSE(Generate(config).ok());
}

TEST(SyntheticTest, PresetsMatchPaperShapes) {
  EXPECT_EQ(DiabetesLike(1000).num_attributes, 47u);
  EXPECT_EQ(DiabetesLike(1000).max_domain, 39u);
  EXPECT_EQ(CensusLike(1000).num_attributes, 68u);
  EXPECT_EQ(StackOverflowLike(1000).num_attributes, 60u);
  EXPECT_EQ(StackOverflowLike(1000).max_domain, 22u);
}

TEST(CramersVTest, PerfectAssociationIsOne) {
  Schema schema({Attribute::WithAnonymousDomain("a", 3),
                 Attribute::WithAnonymousDomain("b", 3)});
  Dataset dataset(schema);
  for (int i = 0; i < 300; ++i) {
    const auto code = static_cast<ValueCode>(i % 3);
    dataset.AppendRowUnchecked({code, code});
  }
  EXPECT_NEAR(CramersV(dataset, 0, 1), 1.0, 1e-9);
}

TEST(CramersVTest, IndependentColumnsNearZero) {
  Schema schema({Attribute::WithAnonymousDomain("a", 4),
                 Attribute::WithAnonymousDomain("b", 4)});
  Dataset dataset(schema);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    dataset.AppendRowUnchecked(
        {static_cast<ValueCode>(rng.UniformInt(4)),
         static_cast<ValueCode>(rng.UniformInt(4))});
  }
  EXPECT_LT(CramersV(dataset, 0, 1), 0.05);
}

TEST(CramersVTest, DegenerateColumnScoresZero) {
  Schema schema({Attribute::WithAnonymousDomain("a", 3),
                 Attribute::WithAnonymousDomain("b", 3)});
  Dataset dataset(schema);
  for (int i = 0; i < 100; ++i) {
    dataset.AppendRowUnchecked({0, static_cast<ValueCode>(i % 3)});
  }
  EXPECT_DOUBLE_EQ(CramersV(dataset, 0, 1), 0.0);
}

TEST(CorrelatedTwinsTest, HitsTargetAssociation) {
  const auto base = Generate(SmallConfig());
  ASSERT_TRUE(base.ok());
  const auto extended = AddCorrelatedTwins(*base, 0.85, 7);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->num_attributes(), 16u);
  EXPECT_EQ(extended->num_rows(), base->num_rows());
  // Each twin should associate with its original near the target.
  for (size_t a = 0; a < 8; ++a) {
    const double v = CramersV(*extended, static_cast<AttrIndex>(a),
                              static_cast<AttrIndex>(8 + a));
    EXPECT_NEAR(v, 0.85, 0.08) << "attribute " << a;
  }
}

TEST(CorrelatedTwinsTest, TwinNamesAndDomains) {
  const auto base = Generate(SmallConfig());
  const auto extended = AddCorrelatedTwins(*base, 0.85, 7);
  ASSERT_TRUE(extended.ok());
  for (size_t a = 0; a < 8; ++a) {
    EXPECT_EQ(extended->schema().attribute(8 + a).name(),
              base->schema().attribute(a).name() + "_corr");
    EXPECT_EQ(extended->schema().attribute(8 + a).domain_size(),
              base->schema().attribute(a).domain_size());
  }
}

TEST(NumericSyntheticTest, GeneratesShapeAndGroups) {
  NumericSyntheticConfig config;
  config.num_rows = 5000;
  config.num_columns = 6;
  config.num_latent_groups = 3;
  config.seed = 5;
  const auto data = GenerateNumeric(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->columns.size(), 6u);
  EXPECT_EQ(data->columns[0].size(), 5000u);
  EXPECT_EQ(data->groups.size(), 5000u);
  for (uint32_t g : data->groups) EXPECT_LT(g, 3u);
}

TEST(NumericSyntheticTest, InformativeColumnsSeparateGroups) {
  NumericSyntheticConfig config;
  config.num_rows = 20000;
  config.num_columns = 4;
  config.num_latent_groups = 2;
  config.informative_fraction = 0.5;  // columns 0-1 informative, 2-3 noise
  config.separation = 3.0;
  config.seed = 6;
  const auto data = GenerateNumeric(config);
  ASSERT_TRUE(data.ok());
  auto group_mean_gap = [&](size_t col) {
    double sum[2] = {0, 0};
    size_t count[2] = {0, 0};
    for (size_t r = 0; r < data->groups.size(); ++r) {
      sum[data->groups[r]] += data->columns[col][r];
      ++count[data->groups[r]];
    }
    return std::abs(sum[0] / static_cast<double>(count[0]) -
                    sum[1] / static_cast<double>(count[1]));
  };
  EXPECT_GT(group_mean_gap(0), 20.0);
  EXPECT_LT(group_mean_gap(3), 2.0);
}

TEST(NumericSyntheticTest, RejectsDegenerateConfig) {
  NumericSyntheticConfig config;
  config.num_rows = 0;
  EXPECT_FALSE(GenerateNumeric(config).ok());
  config = NumericSyntheticConfig{};
  config.informative_fraction = 2.0;
  EXPECT_FALSE(GenerateNumeric(config).ok());
}

TEST(CorrelatedTwinsTest, RejectsBadTarget) {
  const auto base = Generate(SmallConfig());
  EXPECT_FALSE(AddCorrelatedTwins(*base, 0.0, 1).ok());
  EXPECT_FALSE(AddCorrelatedTwins(*base, 1.0, 1).ok());
}

}  // namespace
}  // namespace dpclustx::synth
