// ThreadPool: bounded queue, backpressure, drain-on-shutdown. The stress
// tests are written to be meaningful under TSan (scripts/check.sh runs this
// binary in the DPCLUSTX_SANITIZE=thread configuration).

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dpclustx {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(ThreadPoolOptions{2, 16});
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(pool.tasks_completed(), 10u);
}

TEST(ThreadPoolTest, ReportsConfiguration) {
  ThreadPool pool(ThreadPoolOptions{3, 7});
  EXPECT_EQ(pool.num_threads(), 3u);
  EXPECT_EQ(pool.queue_capacity(), 7u);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  // One worker blocked on a gate; the queue (capacity 2) then fills and the
  // next TrySubmit must be rejected without enqueueing.
  ThreadPool pool(ThreadPoolOptions{1, 2});
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  bool worker_blocked = false;

  ASSERT_TRUE(pool
                  .TrySubmit([&] {
                    std::unique_lock<std::mutex> lock(gate_mutex);
                    worker_blocked = true;
                    gate_cv.notify_all();
                    gate_cv.wait(lock, [&] { return gate_open; });
                  })
                  .ok());
  {
    // Wait until the worker has picked up the blocking task, so the two
    // fillers below occupy queue slots rather than the worker.
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return worker_blocked; });
  }
  ASSERT_TRUE(pool.TrySubmit([] {}).ok());
  ASSERT_TRUE(pool.TrySubmit([] {}).ok());
  EXPECT_EQ(pool.queue_depth(), 2u);

  const Status rejected = pool.TrySubmit([] {});
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_completed(), 3u);  // the rejected task never ran
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(ThreadPoolOptions{1, 4});
  pool.Shutdown();
  EXPECT_EQ(pool.TrySubmit([] {}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.Submit([] {}).code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  // Every accepted task must run even when Shutdown races the queue.
  ThreadPool pool(ThreadPoolOptions{2, 64});
  std::atomic<int> counter{0};
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    if (pool.TrySubmit([&counter] {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          ++counter;
        }).ok()) {
      ++accepted;
    }
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), accepted);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(ThreadPoolOptions{2, 8});
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, ConcurrentShutdownDrainsOnceWithoutRacing) {
  // Several threads race Shutdown against a loaded queue: exactly one may
  // join the workers (a double-join is UB), every accepted task must still
  // run, and every Shutdown caller must return only after the drain. TSan
  // validates the single-joiner handoff on this test.
  ThreadPool pool(ThreadPoolOptions{4, 64});
  std::atomic<int> counter{0};
  int accepted = 0;
  for (int i = 0; i < 48; ++i) {
    if (pool.TrySubmit([&counter] {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          ++counter;
        }).ok()) {
      ++accepted;
    }
  }
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&pool] { pool.Shutdown(); });
  }
  for (std::thread& closer : closers) closer.join();
  // Shutdown is synchronous for every caller, so the counts are final here.
  EXPECT_EQ(counter.load(), accepted);
  EXPECT_EQ(pool.tasks_completed(), static_cast<uint64_t>(accepted));
  EXPECT_EQ(pool.num_threads(), 4u);  // configuration survives shutdown
}

TEST(ThreadPoolTest, ManyProducersManyWorkersStress) {
  // N producer threads hammer a small pool through the blocking Submit; the
  // total must come out exact (no lost or duplicated tasks). TSan validates
  // the locking discipline on this test in particular.
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  ThreadPool pool(ThreadPoolOptions{4, 16});
  std::atomic<int64_t> sum{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      for (int i = 0; i < kTasksPerProducer; ++i) {
        const int64_t value = static_cast<int64_t>(p) * kTasksPerProducer + i;
        ASSERT_TRUE(pool.Submit([&sum, value] { sum += value; }).ok());
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Shutdown();

  constexpr int64_t kTotal = kProducers * kTasksPerProducer;
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(pool.tasks_completed(), static_cast<uint64_t>(kTotal));
}

}  // namespace
}  // namespace dpclustx
