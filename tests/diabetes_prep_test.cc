#include "data/diabetes_prep.h"

#include <fstream>

#include <gtest/gtest.h>

namespace dpclustx::diabetes {
namespace {

TEST(Icd9CategoryTest, MapsPaperRanges) {
  EXPECT_EQ(Icd9Category("428"), "Circulatory");   // heart failure
  EXPECT_EQ(Icd9Category("390"), "Circulatory");
  EXPECT_EQ(Icd9Category("459"), "Circulatory");
  EXPECT_EQ(Icd9Category("785"), "Circulatory");
  EXPECT_EQ(Icd9Category("486"), "Respiratory");
  EXPECT_EQ(Icd9Category("786"), "Respiratory");
  EXPECT_EQ(Icd9Category("540"), "Digestive");
  EXPECT_EQ(Icd9Category("250"), "Diabetes");
  EXPECT_EQ(Icd9Category("250.83"), "Diabetes");
  EXPECT_EQ(Icd9Category("823"), "Injury");
  EXPECT_EQ(Icd9Category("715"), "Musculoskeletal");
  EXPECT_EQ(Icd9Category("599"), "Genitourinary");
  EXPECT_EQ(Icd9Category("788"), "Genitourinary");
  EXPECT_EQ(Icd9Category("197"), "Neoplasms");
}

TEST(Icd9CategoryTest, SupplementaryAndMissingCodesMapToOther) {
  EXPECT_EQ(Icd9Category("E909"), "Other");
  EXPECT_EQ(Icd9Category("V57"), "Other");
  EXPECT_EQ(Icd9Category("?"), "Other");
  EXPECT_EQ(Icd9Category(""), "Other");
  EXPECT_EQ(Icd9Category("365"), "Other");  // outside listed ranges
}

TEST(Icd9CategoryTest, AllOutputsAreInTheFixedDomain) {
  const auto& domain = DiagnosisCategories();
  for (const char* code :
       {"428", "486", "540", "250.01", "823", "715", "599", "197", "V45",
        "?", "042", "780"}) {
    const std::string category = Icd9Category(code);
    EXPECT_NE(std::find(domain.begin(), domain.end(), category),
              domain.end())
        << code << " -> " << category;
  }
}

TEST(SpecialtyGroupTest, GroupsKnownSpecialties) {
  EXPECT_EQ(MedicalSpecialtyGroup("?"), "Missing");
  EXPECT_EQ(MedicalSpecialtyGroup("InternalMedicine"), "InternalMedicine");
  EXPECT_EQ(MedicalSpecialtyGroup("Cardiology"), "Cardiology");
  EXPECT_EQ(MedicalSpecialtyGroup("Cardiology-Pediatric"), "Cardiology");
  EXPECT_EQ(MedicalSpecialtyGroup("Surgery-Neuro"), "Surgery");
  EXPECT_EQ(MedicalSpecialtyGroup("Surgeon"), "Surgery");
  EXPECT_EQ(MedicalSpecialtyGroup("Orthopedics-Reconstructive"), "Surgery");
  EXPECT_EQ(MedicalSpecialtyGroup("Emergency/Trauma"), "Emergency");
  EXPECT_EQ(MedicalSpecialtyGroup("Dentistry"), "Other");
}

std::vector<std::vector<std::string>> MakeRawRows() {
  return {
      {"encounter_id", "patient_nbr", "age", "num_lab_procedures",
       "medical_specialty", "diag_1", "readmitted"},
      {"1001", "501", "[60-70)", "45", "Cardiology", "428", "NO"},
      {"1002", "502", "[60-70)", "5", "?", "250.02", ">30"},
      {"1003", "503", "[70-80)", "44", "Surgery-General", "823", "NO"},
  };
}

TEST(PreprocessTest, DropsIdentifiersAndTransformsColumns) {
  const auto dataset = Preprocess(MakeRawRows());
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  // 7 raw columns − 2 identifiers = 5 attributes.
  EXPECT_EQ(dataset->num_attributes(), 5u);
  EXPECT_EQ(dataset->num_rows(), 3u);
  EXPECT_FALSE(dataset->schema().FindAttribute("encounter_id").ok());
  EXPECT_FALSE(dataset->schema().FindAttribute("patient_nbr").ok());

  // num_lab_procedures is binned on decade edges: 45 → "[40, 50)".
  const auto lab = dataset->schema().FindAttribute("num_lab_procedures");
  ASSERT_TRUE(lab.ok());
  EXPECT_EQ(dataset->schema().attribute(*lab).label(
                dataset->at(0, *lab)),
            "[40, 50)");
  EXPECT_EQ(dataset->schema().attribute(*lab).label(
                dataset->at(1, *lab)),
            "[0, 10)");

  // diag_1 maps through Icd9Category onto the fixed domain.
  const auto diag = dataset->schema().FindAttribute("diag_1");
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(dataset->schema().attribute(*diag).domain_size(),
            DiagnosisCategories().size());
  EXPECT_EQ(dataset->schema().attribute(*diag).label(
                dataset->at(0, *diag)),
            "Circulatory");
  EXPECT_EQ(dataset->schema().attribute(*diag).label(
                dataset->at(1, *diag)),
            "Diabetes");
  EXPECT_EQ(dataset->schema().attribute(*diag).label(
                dataset->at(2, *diag)),
            "Injury");

  // medical_specialty groups onto the fixed domain.
  const auto spec = dataset->schema().FindAttribute("medical_specialty");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(dataset->schema().attribute(*spec).label(
                dataset->at(1, *spec)),
            "Missing");
  EXPECT_EQ(dataset->schema().attribute(*spec).label(
                dataset->at(2, *spec)),
            "Surgery");
}

TEST(PreprocessTest, ValidatesShape) {
  EXPECT_FALSE(Preprocess({}).ok());
  EXPECT_FALSE(Preprocess({{"a", "b"}}).ok());  // header only
  EXPECT_FALSE(Preprocess({{"a", "b"}, {"1"}}).ok());  // ragged
}

TEST(PreprocessCsvTest, EndToEndThroughAFile) {
  const std::string path = testing::TempDir() + "/dpclustx_diabetes_raw.csv";
  {
    std::ofstream out(path);
    out << "encounter_id,patient_nbr,num_medications,diag_1,gender\n"
        << "1,10,12,428,Female\n"
        << "2,20,33,V57,Male\n";
  }
  const auto dataset = PreprocessCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_attributes(), 3u);
  const auto meds = dataset->schema().FindAttribute("num_medications");
  ASSERT_TRUE(meds.ok());
  EXPECT_EQ(dataset->schema().attribute(*meds).label(
                dataset->at(0, *meds)),
            "[10, 15)");
}

}  // namespace
}  // namespace dpclustx::diabetes
