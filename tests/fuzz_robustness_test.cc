// Randomized robustness ("fuzz-lite") tests: the parsers must never crash
// or hang on arbitrary input — they either parse or return a clean error.

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "core/serialization.h"
#include "data/csv.h"

namespace dpclustx {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  const size_t len = rng.UniformInt(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng.UniformInt(256));
  }
  return out;
}

// Random strings drawn from JSON-ish characters hit deeper parser states
// than uniform bytes.
std::string RandomJsonish(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "{}[]\",:0123456789.eE+-truefalsn \n\t\\u";
  const size_t len = rng.UniformInt(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzRobustnessTest, JsonParserSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto result = JsonValue::Parse(RandomBytes(rng, 200));
    // ok or clean error — reaching this line is the assertion.
    if (result.ok()) {
      (void)result->Dump();
    }
  }
}

TEST(FuzzRobustnessTest, JsonParserSurvivesJsonishStrings) {
  Rng rng(2);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto result = JsonValue::Parse(RandomJsonish(rng, 120));
    if (result.ok()) {
      // Whatever parses must re-parse from its own dump.
      const auto round = JsonValue::Parse(result->Dump());
      ASSERT_TRUE(round.ok()) << result->Dump();
    }
  }
}

TEST(FuzzRobustnessTest, JsonParserSurvivesMutatedValidDocuments) {
  Rng rng(3);
  const std::string valid =
      R"({"combination":["a","b"],"clusters":[{"cluster":0,)"
      R"("attribute":"a","inside":[1,2],"outside":[3,4]}]})";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    const size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] =
          static_cast<char>(rng.UniformInt(256));
    }
    (void)JsonValue::Parse(mutated);
  }
}

TEST(FuzzRobustnessTest, CsvParserSurvivesRandomBytes) {
  Rng rng(4);
  for (int trial = 0; trial < 3000; ++trial) {
    (void)csv_internal::ParseDocument(RandomBytes(rng, 300));
  }
}

TEST(FuzzRobustnessTest, ExplanationParserSurvivesArbitraryValidJson) {
  // Structurally valid JSON that is not a valid explanation must produce a
  // clean error, never a crash.
  const Schema schema({Attribute("a", {"x", "y"})});
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string text = RandomJsonish(rng, 100);
    const auto json = JsonValue::Parse(text);
    if (!json.ok()) continue;
    (void)ExplanationFromJson(text, schema);
    (void)SchemaFromJson(text);
  }
}

}  // namespace
}  // namespace dpclustx
