#include "dp/sparse_vector.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(SparseVectorTest, CreateValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(SparseVector::Create(10.0, 0.0, 1.0, 1, &rng).ok());
  EXPECT_FALSE(SparseVector::Create(10.0, 1.0, 0.0, 1, &rng).ok());
  EXPECT_FALSE(SparseVector::Create(10.0, 1.0, 1.0, 0, &rng).ok());
  EXPECT_FALSE(SparseVector::Create(10.0, 1.0, 1.0, 1, nullptr).ok());
}

TEST(SparseVectorTest, HighBudgetSeparatesClearCases) {
  Rng rng(2);
  auto svt = SparseVector::Create(100.0, 1.0, 1e6, 3, &rng);
  ASSERT_TRUE(svt.ok());
  EXPECT_FALSE(svt->Query(0.0).value());
  EXPECT_TRUE(svt->Query(200.0).value());
  EXPECT_FALSE(svt->Query(50.0).value());
  EXPECT_TRUE(svt->Query(150.0).value());
  EXPECT_EQ(svt->positives_reported(), 2u);
  EXPECT_EQ(svt->positives_remaining(), 1u);
}

TEST(SparseVectorTest, RefusesQueriesAfterPositivesSpent) {
  Rng rng(3);
  auto svt = SparseVector::Create(0.0, 1.0, 1e6, 1, &rng);
  ASSERT_TRUE(svt.ok());
  EXPECT_TRUE(svt->Query(100.0).value());
  const auto refused = svt->Query(100.0);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SparseVectorTest, BelowThresholdQueriesAreFree) {
  // Many below-threshold queries must be answerable without exhausting
  // anything — that is the whole point of SVT.
  Rng rng(4);
  auto svt = SparseVector::Create(1000.0, 1.0, 2.0, 1, &rng);
  ASSERT_TRUE(svt.ok());
  for (int i = 0; i < 10000; ++i) {
    const auto result = svt->Query(0.0);
    ASSERT_TRUE(result.ok());
  }
  EXPECT_EQ(svt->positives_remaining(), 1u);
}

TEST(SvtAboveThresholdTest, ScanStopsAtMaxPositives) {
  Rng rng(5);
  const std::vector<double> values = {500.0, 0.0, 500.0, 500.0, 500.0};
  const auto positives = SvtAboveThreshold(values, 100.0, 1.0, 1e6, 2, rng);
  ASSERT_TRUE(positives.ok());
  EXPECT_EQ(*positives, (std::vector<size_t>{0, 2}));
}

TEST(SvtAboveThresholdTest, NoisyRegimeStillFindsStrongSignals) {
  // With moderate budget, a hugely-above-threshold value should be found
  // much more often than a hugely-below one.
  size_t strong_hits = 0, weak_hits = 0;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(seed);
    const std::vector<double> values = {-2000.0, 2000.0};
    const auto positives = SvtAboveThreshold(values, 0.0, 1.0, 1.0, 1, rng);
    ASSERT_TRUE(positives.ok());
    for (size_t index : *positives) {
      if (index == 1) ++strong_hits;
      else ++weak_hits;
    }
  }
  EXPECT_GT(strong_hits, 300u);
  EXPECT_LT(weak_hits, 50u);
}

}  // namespace
}  // namespace dpclustx
