// Thread-count invariance of the parallel execution layer.
//
// The determinism contract (common/thread_pool.h): ParallelFor's chunk
// structure is a pure function of (n, grain), so chunk-merged results are
// bit-identical at any parallelism. These tests pin the contract for the
// primitives (ParallelFor itself), the fused StatsCache build, and the
// clustering kernels (k-means, k-modes, GMM).

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/kmodes.h"
#include "common/thread_pool.h"
#include "core/stats_cache.h"
#include "data/kernels/isa.h"
#include "data/synthetic.h"

namespace dpclustx {
namespace {

// Force a multi-worker compute pool even on single-core CI hosts so the
// parallel dispatch path actually runs. Must happen before the first
// ParallelFor resolves the pool width; a file-scope initializer runs before
// gtest_main. overwrite=0 keeps an externally exported DPCLUSTX_THREADS
// (e.g. the TSan run in scripts/check.sh).
const bool g_env_ready = [] {
  setenv("DPCLUSTX_THREADS", "8", /*overwrite=*/0);
  return true;
}();

Dataset TestDataset(size_t rows) {
  synth::SyntheticConfig config;
  config.num_rows = rows;
  config.num_attributes = 10;
  config.num_latent_groups = 4;
  config.max_domain = 12;
  config.seed = 42;
  auto dataset = synth::Generate(config);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).value();
}

std::vector<ClusterId> CyclicLabels(size_t rows, size_t num_clusters) {
  std::vector<ClusterId> labels(rows);
  for (size_t r = 0; r < rows; ++r) {
    labels[r] = static_cast<ClusterId>(r % num_clusters);
  }
  return labels;
}

TEST(ParallelForTest, CoversEveryIndexOnceAtAnyWidth) {
  const size_t n = 10000;
  const size_t grain = 128;
  const size_t chunks = ParallelForNumChunks(n, grain);
  ASSERT_GT(chunks, 1u);
  std::vector<size_t> reference_chunk_of;
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}, size_t{0}}) {
    std::vector<int> visits(n, 0);
    std::vector<size_t> chunk_of(n, chunks);
    ParallelFor(
        n, grain,
        [&](size_t chunk, size_t begin, size_t end) {
          ASSERT_LT(chunk, chunks);
          for (size_t i = begin; i < end; ++i) {
            ++visits[i];  // disjoint ranges: no synchronization needed
            chunk_of[i] = chunk;
          }
        },
        threads);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i], 1) << "index " << i << " at threads=" << threads;
    }
    if (reference_chunk_of.empty()) {
      reference_chunk_of = chunk_of;  // the serial run defines the structure
    } else {
      // Chunk boundaries are the same pure function of (n, grain) at every
      // width.
      ASSERT_EQ(chunk_of, reference_chunk_of) << "threads " << threads;
    }
  }
}

TEST(ParallelForTest, ChunkMergedSumsAreBitIdenticalAcrossWidths) {
  const size_t n = 50000;
  const size_t grain = 1000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const size_t chunks = ParallelForNumChunks(n, grain);
  auto chunked_sum = [&](size_t threads) {
    std::vector<double> partial(chunks, 0.0);
    ParallelFor(
        n, grain,
        [&](size_t chunk, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) partial[chunk] += values[i];
        },
        threads);
    double total = 0.0;
    for (double p : partial) total += p;  // ascending chunk order
    return total;
  };
  const double serial = chunked_sum(1);
  EXPECT_EQ(serial, chunked_sum(3));
  EXPECT_EQ(serial, chunked_sum(8));
  EXPECT_EQ(serial, chunked_sum(0));
}

TEST(ParallelForTest, NestedCallsRunInlineAndFinish) {
  const size_t n = 64;
  std::vector<int> counts(n, 0);
  ParallelFor(n, 4, [&](size_t /*chunk*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // The inner call must not wait on the pool (it would deadlock when
      // every worker is already inside the outer loop); it runs inline.
      ParallelFor(8, 2, [&](size_t /*c*/, size_t b, size_t e) {
        counts[i] += static_cast<int>(e - b);
      });
    }
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 8);
}

TEST(ParallelForTest, HugeInputsKeepChunkCountBounded) {
  // The internal shard cap bounds per-chunk accumulator arrays; boundaries
  // must still tile [0, n) exactly.
  const size_t n = size_t{1} << 22;
  const size_t chunks = ParallelForNumChunks(n, 1);
  EXPECT_LE(chunks, 256u);
  size_t covered = 0;
  size_t last_end = 0;
  ParallelFor(n, 1, [&](size_t /*chunk*/, size_t begin, size_t end) {
    // Serial check (threads=1): ranges arrive in order and abut.
    EXPECT_EQ(begin, last_end);
    last_end = end;
    covered += end - begin;
  }, 1);
  EXPECT_EQ(covered, n);
  EXPECT_EQ(last_end, n);
}

TEST(HistogramTest, PlusInPlaceMatchesPlus) {
  Histogram a(std::vector<double>{1.0, 2.5, 0.0, 4.0});
  const Histogram b(std::vector<double>{0.5, 0.0, 3.0, 1.0});
  const Histogram sum = a.Plus(b);
  a.PlusInPlace(b);
  EXPECT_EQ(a.bins(), sum.bins());
}

TEST(DatasetTest, ReserveKeepsAppendSemantics) {
  Schema schema({Attribute::WithAnonymousDomain("a", 3),
                 Attribute::WithAnonymousDomain("b", 2)});
  Dataset dataset(schema);
  dataset.Reserve(100);
  EXPECT_EQ(dataset.num_rows(), 0u);
  dataset.AppendRowUnchecked({2, 1});
  dataset.AppendRowUnchecked({0, 0});
  EXPECT_EQ(dataset.num_rows(), 2u);
  EXPECT_EQ(dataset.at(0, 0), 2u);
  EXPECT_EQ(dataset.at(1, 1), 0u);
}

TEST(FusedCountsTest, MatchesPerAttributeReferenceExactly) {
  const Dataset dataset = TestDataset(20000);
  const size_t num_clusters = 7;
  const std::vector<ClusterId> labels =
      CyclicLabels(dataset.num_rows(), num_clusters);
  const auto fused =
      dataset.ComputeAllGroupHistograms(labels, num_clusters);
  ASSERT_TRUE(fused.ok());
  for (size_t a = 0; a < dataset.num_attributes(); ++a) {
    const std::vector<Histogram> reference = dataset.ComputeGroupHistograms(
        static_cast<AttrIndex>(a), labels, num_clusters);
    ASSERT_EQ((*fused)[a].size(), reference.size());
    for (size_t c = 0; c < num_clusters; ++c) {
      EXPECT_EQ((*fused)[a][c].bins(), reference[c].bins())
          << "attr " << a << " cluster " << c;
    }
  }
}

TEST(FusedCountsTest, BitwiseIdenticalAcrossThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  const size_t num_clusters = 5;
  const std::vector<ClusterId> labels =
      CyclicLabels(dataset.num_rows(), num_clusters);
  const auto serial = dataset.ComputeAllGroupHistograms(labels, num_clusters,
                                                        /*max_threads=*/1);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{3}, size_t{8}, size_t{0}}) {
    const auto parallel =
        dataset.ComputeAllGroupHistograms(labels, num_clusters, threads);
    ASSERT_TRUE(parallel.ok());
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      for (size_t c = 0; c < num_clusters; ++c) {
        ASSERT_EQ((*serial)[a][c].bins(), (*parallel)[a][c].bins())
            << "attr " << a << " cluster " << c << " threads " << threads;
      }
    }
  }
}

TEST(FusedCountsTest, RejectsBadLabelsInsteadOfCounting) {
  const Dataset dataset = TestDataset(20000);
  std::vector<ClusterId> labels = CyclicLabels(dataset.num_rows(), 4);
  labels[12345] = 9;  // >= num_clusters, deep inside a shard
  EXPECT_FALSE(dataset.ComputeAllGroupHistograms(labels, 4).ok());
  EXPECT_FALSE(
      dataset.ComputeAllGroupHistograms({0, 1}, 4).ok());  // wrong size
  EXPECT_FALSE(
      dataset
          .ComputeAllGroupHistograms(CyclicLabels(dataset.num_rows(), 4), 0)
          .ok());
}

TEST(StatsCacheParallelTest, BuildBitwiseIdenticalAcrossThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  const size_t num_clusters = 6;
  const std::vector<ClusterId> labels =
      CyclicLabels(dataset.num_rows(), num_clusters);
  const auto serial =
      StatsCache::Build(dataset, labels, num_clusters, /*num_threads=*/1);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {size_t{3}, size_t{8}, size_t{0}}) {
    const auto parallel =
        StatsCache::Build(dataset, labels, num_clusters, threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->cluster_sizes(), serial->cluster_sizes());
    for (size_t a = 0; a < dataset.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      ASSERT_EQ(parallel->full_histogram(attr).bins(),
                serial->full_histogram(attr).bins());
      for (size_t c = 0; c < num_clusters; ++c) {
        const auto cluster = static_cast<ClusterId>(c);
        ASSERT_EQ(parallel->cluster_histogram(cluster, attr).bins(),
                  serial->cluster_histogram(cluster, attr).bins());
      }
    }
  }
}

TEST(ClusteringParallelTest, KMeansLabelsInvariantAcrossThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  KMeansOptions options;
  options.num_clusters = 4;
  options.max_iterations = 10;
  options.seed = 7;
  options.num_threads = 1;
  const auto serial = FitKMeans(dataset, options);
  ASSERT_TRUE(serial.ok());
  const std::vector<ClusterId> serial_labels = (*serial)->AssignAll(dataset);
  for (size_t threads : {size_t{3}, size_t{8}, size_t{0}}) {
    options.num_threads = threads;
    const auto parallel = FitKMeans(dataset, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ((*parallel)->AssignAll(dataset), serial_labels)
        << "threads " << threads;
  }
}

TEST(ClusteringParallelTest, KModesLabelsInvariantAcrossThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  KModesOptions options;
  options.num_clusters = 4;
  options.max_iterations = 6;
  options.seed = 7;
  options.num_threads = 1;
  const auto serial = FitKModes(dataset, options);
  ASSERT_TRUE(serial.ok());
  const std::vector<ClusterId> serial_labels = (*serial)->AssignAll(dataset);
  for (size_t threads : {size_t{3}, size_t{8}, size_t{0}}) {
    options.num_threads = threads;
    const auto parallel = FitKModes(dataset, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ((*parallel)->AssignAll(dataset), serial_labels)
        << "threads " << threads;
  }
}

TEST(ClusteringParallelTest, GmmLabelsInvariantAcrossThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  GmmOptions options;
  options.num_components = 4;
  options.max_iterations = 6;
  options.seed = 7;
  options.num_threads = 1;
  const auto serial = FitGmm(dataset, options);
  ASSERT_TRUE(serial.ok());
  const std::vector<ClusterId> serial_labels = (*serial)->AssignAll(dataset);
  for (size_t threads : {size_t{3}, size_t{8}, size_t{0}}) {
    options.num_threads = threads;
    const auto parallel = FitGmm(dataset, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ((*parallel)->AssignAll(dataset), serial_labels)
        << "threads " << threads;
  }
}

// The determinism contract is two-dimensional now: the result must be a
// pure function of the input at every (ISA level × thread count) pair, not
// just every thread count at the host's top level (DESIGN.md §12).
TEST(ClusteringParallelTest, FitsInvariantAcrossIsaLevelsAndThreadCounts) {
  const Dataset dataset = TestDataset(20000);
  const size_t num_clusters = 5;
  const std::vector<ClusterId> labels =
      CyclicLabels(dataset.num_rows(), num_clusters);

  KMeansOptions kmeans;
  kmeans.num_clusters = 4;
  kmeans.max_iterations = 6;
  kmeans.seed = 7;
  GmmOptions gmm;
  gmm.num_components = 4;
  gmm.max_iterations = 4;
  gmm.seed = 7;

  std::vector<ClusterId> ref_kmeans, ref_gmm;
  std::vector<std::vector<Histogram>> ref_counts;
  {
    kernels::ScopedForceIsa generic(kernels::IsaLevel::kGeneric);
    kmeans.num_threads = 1;
    gmm.num_threads = 1;
    ref_kmeans = (*FitKMeans(dataset, kmeans))->AssignAll(dataset);
    ref_gmm = (*FitGmm(dataset, gmm))->AssignAll(dataset);
    ref_counts = std::move(
        *dataset.ComputeAllGroupHistograms(labels, num_clusters, 1));
  }

  for (const kernels::IsaLevel level : kernels::SupportedIsaLevels()) {
    kernels::ScopedForceIsa force(level);
    for (size_t threads : {size_t{1}, size_t{8}, size_t{0}}) {
      kmeans.num_threads = threads;
      gmm.num_threads = threads;
      EXPECT_EQ((*FitKMeans(dataset, kmeans))->AssignAll(dataset), ref_kmeans)
          << "k-means at isa " << kernels::IsaLevelName(level) << " threads "
          << threads;
      EXPECT_EQ((*FitGmm(dataset, gmm))->AssignAll(dataset), ref_gmm)
          << "gmm at isa " << kernels::IsaLevelName(level) << " threads "
          << threads;
      const auto counts =
          dataset.ComputeAllGroupHistograms(labels, num_clusters, threads);
      ASSERT_TRUE(counts.ok());
      for (size_t a = 0; a < counts->size(); ++a) {
        for (size_t c = 0; c < num_clusters; ++c) {
          ASSERT_EQ((*counts)[a][c].bins(), ref_counts[a][c].bins())
              << "attr " << a << " cluster " << c << " isa "
              << kernels::IsaLevelName(level) << " threads " << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dpclustx
