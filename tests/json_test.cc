#include "common/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(JsonValueTest, ScalarConstruction) {
  EXPECT_TRUE(JsonValue::Null().is_null());
  EXPECT_TRUE(JsonValue::Bool(true).AsBool());
  EXPECT_DOUBLE_EQ(JsonValue::Number(2.5).AsNumber(), 2.5);
  EXPECT_EQ(JsonValue::String("hi").AsString(), "hi");
}

TEST(JsonValueTest, ArrayOperations) {
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Number(1));
  array.Append(JsonValue::String("two"));
  ASSERT_EQ(array.size(), 2u);
  EXPECT_DOUBLE_EQ(array.at(size_t{0}).AsNumber(), 1.0);
  EXPECT_EQ(array.at(size_t{1}).AsString(), "two");
}

TEST(JsonValueTest, ObjectOperations) {
  JsonValue object = JsonValue::Object();
  object.Set("k", JsonValue::Number(7));
  EXPECT_TRUE(object.Has("k"));
  EXPECT_FALSE(object.Has("missing"));
  EXPECT_DOUBLE_EQ(object.at("k").AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(object.GetNumber("k").value(), 7.0);
  EXPECT_FALSE(object.GetNumber("missing").ok());
  EXPECT_FALSE(object.GetString("k").ok());  // wrong type
}

TEST(JsonDumpTest, CompactOutput) {
  JsonValue object = JsonValue::Object();
  object.Set("b", JsonValue::Number(2));
  object.Set("a", JsonValue::Bool(false));
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Null());
  array.Append(JsonValue::Number(1.5));
  object.Set("c", std::move(array));
  // Keys are emitted in lexicographic order.
  EXPECT_EQ(object.Dump(), R"({"a":false,"b":2,"c":[null,1.5]})");
}

TEST(JsonDumpTest, StringEscapes) {
  EXPECT_EQ(JsonValue::String("a\"b\\c\nd").Dump(), R"("a\"b\\c\nd")");
}

TEST(JsonDumpTest, IntegersWithoutDecimals) {
  EXPECT_EQ(JsonValue::Number(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-3).Dump(), "-3");
}

TEST(JsonParseTest, RoundTripsComplexDocument) {
  JsonValue object = JsonValue::Object();
  object.Set("name", JsonValue::String("lab_proc"));
  object.Set("count", JsonValue::Number(12345));
  object.Set("ratio", JsonValue::Number(0.12345678901234567));
  object.Set("flag", JsonValue::Bool(true));
  JsonValue nested = JsonValue::Array();
  nested.Append(JsonValue::String("x,y"));
  nested.Append(JsonValue::Null());
  object.Set("values", std::move(nested));
  const std::string dumped = object.Dump();

  const auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), dumped);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const auto parsed = JsonValue::Parse("  { \"a\" : [ 1 , 2 ] }\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at("a").size(), 2u);
}

TEST(JsonParseTest, UnicodeEscape) {
  const auto parsed = JsonValue::Parse(R"("café")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "caf\xC3\xA9");
}

TEST(JsonParseTest, NegativeAndExponentNumbers) {
  const auto parsed = JsonValue::Parse("[-1.5e3, 0.25]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->at(size_t{0}).AsNumber(), -1500.0);
  EXPECT_DOUBLE_EQ(parsed->at(size_t{1}).AsNumber(), 0.25);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'single':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonParseTest, ErrorsIncludeOffset) {
  const auto parsed = JsonValue::Parse("[1, oops]");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("offset"), std::string::npos);
}

// Regression: Number(NaN) used to DPX_CHECK-abort, so any computation that
// produced a NaN took down the whole service while serializing the response.
// Construction must succeed and Dump must emit valid JSON (null).
TEST(JsonNonFiniteTest, NumberAcceptsNonFiniteAndDumpsNull) {
  const JsonValue nan = JsonValue::Number(std::nan(""));
  EXPECT_EQ(nan.Dump(), "null");
  const JsonValue inf =
      JsonValue::Number(std::numeric_limits<double>::infinity());
  EXPECT_EQ(inf.Dump(), "null");
  JsonValue nested = JsonValue::Object();
  nested.Set("x", JsonValue::Number(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(nested.Dump(), R"({"x":null})");
}

TEST(JsonNonFiniteTest, IsFiniteRecursesIntoContainers) {
  EXPECT_TRUE(JsonValue::Number(1.5).IsFinite());
  EXPECT_TRUE(JsonValue::String("NaN").IsFinite());
  EXPECT_TRUE(JsonValue::Null().IsFinite());
  EXPECT_FALSE(JsonValue::Number(std::nan("")).IsFinite());

  JsonValue deep = JsonValue::Object();
  JsonValue inner = JsonValue::Array();
  inner.Append(JsonValue::Number(1.0));
  inner.Append(JsonValue::Number(std::nan("")));
  deep.Set("bins", std::move(inner));
  EXPECT_FALSE(deep.IsFinite());

  JsonValue clean = JsonValue::Object();
  JsonValue bins = JsonValue::Array();
  bins.Append(JsonValue::Number(1.0));
  clean.Set("bins", std::move(bins));
  EXPECT_TRUE(clean.IsFinite());
}

// The parser never manufactures non-finite numbers: bare NaN/Infinity
// literals are malformed JSON, so hostile requests cannot smuggle one in.
TEST(JsonNonFiniteTest, ParserRejectsNonFiniteLiterals) {
  EXPECT_FALSE(JsonValue::Parse("NaN").ok());
  EXPECT_FALSE(JsonValue::Parse("Infinity").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"epsilon":NaN})").ok());
  EXPECT_FALSE(JsonValue::Parse(R"({"epsilon":-Infinity})").ok());
}

}  // namespace
}  // namespace dpclustx
