#include "dp/hierarchical_histogram.h"
#include "dp/dp_histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Histogram MakeExact(size_t domain, double fill = 100.0) {
  Histogram h(domain);
  for (size_t i = 0; i < domain; ++i) {
    h.set_bin(static_cast<ValueCode>(i),
              fill + 10.0 * static_cast<double>(i % 7));
  }
  return h;
}

TEST(HierarchicalHistogramTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(HierarchicalHistogram::Release(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(
      HierarchicalHistogram::Release(MakeExact(8), 0.0, rng).ok());
}

TEST(HierarchicalHistogramTest, PreservesDomainIncludingNonPowerOfTwo) {
  Rng rng(2);
  for (const size_t domain : {1u, 2u, 3u, 7u, 8u, 13u, 39u}) {
    const auto released =
        HierarchicalHistogram::Release(MakeExact(domain), 1.0, rng);
    ASSERT_TRUE(released.ok()) << "domain " << domain;
    EXPECT_EQ(released->leaves().domain_size(), domain);
  }
}

TEST(HierarchicalHistogramTest, UnclampedEstimatesAreUnbiased) {
  Rng rng(3);
  HierarchicalHistogramOptions options;
  options.clamp_non_negative = false;
  const Histogram exact = MakeExact(16, 1000.0);
  Histogram mean(16);
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto released =
        HierarchicalHistogram::Release(exact, 1.0, rng, options);
    ASSERT_TRUE(released.ok());
    mean = mean.Plus(released->leaves());
  }
  for (size_t i = 0; i < 16; ++i) {
    const auto code = static_cast<ValueCode>(i);
    EXPECT_NEAR(mean.bin(code) / kTrials, exact.bin(code),
                exact.bin(code) * 0.01 + 2.0);
  }
}

TEST(HierarchicalHistogramTest, RangeQuerySumsLeaves) {
  Rng rng(4);
  const auto released =
      HierarchicalHistogram::Release(MakeExact(10), 2.0, rng);
  ASSERT_TRUE(released.ok());
  double manual = 0.0;
  for (ValueCode c = 2; c < 7; ++c) manual += released->leaves().bin(c);
  EXPECT_DOUBLE_EQ(released->RangeQuery(2, 7), manual);
  EXPECT_DOUBLE_EQ(released->RangeQuery(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(released->RangeQuery(0, 10), released->Total());
}

// The boosting paper's headline: wide-range queries from the consistent
// tree beat summing independently-noised flat bins, for large domains.
TEST(HierarchicalHistogramTest, WideRangeQueriesBeatFlatRelease) {
  const size_t domain = 256;
  const double epsilon = 0.5;
  const Histogram exact = MakeExact(domain, 50.0);
  double exact_range = 0.0;
  for (size_t i = 0; i < domain; ++i) {
    exact_range += exact.bin(static_cast<ValueCode>(i));
  }

  Rng rng(5);
  HierarchicalHistogramOptions tree_options;
  tree_options.clamp_non_negative = false;
  double tree_sq_error = 0.0, flat_sq_error = 0.0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto tree =
        HierarchicalHistogram::Release(exact, epsilon, rng, tree_options);
    ASSERT_TRUE(tree.ok());
    const double tree_err =
        tree->RangeQuery(0, static_cast<ValueCode>(domain)) - exact_range;
    tree_sq_error += tree_err * tree_err;

    // Flat Laplace release at the same ε, range = sum of noisy bins.
    double flat_range = 0.0;
    for (size_t i = 0; i < domain; ++i) {
      flat_range +=
          exact.bin(static_cast<ValueCode>(i)) + rng.Laplace(1.0 / epsilon);
    }
    const double flat_err = flat_range - exact_range;
    flat_sq_error += flat_err * flat_err;
  }
  EXPECT_LT(tree_sq_error, flat_sq_error / 2.0)
      << "consistent tree should dominate on full-range queries";
}

TEST(HierarchicalHistogramTest, ClampingKeepsLeavesNonNegative) {
  Rng rng(6);
  const Histogram zeros(32);
  for (int trial = 0; trial < 100; ++trial) {
    const auto released =
        HierarchicalHistogram::Release(zeros, 0.2, rng);
    ASSERT_TRUE(released.ok());
    for (size_t i = 0; i < 32; ++i) {
      EXPECT_GE(released->leaves().bin(static_cast<ValueCode>(i)), 0.0);
    }
  }
}

TEST(HierarchicalHistogramTest, AvailableThroughDpHistogramFacade) {
  Rng rng(7);
  DpHistogramOptions options;
  options.noise = HistogramNoise::kHierarchical;
  const auto released = ReleaseDpHistogram(MakeExact(12), 1.0, rng, options);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released->domain_size(), 12u);
}

}  // namespace
}  // namespace dpclustx
