#include "dp/dp_histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Histogram MakeExact() { return Histogram({100.0, 50.0, 0.0, 25.0}); }

TEST(DpHistogramTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(ReleaseDpHistogram(Histogram(), 1.0, rng).ok());
  EXPECT_FALSE(ReleaseDpHistogram(MakeExact(), 0.0, rng).ok());
  EXPECT_FALSE(ReleaseDpHistogram(MakeExact(), -1.0, rng).ok());
}

TEST(DpHistogramTest, PreservesDomainSize) {
  Rng rng(2);
  const auto noisy = ReleaseDpHistogram(MakeExact(), 1.0, rng);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->domain_size(), 4u);
}

TEST(DpHistogramTest, GeometricNoiseIsIntegerValued) {
  Rng rng(3);
  DpHistogramOptions options;
  options.clamp_non_negative = false;
  const auto noisy = ReleaseDpHistogram(MakeExact(), 0.5, rng, options);
  ASSERT_TRUE(noisy.ok());
  for (size_t i = 0; i < noisy->domain_size(); ++i) {
    const double v = noisy->bin(static_cast<ValueCode>(i));
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(DpHistogramTest, ClampingKeepsBinsNonNegative) {
  Rng rng(4);
  const Histogram zeros(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto noisy = ReleaseDpHistogram(zeros, 0.1, rng);
    ASSERT_TRUE(noisy.ok());
    for (size_t i = 0; i < noisy->domain_size(); ++i) {
      EXPECT_GE(noisy->bin(static_cast<ValueCode>(i)), 0.0);
    }
  }
}

TEST(DpHistogramTest, UnclampedNoiseIsUnbiased) {
  Rng rng(5);
  DpHistogramOptions options;
  options.clamp_non_negative = false;
  double sum = 0.0;
  constexpr int kTrials = 30000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto noisy =
        ReleaseDpHistogram(Histogram(std::vector<double>{40.0}), 1.0, rng, options);
    sum += noisy->bin(0);
  }
  EXPECT_NEAR(sum / kTrials, 40.0, 0.1);
}

TEST(DpHistogramTest, LaplaceVariantWorks) {
  Rng rng(6);
  DpHistogramOptions options;
  options.noise = HistogramNoise::kLaplace;
  options.clamp_non_negative = false;
  double sum = 0.0;
  constexpr int kTrials = 30000;
  for (int trial = 0; trial < kTrials; ++trial) {
    sum += ReleaseDpHistogram(Histogram(std::vector<double>{40.0}), 1.0, rng, options)->bin(0);
  }
  EXPECT_NEAR(sum / kTrials, 40.0, 0.1);
}

TEST(DpHistogramTest, LargerEpsilonMeansSmallerError) {
  Rng rng(7);
  const Histogram exact = MakeExact();
  double err_small_eps = 0.0, err_large_eps = 0.0;
  for (int trial = 0; trial < 500; ++trial) {
    err_small_eps += Histogram::L1Distance(
        exact, *ReleaseDpHistogram(exact, 0.05, rng));
    err_large_eps += Histogram::L1Distance(
        exact, *ReleaseDpHistogram(exact, 5.0, rng));
  }
  EXPECT_LT(err_large_eps, err_small_eps);
}

TEST(DpHistogramErrorBoundTest, MonotoneInEpsilonAndDomain) {
  EXPECT_GE(DpHistogramMaxErrorBound(10, 0.1, 0.95),
            DpHistogramMaxErrorBound(10, 1.0, 0.95));
  EXPECT_GE(DpHistogramMaxErrorBound(100, 0.5, 0.95),
            DpHistogramMaxErrorBound(10, 0.5, 0.95));
}

TEST(DpHistogramErrorBoundTest, EmpiricalCoverageHolds) {
  const size_t domain = 8;
  const double epsilon = 0.5, confidence = 0.9;
  const double bound = DpHistogramMaxErrorBound(domain, epsilon, confidence);
  Rng rng(8);
  DpHistogramOptions options;
  options.clamp_non_negative = false;
  const Histogram exact(std::vector<double>(domain, 1000.0));
  size_t within = 0;
  constexpr int kTrials = 5000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto noisy = ReleaseDpHistogram(exact, epsilon, rng, options);
    double max_err = 0.0;
    for (size_t i = 0; i < domain; ++i) {
      max_err = std::max(max_err,
                         std::fabs(noisy->bin(static_cast<ValueCode>(i)) -
                                   1000.0));
    }
    if (max_err <= bound) ++within;
  }
  // The union bound is conservative, so coverage must be at least the
  // target confidence.
  EXPECT_GE(static_cast<double>(within) / kTrials, confidence);
}

TEST(EpsilonForDpHistogramErrorTest, InvertsTheBound) {
  const size_t domain = 20;
  const double max_error = 15.0, confidence = 0.95;
  const double epsilon =
      EpsilonForDpHistogramError(domain, max_error, confidence);
  EXPECT_LE(DpHistogramMaxErrorBound(domain, epsilon, confidence), max_error);
  // A slightly smaller epsilon should violate the target.
  EXPECT_GT(DpHistogramMaxErrorBound(domain, epsilon * 0.8, confidence),
            max_error);
}

}  // namespace
}  // namespace dpclustx
