// Crash-recovery tests for the durable snapshot/restore path (src/snapshot +
// ServiceEngine::SaveSnapshotToFile / RestoreFromFiles / EnableAuditJournal).
//
// The invariant under test is exactly-once ε accounting across a SIGKILL:
// a charge that reached the audit journal is restored bit-for-bit (same
// doubles, same order → same floating-point sums), a charge that didn't
// reach it never produced a response, and every refusal path (corrupt
// snapshot, truncated snapshot, newer format, journal gap, snapshot-less
// journal) refuses loudly instead of rebuilding wrong ledgers.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/columnar_format.h"
#include "data/dataset.h"
#include "dp/privacy_budget.h"
#include "gtest/gtest.h"
#include "service/service_engine.h"
#include "snapshot/snapshot_io.h"

namespace dpclustx::service {
namespace {

JsonValue Parse(const std::string& text) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << text;
  return std::move(*parsed);
}

JsonValue Call(ServiceEngine& engine, const std::string& request) {
  return Parse(engine.Handle(request));
}

void ExpectOk(const JsonValue& response) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_TRUE(response.at("ok").AsBool()) << response.Dump();
}

void ExpectError(const JsonValue& response, const std::string& code) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  ASSERT_FALSE(response.at("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.at("error").at("code").AsString(), code)
      << response.Dump();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Loads the diabetes synthetic set (cap 5.0), clusters it, and opens a
/// session "alice" with ε = 2.0.
void SetUpServing(ServiceEngine& engine) {
  ExpectOk(Call(engine,
                R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                R"("generator":"diabetes","rows":400,"seed":7,)"
                R"("cap_epsilon":5.0})"));
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
  ExpectOk(Call(engine,
                R"({"op":"create_session","dataset":"d","session":"alice",)"
                R"("epsilon":2.0})"));
}

/// One hist release; 0.1 is inexact in binary, so repeated additions
/// exercise the bit-for-bit replay guarantee rather than hiding behind
/// round numbers.
JsonValue Hist(ServiceEngine& engine, const std::string& attr,
               double epsilon = 0.1) {
  std::ostringstream request;
  request << R"({"op":"hist","session":"alice","attribute":")" << attr
          << R"(","epsilon":)" << epsilon << "}";
  return Call(engine, request.str());
}

double SessionSpent(ServiceEngine& engine, const std::string& id) {
  StatusOr<std::shared_ptr<ServiceSession>> session =
      engine.sessions().Get(id);
  EXPECT_TRUE(session.ok()) << session.status();
  return (*session)->budget().spent_epsilon();
}

double CapSpent(ServiceEngine& engine, const std::string& dataset) {
  StatusOr<std::shared_ptr<DatasetEntry>> entry =
      engine.registry().Get(dataset);
  EXPECT_TRUE(entry.ok()) << entry.status();
  EXPECT_NE((*entry)->cap(), nullptr);
  return (*entry)->cap()->spent_epsilon();
}

std::vector<PrivacyBudget::LedgerEntry> SessionLedger(
    ServiceEngine& engine, const std::string& id) {
  StatusOr<std::shared_ptr<ServiceSession>> session =
      engine.sessions().Get(id);
  EXPECT_TRUE(session.ok()) << session.status();
  return (*session)->budget().ledger();
}

TEST(SnapshotTest, RoundTripRestoresEverythingBitForBit) {
  const std::string snap = TempPath("roundtrip.snap");
  std::remove(snap.c_str());

  ServiceEngine saved;
  SetUpServing(saved);
  // Awkward doubles on purpose: the restored ledger must reproduce the
  // exact floating-point sum, not an approximation of it.
  ExpectOk(Hist(saved, "diab_3", 0.1));
  ExpectOk(Hist(saved, "diab_5", 0.07));
  ExpectOk(Hist(saved, "diab_7", 0.3));
  const double spent = SessionSpent(saved, "alice");
  const double cap_spent = CapSpent(saved, "d");
  const std::vector<PrivacyBudget::LedgerEntry> ledger =
      SessionLedger(saved, "alice");
  ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());

  ServiceEngine restored;
  StatusOr<ServiceEngine::RestoreReport> report =
      restored.RestoreFromFiles(snap, "");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->format_version, dpclustx::snapshot::kSnapshotFormatVersion);
  EXPECT_EQ(report->datasets, 1u);
  EXPECT_EQ(report->sessions, 1u);
  EXPECT_EQ(report->cache_entries, 3u);
  EXPECT_EQ(report->replayed_records, 0u);

  // Ledger equality is EXACT double equality, entry by entry.
  EXPECT_EQ(SessionSpent(restored, "alice"), spent);
  EXPECT_EQ(CapSpent(restored, "d"), cap_spent);
  const std::vector<PrivacyBudget::LedgerEntry> restored_ledger =
      SessionLedger(restored, "alice");
  ASSERT_EQ(restored_ledger.size(), ledger.size());
  for (size_t i = 0; i < ledger.size(); ++i) {
    EXPECT_EQ(restored_ledger[i].epsilon, ledger[i].epsilon);
    EXPECT_EQ(restored_ledger[i].label, ledger[i].label);
  }
  // Audit totals were restored and still match the ledger exactly.
  EXPECT_EQ(restored.audit_log().TenantTotals("alice").epsilon_charged, spent);
  EXPECT_EQ(restored.audit_log().next_seq(), saved.audit_log().next_seq());

  // A repeat of a paid-for release is a cache hit: zero additional ε.
  const JsonValue repeat = Hist(restored, "diab_3", 0.1);
  ExpectOk(repeat);
  EXPECT_TRUE(repeat.at("cache_hit").AsBool());
  EXPECT_EQ(repeat.at("epsilon_charged").AsNumber(), 0.0);
  EXPECT_EQ(SessionSpent(restored, "alice"), spent);
}

TEST(SnapshotTest, KillBetweenChargeAndResponseReplaysExactlyOnce) {
  const std::string snap = TempPath("kill.snap");
  const std::string journal = TempPath("kill.journal");
  std::remove(snap.c_str());
  std::remove(journal.c_str());

  // The "worker": journaling enabled, snapshot saved BEFORE the fatal
  // charge. The fault injector fails the request after the handler ran —
  // the ε was charged and journaled, but no successful response ever left
  // the engine. On-disk state is now exactly what a SIGKILL between charge
  // and response leaves behind.
  double spent_before_kill = 0.0;
  double cap_before_kill = 0.0;
  {
    ServiceEngineOptions options;
    options.fault_injector = [](const FaultPoint& point) {
      if (point.point == "hist:finish" && point.request->Has("lethal")) {
        return Status::Internal("simulated crash before response");
      }
      return Status::OK();
    };
    ServiceEngine worker(options);
    ASSERT_TRUE(worker.EnableAuditJournal(journal).ok());
    SetUpServing(worker);
    ExpectOk(Hist(worker, "diab_3", 0.1));
    ASSERT_TRUE(worker.SaveSnapshotToFile(snap).ok());

    ExpectError(Call(worker,
                     R"({"op":"hist","session":"alice","attribute":"diab_5",)"
                     R"("epsilon":0.07,"lethal":true})"),
                "Internal");
    spent_before_kill = SessionSpent(worker, "alice");
    cap_before_kill = CapSpent(worker, "d");
    // The charge stuck even though the response was lost.
    EXPECT_EQ(spent_before_kill, 0.1 + 0.07);
  }

  ServiceEngine recovered;
  StatusOr<ServiceEngine::RestoreReport> report =
      recovered.RestoreFromFiles(snap, journal);
  ASSERT_TRUE(report.ok()) << report.status();
  // The snapshot held the first charge; only the post-cursor one replays.
  EXPECT_EQ(report->replayed_records, 1u);
  EXPECT_TRUE(report->unrecovered_sessions.empty());

  // Exactly-once: the replayed ledger equals the pre-kill ledger to the
  // bit, on the session, the dataset cap, and the audit totals.
  EXPECT_EQ(SessionSpent(recovered, "alice"), spent_before_kill);
  EXPECT_EQ(CapSpent(recovered, "d"), cap_before_kill);
  EXPECT_EQ(recovered.audit_log().TenantTotals("alice").epsilon_charged,
            spent_before_kill);

  // Restoring the same files again into another engine gives the same
  // answer — replay is deterministic, not cumulative.
  ServiceEngine again;
  ASSERT_TRUE(again.RestoreFromFiles(snap, journal).ok());
  EXPECT_EQ(SessionSpent(again, "alice"), spent_before_kill);
}

TEST(SnapshotTest, SnapshotlessRecoveryWithJournalIsRefused) {
  const std::string journal = TempPath("orphan.journal");
  std::remove(journal.c_str());
  {
    ServiceEngine worker;
    ASSERT_TRUE(worker.EnableAuditJournal(journal).ok());
    SetUpServing(worker);
    ExpectOk(Hist(worker, "diab_3", 0.1));
  }

  ServiceEngine recovered;
  StatusOr<ServiceEngine::RestoreReport> report =
      recovered.RestoreFromFiles(TempPath("never-saved.snap"), journal);
  ASSERT_FALSE(report.ok());
  // A clear, actionable refusal — not NotFound (which means "fresh start").
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(report.status().message().find("snapshot-less"),
            std::string::npos)
      << report.status();
}

TEST(SnapshotTest, MissingSnapshotWithoutJournalIsNotFound) {
  ServiceEngine engine;
  StatusOr<ServiceEngine::RestoreReport> report =
      engine.RestoreFromFiles(TempPath("absent.snap"),
                              TempPath("absent.journal"));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, CorruptedSnapshotIsRejected) {
  const std::string snap = TempPath("corrupt.snap");
  {
    ServiceEngine saved;
    SetUpServing(saved);
    ExpectOk(Hist(saved, "diab_3", 0.1));
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
  }
  // Flip one byte in the middle of the file: some section's CRC now fails.
  {
    std::fstream file(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 64);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  ServiceEngine engine;
  StatusOr<ServiceEngine::RestoreReport> report =
      engine.RestoreFromFiles(snap, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError) << report.status();
  // Nothing was partially applied.
  EXPECT_EQ(engine.registry().size(), 0u);
}

TEST(SnapshotTest, TruncatedSnapshotIsRejected) {
  const std::string snap = TempPath("truncated.snap");
  {
    ServiceEngine saved;
    SetUpServing(saved);
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
  }
  std::string bytes;
  {
    std::ifstream in(snap, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  ASSERT_GT(bytes.size(), 32u);
  {
    std::ofstream out(snap, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  ServiceEngine engine;
  StatusOr<ServiceEngine::RestoreReport> report =
      engine.RestoreFromFiles(snap, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError) << report.status();
  EXPECT_EQ(engine.registry().size(), 0u);
}

TEST(SnapshotTest, NewerFormatVersionIsRefusedNotGuessed) {
  const std::string snap = TempPath("future.snap");
  {
    ServiceEngine saved;
    SetUpServing(saved);
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
  }
  // Patch the u32 version field (right after the 8-byte magic) to a future
  // format. A reader must refuse what it cannot fully understand: guessing
  // at ledgers is how budgets get silently corrupted.
  {
    std::fstream file(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    const uint32_t future = dpclustx::snapshot::kSnapshotFormatVersion + 7;
    char le[4] = {static_cast<char>(future & 0xFF),
                  static_cast<char>((future >> 8) & 0xFF),
                  static_cast<char>((future >> 16) & 0xFF),
                  static_cast<char>((future >> 24) & 0xFF)};
    file.seekp(sizeof(dpclustx::snapshot::kSnapshotMagic));
    file.write(le, 4);
  }
  ServiceEngine engine;
  StatusOr<ServiceEngine::RestoreReport> report =
      engine.RestoreFromFiles(snap, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
      << report.status();
  EXPECT_NE(report.status().message().find("not supported"),
            std::string::npos)
      << report.status();
}

TEST(SnapshotTest, JournalGapIsRefused) {
  const std::string snap = TempPath("gap.snap");
  const std::string journal = TempPath("gap.journal");
  std::remove(snap.c_str());
  std::remove(journal.c_str());
  {
    ServiceEngine worker;
    ASSERT_TRUE(worker.EnableAuditJournal(journal).ok());
    SetUpServing(worker);
    ASSERT_TRUE(worker.SaveSnapshotToFile(snap).ok());  // cursor = 1
    ExpectOk(Hist(worker, "diab_3", 0.1));              // seq 1
    ExpectOk(Hist(worker, "diab_5", 0.1));              // seq 2
  }
  // Drop the journal's first line: recovery now sees seq 2 where it needs
  // seq 1 — records are missing, rebuilt ledgers would understate.
  {
    std::ifstream in(journal);
    std::string first, rest, line;
    std::getline(in, first);
    while (std::getline(in, line)) rest += line + "\n";
    in.close();
    std::ofstream out(journal, std::ios::trunc);
    out << rest;
  }
  ServiceEngine recovered;
  StatusOr<ServiceEngine::RestoreReport> report =
      recovered.RestoreFromFiles(snap, journal);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
      << report.status();
  EXPECT_NE(report.status().message().find("gap"), std::string::npos)
      << report.status();
}

TEST(SnapshotTest, TornFinalJournalLineIsSkipped) {
  const std::string snap = TempPath("torn.snap");
  const std::string journal = TempPath("torn.journal");
  std::remove(snap.c_str());
  std::remove(journal.c_str());
  double spent_at_seq1 = 0.0;
  {
    ServiceEngine worker;
    ASSERT_TRUE(worker.EnableAuditJournal(journal).ok());
    SetUpServing(worker);
    ASSERT_TRUE(worker.SaveSnapshotToFile(snap).ok());
    ExpectOk(Hist(worker, "diab_3", 0.1));
    spent_at_seq1 = SessionSpent(worker, "alice");
    ExpectOk(Hist(worker, "diab_5", 0.1));
  }
  // A SIGKILL mid-append leaves a half-written final line. Its charge never
  // produced a response (the journal flush happens before the response), so
  // skipping it keeps accounting consistent with what any client observed.
  {
    std::ifstream in(journal);
    std::string first;
    std::getline(in, first);
    in.close();
    std::ofstream out(journal, std::ios::trunc);
    out << first << "\n" << R"({"dataset":"d","epsilon":0.1,"gra)";
  }
  ServiceEngine recovered;
  StatusOr<ServiceEngine::RestoreReport> report =
      recovered.RestoreFromFiles(snap, journal);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->replayed_records, 1u);
  EXPECT_EQ(SessionSpent(recovered, "alice"), spent_at_seq1);
}

TEST(SnapshotTest, RestoreIntoNonEmptyEngineIsRefused) {
  const std::string snap = TempPath("nonempty.snap");
  {
    ServiceEngine saved;
    SetUpServing(saved);
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
  }
  ServiceEngine busy;
  ExpectOk(Call(busy,
                R"({"op":"load_dataset","name":"other","source":"synthetic",)"
                R"("generator":"diabetes","rows":200})"));
  StatusOr<ServiceEngine::RestoreReport> report =
      busy.RestoreFromFiles(snap, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, UnrecoveredSessionChargesStillHitTheDatasetCap) {
  const std::string snap = TempPath("unrecovered.snap");
  const std::string journal = TempPath("unrecovered.journal");
  std::remove(snap.c_str());
  std::remove(journal.c_str());
  double cap_before_kill = 0.0;
  {
    ServiceEngine worker;
    ASSERT_TRUE(worker.EnableAuditJournal(journal).ok());
    SetUpServing(worker);
    ASSERT_TRUE(worker.SaveSnapshotToFile(snap).ok());
    // A session created AFTER the snapshot charges, then the worker dies:
    // its ledger cannot be rebuilt (session creation is not journaled), but
    // the dataset cap must still absorb the charge — the cap may overstate,
    // never understate.
    ExpectOk(Call(worker,
                  R"({"op":"create_session","dataset":"d","session":"bob",)"
                  R"("epsilon":1.0})"));
    ExpectOk(Call(worker,
                  R"({"op":"hist","session":"bob","attribute":"diab_3",)"
                  R"("epsilon":0.1})"));
    cap_before_kill = CapSpent(worker, "d");
  }
  ServiceEngine recovered;
  StatusOr<ServiceEngine::RestoreReport> report =
      recovered.RestoreFromFiles(snap, journal);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->unrecovered_sessions.size(), 1u);
  EXPECT_EQ(report->unrecovered_sessions[0], "bob");
  EXPECT_EQ(CapSpent(recovered, "d"), cap_before_kill);
  EXPECT_FALSE(recovered.sessions().Get("bob").ok());
}

TEST(SnapshotTest, ReadOnlyReplicaServesHitsAndRefusesCharges) {
  const std::string snap = TempPath("replica.snap");
  {
    ServiceEngine primary;
    SetUpServing(primary);
    ExpectOk(Hist(primary, "diab_3", 0.1));
    ASSERT_TRUE(primary.SaveSnapshotToFile(snap).ok());
  }
  ServiceEngineOptions options;
  options.read_only = true;
  ServiceEngine replica(options);
  ASSERT_TRUE(replica.RestoreFromFiles(snap, "").ok());

  // The paid-for release serves from the restored cache, free.
  const JsonValue hit = Hist(replica, "diab_3", 0.1);
  ExpectOk(hit);
  EXPECT_TRUE(hit.at("cache_hit").AsBool());
  EXPECT_EQ(hit.at("epsilon_charged").AsNumber(), 0.0);

  // Anything that would charge or mutate is refused, loudly.
  ExpectError(Hist(replica, "diab_11", 0.1), "FailedPrecondition");
  ExpectError(Call(replica,
                   R"({"op":"load_dataset","name":"x","source":"synthetic",)"
                   R"("generator":"diabetes","rows":100})"),
              "FailedPrecondition");
  ExpectError(Call(replica,
                   R"({"op":"create_session","dataset":"d","session":"eve",)"
                   R"("epsilon":1.0})"),
              "FailedPrecondition");
}

// ---------------------------------------------------------------------------
// Snapshot v2: mapped DPXCOL datasets are saved by reference, not inlined.
// ---------------------------------------------------------------------------

/// Writes a 3-attribute DPXCOL file with `rows` rows and append headroom.
std::string WriteColumnarFixture(const std::string& name, size_t rows) {
  Schema schema({Attribute("color", {"red", "green", "blue"}),
                 Attribute("size", {"s", "m", "l", "xl"}),
                 Attribute("grade", {"lo", "hi"})});
  Dataset dataset(schema);
  for (size_t r = 0; r < rows; ++r) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(r % 3),
                                static_cast<ValueCode>(r % 4),
                                static_cast<ValueCode>(r % 2)});
  }
  const std::string path = TempPath("snap_" + name + ".dpxcol");
  std::remove(path.c_str());
  ColumnarWriteOptions options;
  options.capacity_rows = rows + 64;
  Status written = WriteColumnarFile(dataset, path, options);
  EXPECT_TRUE(written.ok()) << written;
  return path;
}

/// Loads `path` as mapped dataset "m" (cap 5.0), clusters it, opens
/// session "alice" (ε = 2.0), and appends one row so the epoch is nonzero.
void SetUpColumnarServing(ServiceEngine& engine, const std::string& path) {
  ExpectOk(Call(engine,
                R"({"op":"load_dataset","name":"m","source":"dpxcol",)"
                R"("path":")" + path + R"(","cap_epsilon":5.0})"));
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"m","method":"k-modes","k":2,)"
                R"("seed":5})"));
  ExpectOk(Call(engine,
                R"({"op":"create_session","dataset":"m","session":"alice",)"
                R"("epsilon":2.0})"));
  ExpectOk(Call(engine, R"({"op":"append_rows","dataset":"m",)"
                        R"("rows":[["red","s","lo"]]})"));
}

TEST(SnapshotTest, ColumnarDatasetSavedByReferenceAndRestored) {
  const std::string snap = TempPath("columnar_ref.snap");
  std::remove(snap.c_str());
  const std::string path = WriteColumnarFixture("ref", 24);

  ServiceEngine saved;
  SetUpColumnarServing(saved, path);
  const JsonValue release = Parse(saved.Handle(
      R"({"op":"hist","session":"alice","attribute":"size","epsilon":0.1})"));
  ExpectOk(release);
  const auto saved_entry = saved.registry().Get("m");
  ASSERT_TRUE(saved_entry.ok());
  const uint64_t saved_epoch = (*saved_entry)->epoch();
  EXPECT_GE(saved_epoch, 1u);
  ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());

  // By reference: the snapshot must be far smaller than an inlined copy —
  // it records (path, file_uid, rows), not 25 rows of codes per column.
  // (Sanity: it is at least parseable and re-openable below.)
  ServiceEngine restored;
  StatusOr<ServiceEngine::RestoreReport> report =
      restored.RestoreFromFiles(snap, "");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->datasets, 1u);

  const auto entry = restored.registry().Get("m");
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_TRUE((*entry)->dataset()->is_mapped());
  EXPECT_EQ((*entry)->dataset()->num_rows(), 25u);
  // The epoch is pinned, not reset: cached releases from before the save
  // keep their keys, so the paid-for hist re-serves at zero ε.
  EXPECT_EQ((*entry)->epoch(), saved_epoch);
  const JsonValue repeat = Parse(restored.Handle(
      R"({"op":"hist","session":"alice","attribute":"size","epsilon":0.1})"));
  ExpectOk(repeat);
  EXPECT_TRUE(repeat.at("cache_hit").AsBool());
  EXPECT_EQ(repeat.at("epsilon_charged").AsNumber(), 0.0);

  std::remove(snap.c_str());
  std::remove(path.c_str());
}

TEST(SnapshotTest, ColumnarRestoreRefusesAReplacedFile) {
  const std::string snap = TempPath("columnar_swap.snap");
  std::remove(snap.c_str());
  const std::string path = WriteColumnarFixture("swap", 24);

  {
    ServiceEngine saved;
    SetUpColumnarServing(saved, path);
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
  }

  // Same path, different file: a fresh DPXCOL gets a fresh file_uid, so
  // the snapshot's fingerprint no longer matches — restoring against it
  // would silently compute on the wrong rows.
  std::remove(path.c_str());
  const std::string replacement = WriteColumnarFixture("swap", 24);
  ASSERT_EQ(replacement, path);

  ServiceEngine restored;
  StatusOr<ServiceEngine::RestoreReport> report =
      restored.RestoreFromFiles(snap, "");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError)
      << report.status();

  std::remove(snap.c_str());
  std::remove(path.c_str());
}

TEST(SnapshotTest, ColumnarRestoreMapsExactlyTheSavedRowPrefix) {
  const std::string snap = TempPath("columnar_prefix.snap");
  std::remove(snap.c_str());
  const std::string path = WriteColumnarFixture("prefix", 24);

  {
    ServiceEngine saved;
    SetUpColumnarServing(saved, path);  // 24 + 1 appended = 25 rows saved
    ASSERT_TRUE(saved.SaveSnapshotToFile(snap).ok());
    // The file keeps growing after the save (a later epoch the snapshot
    // never saw).
    ExpectOk(Call(saved, R"({"op":"append_rows","dataset":"m",)"
                         R"("rows":[["blue","xl","hi"],["green","m","lo"]]})"));
  }
  {
    auto grown = MappedColumnar::Open(path);
    ASSERT_TRUE(grown.ok()) << grown.status();
    ASSERT_EQ((*grown)->num_rows(), 27u);
  }

  // Restore sees 27 committed rows on disk but maps only the 25 the
  // snapshot describes — the restored engine is the saved instant.
  ServiceEngine restored;
  StatusOr<ServiceEngine::RestoreReport> report =
      restored.RestoreFromFiles(snap, "");
  ASSERT_TRUE(report.ok()) << report.status();
  const auto entry = restored.registry().Get("m");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE((*entry)->dataset()->is_mapped());
  EXPECT_EQ((*entry)->dataset()->num_rows(), 25u);

  std::remove(snap.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpclustx::service
