#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpclustx {
namespace {

TEST(KMeansTest, ValidatesOptions) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(10, 3, 9, 1);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(FitKMeans(dataset, options).ok());
  options.num_clusters = 100;  // more clusters than rows
  EXPECT_FALSE(FitKMeans(dataset, options).ok());
}

TEST(KMeansTest, RecoversTwoSeparatedBlocks) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(500, 6, 9, 2);
  KMeansOptions options;
  options.num_clusters = 2;
  options.seed = 3;
  const auto clustering = FitKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  EXPECT_GT(testutil::TwoBlockPurity(labels), 0.98);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 4, 9, 4);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 7;
  const auto a = FitKMeans(dataset, options);
  const auto b = FitKMeans(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST(KMeansTest, ProducesRequestedClusterCount) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 4, 9, 5);
  KMeansOptions options;
  options.num_clusters = 4;
  const auto clustering = FitKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->num_clusters(), 4u);
}

TEST(KMeansTest, NameDescribesConfiguration) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(50, 2, 9, 6);
  KMeansOptions options;
  options.num_clusters = 2;
  const auto clustering = FitKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->name(), "k-means(k=2)");
}

TEST(KMeansTest, AssignsArbitraryDomainTuples) {
  // The fitted model is a total function on dom(R), not just on D.
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 3, 9, 8);
  KMeansOptions options;
  options.num_clusters = 2;
  const auto clustering = FitKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const ClusterId label = (*clustering)->Assign({4, 4, 4});
  EXPECT_LT(label, 2u);
}

}  // namespace
}  // namespace dpclustx
