// The paper's *negative* results, verified constructively: the original
// TabEE quality functions have sensitivity at least ½ relative to a [0, 1]
// range, which is what motivates the low-sensitivity variants. Each test
// reconstructs the adversarial neighboring pair from the corresponding
// proof (Props. 4.1 / A.2 / 4.3 / A.8) and checks the score jump.

#include <cmath>

#include <gtest/gtest.h>

#include "core/stats_cache.h"
#include "data/histogram.h"
#include "eval/metrics.h"

namespace dpclustx {
namespace {

// Prop. 4.1's construction: D of size n, all tuples with A = a; the cluster
// holds one tuple. Adding one tuple with A = a' to the cluster moves TVD
// from 0 to 1/2 − 1/(n+1).
TEST(SensitivityCounterexamplesTest, TvdInterestingnessJumpsByHalf) {
  const size_t n = 10000;
  Schema schema({Attribute::WithAnonymousDomain("A", 2)});

  Dataset before(schema);
  std::vector<ClusterId> labels_before;
  for (size_t i = 0; i < n; ++i) {
    before.AppendRowUnchecked({0});
    labels_before.push_back(i == 0 ? 0u : 1u);  // cluster 0 = one tuple
  }
  const auto stats_before = StatsCache::Build(before, labels_before, 2);
  EXPECT_NEAR(eval::TvdInterestingness(*stats_before, 0, 0), 0.0, 1e-12);

  Dataset after = before;
  std::vector<ClusterId> labels_after = labels_before;
  after.AppendRowUnchecked({1});  // t'[A] = a' joins cluster 0
  labels_after.push_back(0);
  const auto stats_after = StatsCache::Build(after, labels_after, 2);
  const double tvd_after = eval::TvdInterestingness(*stats_after, 0, 0);
  EXPECT_NEAR(tvd_after, 0.5 - 1.0 / (static_cast<double>(n) + 1.0), 1e-9);
  // One tuple moved the [0,1]-ranged score by ≈ ½.
  EXPECT_GT(tvd_after, 0.49);
}

// Prop. A.2: the same construction pushes the Jensen–Shannon distance above
// ½ (JSD → H_b(1/4) − 1/2 ≈ 0.311, distance ≈ 0.56).
TEST(SensitivityCounterexamplesTest, JensenShannonJumpsAboveHalf) {
  const size_t n = 10000;
  // Full data: all value a plus one a'; cluster: one a and one a'.
  Histogram full(2);
  full.set_bin(0, static_cast<double>(n));
  full.set_bin(1, 1.0);
  Histogram cluster(2);
  cluster.set_bin(0, 1.0);
  cluster.set_bin(1, 1.0);
  const double after = Histogram::JensenShannonDistance(full, cluster);
  // Before the addition both distributions were the point mass on a: 0.
  Histogram cluster_before(2);
  cluster_before.set_bin(0, 1.0);
  Histogram full_before(2);
  full_before.set_bin(0, static_cast<double>(n));
  EXPECT_NEAR(
      Histogram::JensenShannonDistance(full_before, cluster_before), 0.0,
      1e-9);
  EXPECT_GT(after, 0.5);
}

// Prop. 4.3's construction: D = {t1} with clusters {t1} and ∅ gives
// Suf = 1; adding t2 (same value) to the empty cluster drops Suf to ½.
TEST(SensitivityCounterexamplesTest, SufficiencyDropsByHalf) {
  Schema schema({Attribute::WithAnonymousDomain("A", 2)});
  Dataset before(schema);
  before.AppendRowUnchecked({0});
  const auto stats_before = StatsCache::Build(before, {0}, 2);
  EXPECT_NEAR(eval::Sufficiency(*stats_before, {0, 0}), 1.0, 1e-12);

  Dataset after = before;
  after.AppendRowUnchecked({0});
  const auto stats_after =
      StatsCache::Build(after, std::vector<ClusterId>{0, 1}, 2);
  EXPECT_NEAR(eval::Sufficiency(*stats_after, {0, 0}), 0.5, 1e-12);
}

// Prop. A.8's construction: all clusters identical on A (diversity 0);
// adding one differing tuple to a singleton cluster lifts the permutation
// diversity by ½ · (1/|C| after normalization).
TEST(SensitivityCounterexamplesTest, TabeeDiversityJumps) {
  const size_t per_cluster = 2000;
  Schema schema({Attribute::WithAnonymousDomain("A", 2)});
  Dataset before(schema);
  std::vector<ClusterId> labels;
  // Cluster 0 is a singleton; clusters 1 and 2 are large, all value a.
  before.AppendRowUnchecked({0});
  labels.push_back(0);
  for (size_t i = 0; i < 2 * per_cluster; ++i) {
    before.AppendRowUnchecked({0});
    labels.push_back(static_cast<ClusterId>(1 + (i % 2)));
  }
  const auto stats_before = StatsCache::Build(before, labels, 3);
  const AttributeCombination all_a(3, 0);
  const double div_before = eval::TabeeDiversity(*stats_before, all_a);

  Dataset after = before;
  std::vector<ClusterId> labels_after = labels;
  after.AppendRowUnchecked({1});
  labels_after.push_back(0);  // the singleton cluster gains a distinct value
  const auto stats_after = StatsCache::Build(after, labels_after, 3);
  const double div_after = eval::TabeeDiversity(*stats_after, all_a);

  // Per the proof, every ordering's chain gains exactly ½ (one summand of
  // TVD ½), i.e. 1/6 after the |C| = 3 normalization.
  EXPECT_NEAR(div_after - div_before, 0.5 / 3.0, 1e-9);
}

// Contrast test tying the negative results to the positive ones: on the
// same adversarial pair where TVD jumps by ≈ ½ (range [0,1]), the
// low-sensitivity interestingness moves by at most 1 against a range of
// [0, |D_c|] — the signal-to-noise reversal the paper's design exploits.
TEST(SensitivityCounterexamplesTest, LowSensitivityVariantStaysBounded) {
  const size_t n = 10000;
  Schema schema({Attribute::WithAnonymousDomain("A", 2)});
  Dataset before(schema);
  std::vector<ClusterId> labels;
  for (size_t i = 0; i < n; ++i) {
    before.AppendRowUnchecked({0});
    labels.push_back(i == 0 ? 0u : 1u);
  }
  const auto stats_before = StatsCache::Build(before, labels, 2);
  Dataset after = before;
  std::vector<ClusterId> labels_after = labels;
  after.AppendRowUnchecked({1});
  labels_after.push_back(0);
  const auto stats_after = StatsCache::Build(after, labels_after, 2);
  const double diff = std::fabs(InterestingnessP(*stats_after, 0, 0) -
                                InterestingnessP(*stats_before, 0, 0));
  EXPECT_LE(diff, 1.0 + 1e-9);
}

}  // namespace
}  // namespace dpclustx
