// Tests for the sharded multi-worker front door: RouterCore policy units
// (hash ring, classification, session table, backoff) plus end-to-end tests
// that drive the real dpclustx_router + dpclustx_serve binaries over pipes —
// including SIGKILLing workers mid-session and verifying that respawn +
// snapshot/journal restore preserves every ε charge exactly once.

#include "service/router_core.h"

#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"

namespace dpclustx::service {
namespace {

// ---- RouterCore policy units -----------------------------------------

TEST(HashRingTest, RoutingIsDeterministicAndCoversEveryNode) {
  const std::vector<std::string> nodes = {"shard-0", "shard-1", "shard-2"};
  HashRing ring(nodes);
  HashRing same(nodes);
  std::map<std::string, size_t> load;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "dataset-" + std::to_string(i);
    const std::string& node = ring.Route(key);
    EXPECT_EQ(node, same.Route(key)) << key;  // placement is a contract
    load[node]++;
  }
  ASSERT_EQ(load.size(), 3u);  // no starved shard
  for (const auto& [node, count] : load) {
    EXPECT_GT(count, 100u) << node << " is badly underloaded";
  }
}

TEST(HashRingTest, AddingANodeMovesOnlyAFractionOfKeys) {
  HashRing three({"shard-0", "shard-1", "shard-2"});
  HashRing four({"shard-0", "shard-1", "shard-2", "shard-3"});
  size_t moved = 0;
  const size_t keys = 1000;
  for (size_t i = 0; i < keys; ++i) {
    const std::string key = "dataset-" + std::to_string(i);
    if (three.Route(key) != four.Route(key)) ++moved;
  }
  // Consistent hashing moves ~1/4 of keys on 3→4; a modulo scheme would
  // move ~3/4. Half is a generous bound that still catches regressions.
  EXPECT_LT(moved, keys / 2);
  EXPECT_GT(moved, 0u);  // the new shard owns something
}

JsonValue ParseRequest(const std::string& text) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(*parsed);
}

TEST(RouterCoreTest, ClassifiesEveryOpKind) {
  RouterCore core({"shard-0", "shard-1"});

  StatusOr<RouteDecision> d =
      core.Classify(ParseRequest(R"({"op":"ping"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kBroadcast);

  d = core.Classify(ParseRequest(R"({"op":"save_snapshot","path":"x"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kRefused);

  d = core.Classify(ParseRequest(R"({"op":"load_dataset","name":"census"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kShard);
  EXPECT_EQ(d->dataset, "census");

  d = core.Classify(
      ParseRequest(R"({"op":"cluster","dataset":"census","method":"k"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kShard);
  EXPECT_EQ(d->dataset, "census");

  d = core.Classify(ParseRequest(R"({"op":"frobnicate"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kUnknownOp);
}

TEST(RouterCoreTest, SessionsBindOnCreateAndUnbindOnClose) {
  RouterCore core({"shard-0", "shard-1"});

  // Before create: session-keyed ops are unroutable, deterministically.
  StatusOr<RouteDecision> d =
      core.Classify(ParseRequest(R"({"op":"budget","session":"alice"})"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);

  d = core.Classify(ParseRequest(
      R"({"op":"create_session","dataset":"census","session":"alice"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kShard);
  EXPECT_EQ(core.sessions().size(), 1u);

  // Session-keyed ops now route to the dataset's shard; reads are
  // replica-eligible, control ops are not.
  d = core.Classify(ParseRequest(R"({"op":"budget","session":"alice"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kShard);
  EXPECT_EQ(d->dataset, "census");

  d = core.Classify(ParseRequest(
      R"({"op":"hist","session":"alice","attribute":"a"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kReplicaRead);
  EXPECT_EQ(d->dataset, "census");

  d = core.Classify(
      ParseRequest(R"({"op":"close_session","session":"alice"})"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->kind, RouteKind::kShard);
  EXPECT_EQ(core.sessions().size(), 0u);

  d = core.Classify(ParseRequest(R"({"op":"budget","session":"alice"})"));
  EXPECT_FALSE(d.ok());
}

TEST(RouterCoreTest, MissingFieldsAreInvalidArgument) {
  RouterCore core({"shard-0"});
  StatusOr<RouteDecision> d =
      core.Classify(ParseRequest(R"({"op":"load_dataset"})"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);

  d = core.Classify(ParseRequest(R"({"no_op":1})"));
  ASSERT_FALSE(d.ok());
}

TEST(BackoffTest, DoublesFromBaseAndClampsAtCapWithoutOverflow) {
  Backoff backoff;  // base 100, cap 2000
  EXPECT_EQ(backoff.DelayMs(1), 100);
  EXPECT_EQ(backoff.DelayMs(2), 200);
  EXPECT_EQ(backoff.DelayMs(3), 400);
  EXPECT_EQ(backoff.DelayMs(5), 1600);
  EXPECT_EQ(backoff.DelayMs(6), 2000);
  EXPECT_EQ(backoff.DelayMs(64), 2000);   // would overflow a naive shift
  EXPECT_EQ(backoff.DelayMs(1000), 2000);
}

TEST(BackoffTest, JitteredDelayStaysWithinTwentyPercentAndIsDeterministic) {
  Backoff backoff;  // base 100, cap 2000
  for (uint64_t attempt = 1; attempt <= 6; ++attempt) {
    const int64_t delay = backoff.DelayMs(attempt);
    for (const double u : {0.0, 0.25, 0.5, 0.999}) {
      const int64_t jittered = backoff.JitteredDelayMs(attempt, u);
      // The jitter factor is exactly 0.8 + 0.4u, so a fixed u is a fixed
      // delay — respawn tests can rely on that.
      EXPECT_EQ(jittered,
                static_cast<int64_t>(static_cast<double>(delay) *
                                     (0.8 + 0.4 * u)));
      EXPECT_GE(jittered, static_cast<int64_t>(0.8 * delay));
      EXPECT_LT(jittered, static_cast<int64_t>(1.2 * delay) + 1);
    }
  }
}

TEST(BackoffTest, JitteredDelayClampsOutOfRangeRandomness) {
  Backoff backoff;  // base 100, cap 2000
  const int64_t delay = backoff.DelayMs(3);  // 400
  // A broken RNG must not push the delay outside the ±20% band. (The
  // upper clamp is nextafter(1, 0), whose factor rounds to exactly 1.2.)
  EXPECT_EQ(backoff.JitteredDelayMs(3, -7.5), backoff.JitteredDelayMs(3, 0.0));
  EXPECT_LE(backoff.JitteredDelayMs(3, 42.0), static_cast<int64_t>(1.2 * delay));
  EXPECT_GE(backoff.JitteredDelayMs(3, 42.0), backoff.JitteredDelayMs(3, 0.999));
}

TEST(BackoffTest, JitteredDelayNeverReturnsZero) {
  // 0.8 * 1ms truncates to 0; a zero delay would make the respawn loop
  // spin. The floor keeps it at 1ms.
  Backoff tiny{.base_ms = 1, .max_ms = 1};
  EXPECT_EQ(tiny.JitteredDelayMs(1, 0.0), 1);
}

// ---- end-to-end: the real binaries over pipes ------------------------

std::string BuildDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(n, 0);
  buf[n] = '\0';
  std::string path(buf);          // .../build/tests/router_test
  path = path.substr(0, path.rfind('/'));  // .../build/tests
  return path.substr(0, path.rfind('/'));  // .../build
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "/router_" + name + "_" +
      std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  // Stale state from a previous run of the same pid is implausible but
  // cheap to rule out.
  for (int i = 0; i < 4; ++i) {
    const std::string base = dir + "/shard-" + std::to_string(i);
    ::unlink((base + ".snap").c_str());
    ::unlink((base + ".journal").c_str());
  }
  return dir;
}

/// Drives a dpclustx_router child over pipes, correlating the out-of-order
/// response stream by id.
class RouterProcess {
 public:
  explicit RouterProcess(std::vector<std::string> args) {
    int to_child[2];
    int from_child[2];
    EXPECT_EQ(::pipe(to_child), 0);
    EXPECT_EQ(::pipe(from_child), 0);
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      std::vector<char*> argv;
      for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    stdin_fd_ = to_child[1];
    stdout_fd_ = from_child[0];
  }

  ~RouterProcess() { Stop(); }

  void Stop() {
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);
      stdin_fd_ = -1;
    }
    if (pid_ > 0) {
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    if (stdout_fd_ >= 0) {
      ::close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

  void Send(const std::string& line) {
    const std::string payload = line + "\n";
    ASSERT_EQ(::write(stdin_fd_, payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));
  }

  /// Sends `request` (which must carry the string id `id`) and blocks until
  /// that id's response arrives. 30s deadline: a hang here is a router bug.
  JsonValue Call(const std::string& id, const std::string& request) {
    Send(request);
    return WaitFor(id);
  }

  JsonValue WaitFor(const std::string& id) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      auto it = received_.find(id);
      if (it != received_.end()) {
        JsonValue response = it->second;
        received_.erase(it);
        return response;
      }
      EXPECT_LT(std::chrono::steady_clock::now(), deadline)
          << "no response for id '" << id << "'";
      if (std::chrono::steady_clock::now() >= deadline) {
        return JsonValue::Null();
      }
      ReadSome();
    }
  }

 private:
  void ReadSome() {
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 1000);
    if (ready <= 0) return;
    char chunk[4096];
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (n <= 0) return;
    buffer_.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer_.find('\n')) != std::string::npos) {
      const std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      StatusOr<JsonValue> parsed = JsonValue::Parse(line);
      if (!parsed.ok() || parsed->type() != JsonValue::Type::kObject ||
          !parsed->Has("id")) {
        continue;
      }
      const JsonValue& id = parsed->at("id");
      if (id.type() != JsonValue::Type::kString) continue;
      received_[id.AsString()] = *parsed;
    }
  }

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  std::string buffer_;
  std::map<std::string, JsonValue> received_;
};

void ExpectOk(const JsonValue& response) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_TRUE(response.at("ok").AsBool()) << response.Dump();
}

std::vector<std::string> RouterArgs(const std::string& state_dir,
                                    const std::string& workers,
                                    const std::string& replicas) {
  const std::string build = BuildDir();
  return {build + "/tools/dpclustx_router",
          "--workers", workers,
          "--replicas", replicas,
          "--serve", build + "/tools/dpclustx_serve",
          "--state-dir", state_dir,
          "--health-interval-ms", "100",
          "--health-deadline-ms", "2000",
          "--health-misses", "3",
          // Workers run --sync so each shard serves its stream in order
          // (the test pipelines setup ops); snapshots every 100ms so a
          // SIGKILL finds recent durable state.
          "--", "--sync", "--snapshot-interval-ms", "100"};
}

TEST(RouterE2eTest, ShardedSessionFlowAcrossTwoWorkers) {
  const std::string state = FreshStateDir("flow");
  RouterProcess router(RouterArgs(state, "2", "0"));

  // Two datasets: the ring may place them on the same shard or different
  // ones — either way every dataset-keyed op must land where its data is.
  ExpectOk(router.Call(
      "t1",
      R"({"op":"load_dataset","name":"d1","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"t1"})"));
  ExpectOk(router.Call(
      "t2",
      R"({"op":"load_dataset","name":"d2","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"t2"})"));
  ExpectOk(router.Call(
      "t3",
      R"({"op":"cluster","dataset":"d1","method":"k-means","k":3,"id":"t3"})"));
  ExpectOk(router.Call(
      "t4",
      R"({"op":"cluster","dataset":"d2","method":"k-means","k":3,"id":"t4"})"));
  ExpectOk(router.Call(
      "t5",
      R"({"op":"create_session","dataset":"d1","session":"alice",)"
      R"("epsilon":2.0,"id":"t5"})"));
  ExpectOk(router.Call(
      "t6",
      R"({"op":"create_session","dataset":"d2","session":"bob",)"
      R"("epsilon":2.0,"id":"t6"})"));

  const JsonValue hist = router.Call(
      "t7", R"({"op":"hist","session":"alice","attribute":"diab_3",)"
            R"("epsilon":0.1,"id":"t7"})");
  ExpectOk(hist);
  EXPECT_FALSE(hist.at("cache_hit").AsBool());

  const JsonValue budget = router.Call(
      "t8", R"({"op":"budget","session":"alice","id":"t8"})");
  ExpectOk(budget);
  EXPECT_DOUBLE_EQ(budget.at("spent").AsNumber(), 0.1);

  // Broadcast: a ping fans out and returns one pong per shard.
  const JsonValue ping = router.Call("t9", R"({"op":"ping","id":"t9"})");
  ExpectOk(ping);
  ASSERT_TRUE(ping.Has("workers"));
  EXPECT_TRUE(ping.at("workers").Has("shard-0"));
  EXPECT_TRUE(ping.at("workers").Has("shard-1"));

  // Snapshot ops belong to the router, not clients.
  const JsonValue refused = router.Call(
      "t10", R"({"op":"save_snapshot","path":"x.snap","id":"t10"})");
  ASSERT_FALSE(refused.at("ok").AsBool());
  EXPECT_EQ(refused.at("error").at("code").AsString(), "FailedPrecondition");

  // A session this router never saw is deterministically unroutable.
  const JsonValue ghost = router.Call(
      "t11", R"({"op":"budget","session":"ghost","id":"t11"})");
  ASSERT_FALSE(ghost.at("ok").AsBool());
  EXPECT_EQ(ghost.at("error").at("code").AsString(), "NotFound");
}

std::vector<pid_t> ShardPids(RouterProcess& router, const std::string& id) {
  const JsonValue status =
      router.Call(id, R"({"op":"_router_status","id":")" + id + R"("})");
  std::vector<pid_t> pids;
  if (!status.Has("workers")) return pids;
  const JsonValue& workers = status.at("workers");
  for (size_t i = 0; i < workers.size(); ++i) {
    const JsonValue& w = workers.at(i);
    if (w.at("role").AsString() == "shard" && w.at("alive").AsBool()) {
      pids.push_back(static_cast<pid_t>(w.at("pid").AsNumber()));
    }
  }
  return pids;
}

TEST(RouterE2eTest, SigkilledWorkersRespawnWithLedgersIntact) {
  const std::string state = FreshStateDir("kill");
  RouterProcess router(RouterArgs(state, "2", "0"));

  ExpectOk(router.Call(
      "s1",
      R"({"op":"load_dataset","name":"d1","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"s1"})"));
  ExpectOk(router.Call(
      "s2",
      R"({"op":"load_dataset","name":"d2","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"s2"})"));
  ExpectOk(router.Call(
      "s3",
      R"({"op":"cluster","dataset":"d1","method":"k-means","k":3,"id":"s3"})"));
  ExpectOk(router.Call(
      "s4",
      R"({"op":"cluster","dataset":"d2","method":"k-means","k":3,"id":"s4"})"));
  ExpectOk(router.Call(
      "s5",
      R"({"op":"create_session","dataset":"d1","session":"alice",)"
      R"("epsilon":2.0,"id":"s5"})"));
  ExpectOk(router.Call(
      "s6",
      R"({"op":"create_session","dataset":"d2","session":"bob",)"
      R"("epsilon":2.0,"id":"s6"})"));
  ExpectOk(router.Call(
      "s7", R"({"op":"hist","session":"alice","attribute":"diab_3",)"
            R"("epsilon":0.1,"id":"s7"})"));
  ExpectOk(router.Call(
      "s8", R"({"op":"hist","session":"bob","attribute":"diab_5",)"
            R"("epsilon":0.07,"id":"s8"})"));

  // Let the periodic snapshot (100ms) capture the sessions, then SIGKILL
  // every shard — the strongest crash the protocol must survive.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const std::vector<pid_t> pids = ShardPids(router, "s9");
  ASSERT_EQ(pids.size(), 2u);
  for (const pid_t pid : pids) ASSERT_EQ(::kill(pid, SIGKILL), 0);

  // Wait until the router reports both shards respawned with NEW pids.
  std::vector<pid_t> fresh;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    fresh = ShardPids(router, "k" + std::to_string(attempt));
    if (fresh.size() == 2) {
      bool all_new = true;
      for (const pid_t pid : fresh) {
        for (const pid_t old : pids) all_new = all_new && pid != old;
      }
      if (all_new) break;
    }
  }
  ASSERT_EQ(fresh.size(), 2u) << "shards never respawned";

  // Restored-from-snapshot(+journal) ledgers: every pre-kill charge is
  // there, exactly once.
  const JsonValue alice = router.Call(
      "v1", R"({"op":"budget","session":"alice","id":"v1"})");
  ExpectOk(alice);
  EXPECT_DOUBLE_EQ(alice.at("spent").AsNumber(), 0.1);

  const JsonValue bob = router.Call(
      "v2", R"({"op":"budget","session":"bob","id":"v2"})");
  ExpectOk(bob);
  EXPECT_DOUBLE_EQ(bob.at("spent").AsNumber(), 0.07);

  // The paid-for releases survived in the restored cache: repeats are free.
  const JsonValue repeat = router.Call(
      "v3", R"({"op":"hist","session":"alice","attribute":"diab_3",)"
            R"("epsilon":0.1,"id":"v3"})");
  ExpectOk(repeat);
  EXPECT_TRUE(repeat.at("cache_hit").AsBool());
  EXPECT_EQ(repeat.at("epsilon_charged").AsNumber(), 0.0);
  const JsonValue after = router.Call(
      "v4", R"({"op":"budget","session":"alice","id":"v4"})");
  ExpectOk(after);
  EXPECT_DOUBLE_EQ(after.at("spent").AsNumber(), 0.1);
}

TEST(RouterE2eTest, ReplicaServesRepeatReadsAfterSync) {
  const std::string state = FreshStateDir("replica");
  RouterProcess router(RouterArgs(state, "1", "1"));

  ExpectOk(router.Call(
      "r1",
      R"({"op":"load_dataset","name":"d","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"r1"})"));
  ExpectOk(router.Call(
      "r2",
      R"({"op":"cluster","dataset":"d","method":"k-means","k":3,"id":"r2"})"));
  ExpectOk(router.Call(
      "r3",
      R"({"op":"create_session","dataset":"d","session":"alice",)"
      R"("epsilon":2.0,"id":"r3"})"));

  // First read: charged on the primary (the replica, whatever its state,
  // refuses the miss and the router falls back).
  const JsonValue first = router.Call(
      "r4", R"({"op":"hist","session":"alice","attribute":"diab_3",)"
            R"("epsilon":0.1,"id":"r4"})");
  ExpectOk(first);
  EXPECT_FALSE(first.at("cache_hit").AsBool());

  // Push the charged release into the replica via snapshot sync.
  ExpectOk(router.Call(
      "r5", R"({"op":"_router_sync_replicas","id":"r5"})"));

  // Repeat reads are now hits — served for zero ε (by the replica when it
  // answers first, by the primary's cache on fallback; either way free and
  // byte-identical), and the ledger must not move.
  for (int i = 0; i < 3; ++i) {
    const std::string id = "rr" + std::to_string(i);
    const JsonValue repeat = router.Call(
        id, R"({"op":"hist","session":"alice","attribute":"diab_3",)"
            R"("epsilon":0.1,"id":")" + id + R"("})");
    ExpectOk(repeat);
    EXPECT_TRUE(repeat.at("cache_hit").AsBool()) << repeat.Dump();
    EXPECT_EQ(repeat.at("epsilon_charged").AsNumber(), 0.0);
  }
  const JsonValue budget = router.Call(
      "r6", R"({"op":"budget","session":"alice","id":"r6"})");
  ExpectOk(budget);
  EXPECT_DOUBLE_EQ(budget.at("spent").AsNumber(), 0.1);
}

TEST(RouterE2eTest, GarbageWorkerLinesFailTheRequestNotTheRouter) {
  const std::string state = FreshStateDir("garbage");
  // A "worker" that answers every request line with something that is not
  // JSON. The router must not hang the client that is waiting on it, and
  // must not crash — it fails the pending request with a structured error
  // and counts the dropped line.
  const std::string fake = state + "/garbage_worker.sh";
  {
    std::ofstream out(fake);
    out << "#!/bin/sh\nwhile read line; do echo 'garbage not json'; done\n";
  }
  ::chmod(fake.c_str(), 0755);

  const std::string build = BuildDir();
  RouterProcess router({build + "/tools/dpclustx_router",
                        "--workers", "1",
                        "--replicas", "0",
                        "--serve", fake,
                        "--state-dir", state,
                        // No health pings during the test window: a ping
                        // would also get a garbage reply and eventually
                        // respawn the worker, which is not what we probe.
                        "--health-interval-ms", "60000",
                        "--health-deadline-ms", "2000",
                        "--health-misses", "3"});

  const JsonValue response = router.Call(
      "c1", R"({"op":"schema","dataset":"d","id":"c1"})");
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_FALSE(response.at("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.at("error").at("code").AsString(), "Internal")
      << response.Dump();
  EXPECT_NE(response.at("error").at("message").AsString().find("malformed"),
            std::string::npos)
      << response.Dump();

  // The drop is visible in the router's own status surface.
  const JsonValue status =
      router.Call("c2", R"({"op":"_router_status","id":"c2"})");
  ExpectOk(status);
  EXPECT_GE(status.at("dropped_lines_total").AsNumber(), 1.0)
      << status.Dump();
}

// ---- observability: trace propagation, fleet rollup (DESIGN.md §15) --

/// Child span of `node` with the given name, or nullptr. Spans are ordered,
/// so tests assert both presence and position where it matters.
const JsonValue* FindChild(const JsonValue& node, const std::string& name) {
  if (!node.Has("children")) return nullptr;
  const JsonValue& children = node.at("children");
  for (size_t i = 0; i < children.size(); ++i) {
    if (children.at(i).at("name").AsString() == name) return &children.at(i);
  }
  return nullptr;
}

TEST(RouterE2eTest, TracedExplainReturnsOneStitchedTimeline) {
  const std::string state = FreshStateDir("trace");
  // --verify-relay makes the router cross-check every _tc splice against a
  // full parse+re-dump and abort on any byte difference — so this test
  // passing also proves splice/parse equivalence on the traced path.
  std::vector<std::string> args = RouterArgs(state, "2", "0");
  args.insert(args.begin() + 1, "--verify-relay");
  RouterProcess router(std::move(args));

  ExpectOk(router.Call(
      "e1",
      R"({"op":"load_dataset","name":"d1","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"e1"})"));
  ExpectOk(router.Call(
      "e2",
      R"({"op":"cluster","dataset":"d1","method":"k-means","k":3,"id":"e2"})"));
  ExpectOk(router.Call(
      "e3",
      R"({"op":"create_session","dataset":"d1","session":"alice",)"
      R"("epsilon":2.0,"id":"e3"})"));

  const JsonValue response = router.Call(
      "e4",
      R"({"op":"explain","session":"alice","epsilon":0.3,"trace":true,)"
      R"("id":"e4"})");
  ExpectOk(response);

  // One trace id covers the whole timeline, and the request completed, so
  // the timeline is not partial.
  ASSERT_TRUE(response.Has("trace_id")) << response.Dump();
  const std::string tid = response.at("trace_id").AsString();
  EXPECT_EQ(tid.rfind('t', 0), 0u) << tid;
  EXPECT_FALSE(response.Has("trace_partial")) << response.Dump();

  // Golden structure: router-side spans in submission order, with the
  // worker's own pipeline nested verbatim under worker_roundtrip.
  ASSERT_TRUE(response.Has("trace")) << response.Dump();
  const JsonValue& root = response.at("trace");
  EXPECT_EQ(root.at("name").AsString(), "router_request");
  EXPECT_GE(root.at("wall_micros").AsNumber(), 1.0);
  const JsonValue& spans = root.at("children");
  ASSERT_EQ(spans.size(), 5u) << root.Dump();
  EXPECT_EQ(spans.at(0).at("name").AsString(), "parse");
  EXPECT_EQ(spans.at(1).at("name").AsString(), "shard_pick");
  EXPECT_EQ(spans.at(2).at("name").AsString(), "relay_splice");
  EXPECT_EQ(spans.at(3).at("name").AsString(), "worker_roundtrip");
  EXPECT_EQ(spans.at(4).at("name").AsString(), "write_back");

  // Router spans start where the previous one ended (offsets are relative
  // to the router_request root and never go backwards).
  double cursor = 0.0;
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans.at(i).at("start_micros").AsNumber(), cursor)
        << spans.at(i).Dump();
    cursor = spans.at(i).at("start_micros").AsNumber();
  }

  // Inside the roundtrip: queue wait (router clock) + the worker's own
  // span tree (worker clock — offsets restart at 0 there).
  const JsonValue& roundtrip = spans.at(3);
  const JsonValue* queue_wait = FindChild(roundtrip, "worker_queue_wait");
  ASSERT_NE(queue_wait, nullptr) << roundtrip.Dump();
  EXPECT_GE(queue_wait->at("wall_micros").AsNumber(), 1.0);
  const JsonValue* worker_root = FindChild(roundtrip, "request");
  ASSERT_NE(worker_root, nullptr) << roundtrip.Dump();
  EXPECT_EQ(worker_root->at("start_micros").AsNumber(), 0.0);
  EXPECT_NE(FindChild(*worker_root, "parse"), nullptr) << worker_root->Dump();

  // The completed timeline is retrievable from the router's trace ring
  // under the same id.
  const JsonValue ring = router.Call(
      "e5", R"({"op":"trace","limit":1,"id":"e5"})");
  ExpectOk(ring);
  ASSERT_EQ(ring.at("traces").size(), 1u) << ring.Dump();
  const JsonValue& entry = ring.at("traces").at(0);
  EXPECT_EQ(entry.at("tid").AsString(), tid);
  EXPECT_EQ(entry.at("op").AsString(), "explain");
  EXPECT_EQ(entry.at("trace").at("name").AsString(), "router_request");
}

TEST(RouterE2eTest, WorkerDeathMidRequestYieldsPartialTimeline) {
  const std::string state = FreshStateDir("partial");
  RouterProcess router(RouterArgs(state, "2", "0"));

  ExpectOk(router.Call(
      "w1",
      R"({"op":"load_dataset","name":"d1","source":"synthetic",)"
      R"("generator":"diabetes","rows":300,"cap_epsilon":5.0,"id":"w1"})"));

  // Freeze both shards so the traced request is parked in a worker queue,
  // then SIGKILL them: the router must fail the request promptly (no hang)
  // with a router-side-only timeline marked partial.
  const std::vector<pid_t> pids = ShardPids(router, "w2");
  ASSERT_EQ(pids.size(), 2u);
  for (const pid_t pid : pids) ASSERT_EQ(::kill(pid, SIGSTOP), 0);
  router.Send(R"({"op":"schema","dataset":"d1","trace":true,"id":"w3"})");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (const pid_t pid : pids) ASSERT_EQ(::kill(pid, SIGKILL), 0);

  const JsonValue failed = router.WaitFor("w3");
  ASSERT_TRUE(failed.Has("ok")) << failed.Dump();
  EXPECT_FALSE(failed.at("ok").AsBool()) << failed.Dump();
  ASSERT_TRUE(failed.Has("trace_partial")) << failed.Dump();
  EXPECT_TRUE(failed.at("trace_partial").AsBool());
  ASSERT_TRUE(failed.Has("trace")) << failed.Dump();
  const JsonValue& root = failed.at("trace");
  EXPECT_EQ(root.at("name").AsString(), "router_request");
  // Router-side spans survive; there is no worker subtree to stitch.
  const JsonValue* roundtrip = FindChild(root, "worker_roundtrip");
  ASSERT_NE(roundtrip, nullptr) << root.Dump();
  EXPECT_EQ(FindChild(*roundtrip, "request"), nullptr) << roundtrip->Dump();

  // The partial timeline still lands in the ring, flagged as partial.
  const JsonValue ring = router.Call(
      "w4", R"({"op":"trace","limit":1,"id":"w4"})");
  ExpectOk(ring);
  ASSERT_EQ(ring.at("traces").size(), 1u) << ring.Dump();
  EXPECT_TRUE(ring.at("traces").at(0).at("partial").AsBool());

  // Respawn heals the fleet: wait for fresh shard pids, then a new traced
  // request completes with a full (non-partial) timeline.
  std::vector<pid_t> fresh;
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    fresh = ShardPids(router, "w5" + std::to_string(attempt));
    if (fresh.size() == 2) {
      bool all_new = true;
      for (const pid_t pid : fresh) {
        for (const pid_t old : pids) all_new = all_new && pid != old;
      }
      if (all_new) break;
    }
  }
  ASSERT_EQ(fresh.size(), 2u) << "shards never respawned";
  const JsonValue again = router.Call(
      "w6",
      R"({"op":"load_dataset","name":"d2","source":"synthetic",)"
      R"("generator":"diabetes","rows":100,"cap_epsilon":5.0,)"
      R"("trace":true,"id":"w6"})");
  ExpectOk(again);
  EXPECT_FALSE(again.Has("trace_partial")) << again.Dump();
  EXPECT_NE(FindChild(again.at("trace"), "worker_roundtrip"), nullptr);
}

TEST(RouterE2eTest, MetricsBroadcastReturnsFleetRollup) {
  const std::string state = FreshStateDir("fleet");
  RouterProcess router(RouterArgs(state, "2", "0"));

  // A ping touches every worker, so each shard's registry has op="ping"
  // series by the time the metrics broadcast fans out (--sync workers
  // serve their stream in order).
  ExpectOk(router.Call("f1", R"({"op":"ping","id":"f1"})"));

  const JsonValue response = router.Call("f2", R"({"op":"metrics","id":"f2"})");
  ExpectOk(response);

  // Back-compat: the per-worker concatenation is still there.
  ASSERT_TRUE(response.Has("workers")) << response.Dump();
  EXPECT_TRUE(response.at("workers").Has("shard-0"));

  // The rollup merges every worker's registry into one namespace, each
  // series tagged with its worker label, alongside the router's own series.
  ASSERT_TRUE(response.Has("fleet")) << response.Dump();
  const JsonValue& fleet = response.at("fleet");
  const JsonValue& histograms = fleet.at("histograms");
  EXPECT_TRUE(histograms.Has(
      R"(dpclustx_op_latency_micros{op="ping",worker="shard-0"})"))
      << fleet.Dump();
  EXPECT_TRUE(histograms.Has(
      R"(dpclustx_op_latency_micros{op="ping",worker="shard-1"})"))
      << fleet.Dump();
  const JsonValue& gauges = fleet.at("gauges");
  EXPECT_TRUE(gauges.Has(R"(dpclustx_router_worker_alive{worker="shard-0"})"))
      << fleet.Dump();
  const JsonValue& counters = fleet.at("counters");
  EXPECT_TRUE(counters.Has("dpclustx_router_tc_spliced_total"))
      << fleet.Dump();
}

}  // namespace
}  // namespace dpclustx::service
