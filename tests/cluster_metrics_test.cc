#include "eval/cluster_metrics.h"

#include <gtest/gtest.h>

#include "cluster/dp_kmeans.h"
#include "cluster/kmeans.h"
#include "test_util.h"

namespace dpclustx::eval {
namespace {

TEST(ClusterMetricsTest, ValidateInput) {
  EXPECT_FALSE(Purity({}, {}).ok());
  EXPECT_FALSE(Purity({0, 1}, {0}).ok());
  EXPECT_FALSE(NormalizedMutualInformation({0}, {}).ok());
  EXPECT_FALSE(AdjustedRandIndex({}, {0}).ok());
}

TEST(ClusterMetricsTest, IdenticalPartitionsScorePerfect) {
  const std::vector<uint32_t> labels = {0, 0, 1, 1, 2, 2, 2};
  EXPECT_DOUBLE_EQ(Purity(labels, labels).value(), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(labels, labels).value(), 1.0,
              1e-9);
  EXPECT_NEAR(AdjustedRandIndex(labels, labels).value(), 1.0, 1e-9);
}

TEST(ClusterMetricsTest, RelabeledPartitionsStillPerfect) {
  const std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<uint32_t> b = {5, 5, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(Purity(a, b).value(), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(), 1.0, 1e-9);
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 1.0, 1e-9);
}

TEST(ClusterMetricsTest, IndependentPartitionsScoreLow) {
  // Interleaved labels: knowing one tells nothing about the other.
  std::vector<uint32_t> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(static_cast<uint32_t>(i % 2));
    b.push_back(static_cast<uint32_t>((i / 2) % 2));
  }
  EXPECT_NEAR(NormalizedMutualInformation(a, b).value(), 0.0, 0.01);
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 0.0, 0.01);
}

TEST(ClusterMetricsTest, SingleClusterAgainstStructureScoresZeroNmi) {
  const std::vector<uint32_t> flat(100, 0);
  std::vector<uint32_t> structured;
  for (int i = 0; i < 100; ++i) {
    structured.push_back(static_cast<uint32_t>(i % 4));
  }
  EXPECT_DOUBLE_EQ(
      NormalizedMutualInformation(flat, structured).value(), 0.0);
  // Purity is trivially the largest class share.
  EXPECT_DOUBLE_EQ(Purity(flat, structured).value(), 0.25);
}

TEST(ClusterMetricsTest, KnownHandComputedCase) {
  // clusters: {a,a,b,b}; reference: {x,x,x,y}.
  const std::vector<uint32_t> clusters = {0, 0, 1, 1};
  const std::vector<uint32_t> reference = {0, 0, 0, 1};
  // Purity: cluster 0 → 2 correct; cluster 1 → max(1,1)=1 → 3/4.
  EXPECT_DOUBLE_EQ(Purity(clusters, reference).value(), 0.75);
  // ARI by hand: sum_joint = C(2,2)+C(1,2)+C(1,2) = 1; rows: 2·C(2,2)=2;
  // cols: C(3,2)+C(1,2)=3; total pairs C(4,2)=6; expected = 2·3/6 = 1;
  // max = 2.5 → ARI = (1−1)/(2.5−1) = 0.
  EXPECT_NEAR(AdjustedRandIndex(clusters, reference).value(), 0.0, 1e-9);
}

TEST(ClusterMetricsTest, KMeansRecoversPlantedBlocksByNmi) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(500, 5, 9, 3);
  std::vector<uint32_t> truth(1000);
  for (size_t i = 500; i < 1000; ++i) truth[i] = 1;
  KMeansOptions options;
  options.num_clusters = 2;
  options.seed = 4;
  const auto clustering = FitKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> typed = (*clustering)->AssignAll(dataset);
  const std::vector<uint32_t> labels(typed.begin(), typed.end());
  EXPECT_GT(NormalizedMutualInformation(labels, truth).value(), 0.9);
  EXPECT_GT(AdjustedRandIndex(labels, truth).value(), 0.9);
}

TEST(ClusterMetricsTest, DpKMeansDegradesButRetainsSignalAtModerateEps) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(2000, 5, 9, 5);
  std::vector<uint32_t> truth(4000);
  for (size_t i = 2000; i < 4000; ++i) truth[i] = 1;
  DpKMeansOptions options;
  options.num_clusters = 2;
  options.epsilon = 1.0;  // the paper's clustering budget
  options.seed = 6;
  const auto clustering = FitDpKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> typed = (*clustering)->AssignAll(dataset);
  const std::vector<uint32_t> labels(typed.begin(), typed.end());
  const double nmi = NormalizedMutualInformation(labels, truth).value();
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

}  // namespace
}  // namespace dpclustx::eval
