// Observability layer: metrics registry (sharded counters/gauges/latency
// histograms, Prometheus + JSON exposition), span tracing, the privacy-
// budget audit log, and build provenance. The concurrency tests are written
// to be meaningful under TSan (scripts/check.sh runs this binary in the
// DPCLUSTX_SANITIZE=thread configuration); the exposition tests are goldens
// — field names and formats are a stable surface.

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "dp/privacy_budget.h"
#include "gtest/gtest.h"
#include "obs/audit_log.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpclustx::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics instruments

TEST(MetricsTest, CounterCountsAcrossShards) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("dpx_test_total", "help");
  EXPECT_EQ(counter->Value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.RegisterGauge("dpx_test_gauge", "help");
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
}

TEST(MetricsTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("dpx_requests_total", "help",
                                        {{"op", "explain"}});
  Counter* b = registry.RegisterCounter("dpx_requests_total", "help",
                                        {{"op", "explain"}});
  Counter* other = registry.RegisterCounter("dpx_requests_total", "help",
                                            {{"op", "ping"}});
  EXPECT_EQ(a, b) << "same (name, labels) must reuse the instrument";
  EXPECT_NE(a, other) << "different labels are a different instrument";
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(MetricsTest, HandlesStayStableAsRegistryGrows) {
  // Instruments live in deques: registering many more must not invalidate
  // earlier handles.
  MetricsRegistry registry;
  Counter* first = registry.RegisterCounter("dpx_first_total", "help");
  first->Increment();
  for (int i = 0; i < 200; ++i) {
    registry.RegisterCounter("dpx_filler_total", "help",
                             {{"i", std::to_string(i)}});
  }
  first->Increment();
  EXPECT_EQ(first->Value(), 2u);
}

TEST(MetricsTest, LatencyHistogramBucketsCountSumMax) {
  MetricsRegistry registry;
  LatencyHistogram* hist =
      registry.RegisterLatencyHistogram("dpx_latency_micros", "help");
  hist->Observe(10);       // <= 50 bucket
  hist->Observe(50);       // boundary: still the 50 bucket
  hist->Observe(51);       // 100 bucket
  hist->Observe(9000000);  // beyond the last bound: +Inf bucket
  EXPECT_EQ(hist->count(), 4u);
  EXPECT_EQ(hist->sum_micros(), 10u + 50u + 51u + 9000000u);
  EXPECT_EQ(hist->max_micros(), 9000000u);
  const auto buckets = hist->BucketCounts();
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[LatencyHistogram::kNumBuckets - 1], 1u);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  // 8 writer threads (one per shard slot) hammering the same counter and
  // histogram must lose no updates; this is the TSan target for the sharded
  // hot path.
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("dpx_concurrent_total", "help");
  LatencyHistogram* hist =
      registry.RegisterLatencyHistogram("dpx_concurrent_micros", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(100);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->sum_micros(),
            static_cast<uint64_t>(kThreads) * kPerThread * 100u);
  EXPECT_EQ(hist->max_micros(), 100u);
}

TEST(MetricsTest, ConcurrentReadsDuringWritesAreClean) {
  // Exposition while writers are active: values race benignly (relaxed
  // atomics) but must be data-race-free and parseable.
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("dpx_rw_total", "help");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) counter->Increment();
    });
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(registry.PrometheusText().find("dpx_rw_total"),
              std::string::npos);
    (void)registry.ToJson();
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(counter->Value(), 20000u);
}

// ---------------------------------------------------------------------------
// Exposition goldens

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  Counter* requests = registry.RegisterCounter(
      "dpx_requests_total", "Requests by op", {{"op", "explain"}});
  requests->Increment(3);
  registry.RegisterCounter("dpx_requests_total", "Requests by op",
                           {{"op", "ping"}});
  Gauge* depth = registry.RegisterGauge("dpx_queue_depth", "Queued requests");
  depth->Set(5);
  LatencyHistogram* hist =
      registry.RegisterLatencyHistogram("dpx_latency_micros", "Latency");
  hist->Observe(40);
  hist->Observe(200);

  const std::string text = registry.PrometheusText();
  const std::string expected =
      "# HELP dpx_latency_micros Latency\n"
      "# TYPE dpx_latency_micros histogram\n"
      "dpx_latency_micros_bucket{le=\"50\"} 1\n"
      "dpx_latency_micros_bucket{le=\"100\"} 1\n"
      "dpx_latency_micros_bucket{le=\"250\"} 2\n"
      "dpx_latency_micros_bucket{le=\"500\"} 2\n"
      "dpx_latency_micros_bucket{le=\"1000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"2500\"} 2\n"
      "dpx_latency_micros_bucket{le=\"5000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"10000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"25000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"50000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"100000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"250000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"1000000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"4000000\"} 2\n"
      "dpx_latency_micros_bucket{le=\"+Inf\"} 2\n"
      "dpx_latency_micros_sum 240\n"
      "dpx_latency_micros_count 2\n"
      "# HELP dpx_queue_depth Queued requests\n"
      "# TYPE dpx_queue_depth gauge\n"
      "dpx_queue_depth 5\n"
      "# HELP dpx_requests_total Requests by op\n"
      "# TYPE dpx_requests_total counter\n"
      "dpx_requests_total{op=\"explain\"} 3\n"
      "dpx_requests_total{op=\"ping\"} 0\n"
      "# HELP dpx_latency_micros_max_micros Largest single observation of "
      "dpx_latency_micros\n"
      "# TYPE dpx_latency_micros_max_micros gauge\n"
      "dpx_latency_micros_max_micros 200\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsTest, CallbackGaugeClampsNonFiniteValues) {
  MetricsRegistry registry;
  registry.AddCallbackGauge("dpx_notfinite_a", "help", {}, [] {
    return std::numeric_limits<double>::quiet_NaN();
  });
  registry.AddCallbackGauge("dpx_notfinite_b", "help", {}, [] {
    return std::numeric_limits<double>::infinity();
  });
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("dpx_notfinite_a 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("dpx_notfinite_b 0\n"), std::string::npos) << text;
  // The JSON side must survive the service gate: Dump never emits NaN/Inf.
  const std::string json = registry.ToJson().Dump();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(MetricsTest, RemovedCallbackDisappearsFromExposition) {
  MetricsRegistry registry;
  const uint64_t id =
      registry.AddCallbackGauge("dpx_temp_gauge", "help", {}, [] {
        return 1.0;
      });
  EXPECT_NE(registry.PrometheusText().find("dpx_temp_gauge"),
            std::string::npos);
  registry.RemoveCallback(id);
  EXPECT_EQ(registry.PrometheusText().find("dpx_temp_gauge"),
            std::string::npos);
}

TEST(MetricsTest, ToJsonSchema) {
  MetricsRegistry registry;
  registry.RegisterCounter("dpx_c_total", "help")->Increment(2);
  registry.RegisterGauge("dpx_g", "help")->Set(-7);
  registry.RegisterLatencyHistogram("dpx_h_micros", "help")->Observe(60);
  const JsonValue json = registry.ToJson();
  EXPECT_EQ(json.at("counters").at("dpx_c_total").AsNumber(), 2.0);
  EXPECT_EQ(json.at("gauges").at("dpx_g").AsNumber(), -7.0);
  const JsonValue& hist = json.at("histograms").at("dpx_h_micros");
  EXPECT_EQ(hist.at("count").AsNumber(), 1.0);
  EXPECT_EQ(hist.at("sum_micros").AsNumber(), 60.0);
  EXPECT_EQ(hist.at("max_micros").AsNumber(), 60.0);
  EXPECT_EQ(hist.at("bounds_micros").size(),
            LatencyHistogram::kBucketBoundsMicros.size());
  EXPECT_EQ(hist.at("buckets").size(), LatencyHistogram::kNumBuckets);
}

// ---------------------------------------------------------------------------
// Span tracing

const TraceSpan* FindSpan(const TraceSpan& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const auto& child : root.children) {
    if (const TraceSpan* found = FindSpan(*child, name)) return found;
  }
  return nullptr;
}

TEST(TraceTest, SpansAreNoOpsWithoutActivation) {
  EXPECT_FALSE(TracingActive());
  { DPX_SPAN("orphan"); }
  EXPECT_FALSE(TracingActive());
}

TEST(TraceTest, RecordsNestedSpanTree) {
  Trace trace("request");
  {
    ScopedTraceActivation activate(&trace);
    ASSERT_TRUE(TracingActive());
    {
      DPX_SPAN("outer");
      { DPX_SPAN("inner"); }
    }
    { DPX_SPAN("sibling"); }
  }
  EXPECT_FALSE(TracingActive());
  trace.Finish();

  const TraceSpan& root = trace.root();
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_STREQ(root.children[0]->name, "outer");
  EXPECT_STREQ(root.children[1]->name, "sibling");
  ASSERT_EQ(root.children[0]->children.size(), 1u);
  EXPECT_STREQ(root.children[0]->children[0]->name, "inner");
  // Closed spans report >= 1 µs wall time ("ran" is distinguishable from
  // "skipped"), and the root covers its children.
  EXPECT_GE(root.children[0]->wall_micros, 1u);
  EXPECT_GE(root.children[0]->children[0]->wall_micros, 1u);
  EXPECT_GE(root.wall_micros, root.children[0]->wall_micros);
}

TEST(TraceTest, NullActivationLeavesTracingOff) {
  ScopedTraceActivation activate(nullptr);
  EXPECT_FALSE(TracingActive());
  { DPX_SPAN("untraced"); }
}

TEST(TraceTest, OtherThreadsDoNotRecordIntoAnActiveTrace) {
  Trace trace("request");
  ScopedTraceActivation activate(&trace);
  std::thread other([] {
    EXPECT_FALSE(TracingActive());
    { DPX_SPAN("pool_work"); }
  });
  other.join();
  { DPX_SPAN("local_work"); }
  trace.Finish();
  EXPECT_EQ(FindSpan(trace.root(), "pool_work"), nullptr);
  EXPECT_NE(FindSpan(trace.root(), "local_work"), nullptr);
}

TEST(TraceTest, ToJsonGoldenFieldNames) {
  Trace trace("request");
  {
    ScopedTraceActivation activate(&trace);
    { DPX_SPAN("stage"); }
  }
  AddPrerecordedSpan(trace, "parse", 12);
  JsonValue json = trace.ToJson();
  EXPECT_EQ(json.at("name").AsString(), "request");
  ASSERT_TRUE(json.Has("start_micros"));
  ASSERT_TRUE(json.Has("wall_micros"));
  ASSERT_TRUE(json.Has("cpu_micros"));
  ASSERT_EQ(json.at("children").size(), 2u);
  EXPECT_EQ(json.at("children").at(0).at("name").AsString(), "stage");
  EXPECT_EQ(json.at("children").at(1).at("name").AsString(), "parse");
  EXPECT_EQ(json.at("children").at(1).at("wall_micros").AsNumber(), 12.0);
  // Integers only — the serialized tree passes the service JSON gate.
  const std::string dump = json.Dump();
  EXPECT_EQ(dump.find("nan"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("inf"), std::string::npos) << dump;
}

TEST(TraceTest, RenderTraceTextShowsTimingsAndNesting) {
  Trace trace("request");
  {
    ScopedTraceActivation activate(&trace);
    { DPX_SPAN("stage"); }
  }
  trace.Finish();
  const std::string text = RenderTraceText(trace.root());
  EXPECT_NE(text.find("request"), std::string::npos) << text;
  EXPECT_NE(text.find("stage"), std::string::npos) << text;
  EXPECT_NE(text.find("wall="), std::string::npos) << text;
  EXPECT_NE(text.find("cpu="), std::string::npos) << text;
}

TEST(TraceTest, PipelineTraceCoversAllStages) {
  // Acceptance: one traced pipeline run yields spans for clustering fit,
  // StatsCache build, Stage-1, and Stage-2, all with non-zero wall time.
  const StatusOr<Dataset> dataset = synth::Generate(synth::DiabetesLike(400));
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  PipelineOptions options;
  options.num_clusters = 3;
  options.explain.num_candidates = 2;

  Trace trace("pipeline");
  {
    ScopedTraceActivation activate(&trace);
    const StatusOr<PipelineResult> result = RunPipeline(*dataset, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  trace.Finish();

  for (const char* stage :
       {"clustering_fit", "assign_all", "stats_cache_build",
        "stage1_candidates", "stage2_select", "stage2_histograms"}) {
    const TraceSpan* span = FindSpan(trace.root(), stage);
    ASSERT_NE(span, nullptr) << "missing span '" << stage << "' in\n"
                             << RenderTraceText(trace.root());
    EXPECT_GE(span->wall_micros, 1u) << stage;
  }
}

// ---------------------------------------------------------------------------
// Audit log

TEST(AuditLogTest, SequenceNumbersAreMonotonicFromOne) {
  AuditLog log;
  EXPECT_EQ(log.next_seq(), 1u);
  EXPECT_EQ(log.Record("t1", "d", "explain", 0.5, true), 1u);
  EXPECT_EQ(log.Record("t1", "d", "explain", 0.5, false, "session budget"),
            2u);
  EXPECT_EQ(log.next_seq(), 3u);
}

TEST(AuditLogTest, TotalsSeparateChargesFromDenials) {
  AuditLog log;
  log.Record("t1", "d", "explain", 0.25, true);
  log.Record("t1", "d", "explain", 0.25, true);
  log.Record("t1", "d", "hist", 1.0, false, "session budget");
  log.Record("t2", "d", "explain", 0.5, true);

  const AuditLog::Totals t1 = log.TenantTotals("t1");
  EXPECT_DOUBLE_EQ(t1.epsilon_charged, 0.5);
  EXPECT_DOUBLE_EQ(t1.epsilon_denied, 1.0);
  EXPECT_EQ(t1.charges, 2u);
  EXPECT_EQ(t1.denials, 1u);

  const AuditLog::Totals global = log.GlobalTotals();
  EXPECT_DOUBLE_EQ(global.epsilon_charged, 1.0);
  EXPECT_EQ(global.charges, 3u);
  EXPECT_EQ(global.denials, 1u);

  const AuditLog::Totals unknown = log.TenantTotals("nobody");
  EXPECT_EQ(unknown.charges, 0u);
  EXPECT_DOUBLE_EQ(unknown.epsilon_charged, 0.0);
}

TEST(AuditLogTest, BoundedBufferDropsOldestButKeepsTotals) {
  AuditLog log(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Record("t", "d", "explain", 1.0, true);
  }
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<AuditRecord> tail = log.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().seq, 3u);  // oldest retained
  EXPECT_EQ(tail.back().seq, 5u);
  EXPECT_DOUBLE_EQ(log.GlobalTotals().epsilon_charged, 5.0);
  EXPECT_EQ(log.Tail(/*limit=*/1).size(), 1u);
}

TEST(AuditLogTest, ToJsonGoldenFieldNames) {
  AuditLog log;
  log.Record("t1", "d", "explain", 0.5, true);
  log.Record("t1", "d", "explain", 2.0, false, "session budget");
  const JsonValue json = log.ToJson();
  EXPECT_EQ(json.at("next_seq").AsNumber(), 3.0);
  EXPECT_EQ(json.at("dropped").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(json.at("global").at("epsilon_charged").AsNumber(), 0.5);
  EXPECT_DOUBLE_EQ(json.at("totals").at("t1").at("epsilon_denied").AsNumber(),
                   2.0);
  ASSERT_EQ(json.at("records").size(), 2u);
  const JsonValue& denied = json.at("records").at(1);
  EXPECT_EQ(denied.at("seq").AsNumber(), 2.0);
  EXPECT_EQ(denied.at("tenant").AsString(), "t1");
  EXPECT_EQ(denied.at("dataset").AsString(), "d");
  EXPECT_EQ(denied.at("label").AsString(), "explain");
  EXPECT_FALSE(denied.at("granted").AsBool());
  EXPECT_EQ(denied.at("reason").AsString(), "session budget");
}

TEST(AuditLogTest, ConcurrentRecordsAssignUniqueSequenceNumbers) {
  AuditLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(tenant, "d", "explain", 0.001, true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.next_seq(),
            static_cast<uint64_t>(kThreads) * kPerThread + 1);
  EXPECT_EQ(log.GlobalTotals().charges,
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(log.TenantTotals("t" + std::to_string(t)).charges,
              static_cast<uint64_t>(kPerThread));
  }
}

// ---------------------------------------------------------------------------
// Build provenance

TEST(BuildInfoTest, FieldsArePopulated) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
}

TEST(BuildInfoTest, JsonCarriesRuntimeParallelism) {
  const JsonValue json = BuildInfoJson();
  EXPECT_TRUE(json.Has("git_sha"));
  EXPECT_TRUE(json.Has("compiler"));
  EXPECT_TRUE(json.Has("flags"));
  EXPECT_TRUE(json.Has("build_type"));
  EXPECT_TRUE(json.Has("dpclustx_threads_env"));
  EXPECT_GE(json.at("compute_pool_width").AsNumber(), 1.0);
}

TEST(BuildInfoTest, VersionLineNamesTheBinaryAndSha) {
  const std::string line = BuildInfoVersionLine();
  EXPECT_EQ(line.rfind("dpclustx ", 0), 0u) << line;
  EXPECT_NE(line.find(GetBuildInfo().git_sha), std::string::npos) << line;
}

}  // namespace
}  // namespace dpclustx::obs
