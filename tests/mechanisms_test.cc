#include "dp/mechanisms.h"

#include <cmath>
#include <limits>
#include <map>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

constexpr size_t kSamples = 200000;

TEST(LaplaceMechanismTest, UnbiasedWithCorrectScale) {
  Rng rng(1);
  double sum = 0.0, sq = 0.0;
  const double sensitivity = 2.0, epsilon = 0.5;
  for (size_t i = 0; i < kSamples; ++i) {
    const double x = LaplaceMechanism(10.0, sensitivity, epsilon, rng).value();
    sum += x;
    sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / kSamples, 10.0, 0.15);
  // Var = 2(Δ/ε)² = 2·16 = 32.
  EXPECT_NEAR(sq / kSamples, 32.0, 2.0);
}

TEST(GeometricMechanismTest, UnbiasedIntegerNoise) {
  Rng rng(2);
  double sum = 0.0;
  for (size_t i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(GeometricMechanism(100, 1.0, 1.0, rng).value());
  }
  EXPECT_NEAR(sum / kSamples, 100.0, 0.05);
}

// Empirical ε-DP check: for the geometric mechanism on neighboring counts
// n and n+1, every output's probability ratio must be bounded by e^ε. We
// verify the empirical ratios stay below e^ε·(1 + statistical slack).
TEST(GeometricMechanismTest, EmpiricalPrivacyRatioBounded) {
  const double epsilon = 0.8;
  Rng rng(3);
  std::map<int64_t, double> p_n, p_n1;
  for (size_t i = 0; i < kSamples; ++i) {
    p_n[GeometricMechanism(5, 1.0, epsilon, rng).value()] += 1.0;
    p_n1[GeometricMechanism(6, 1.0, epsilon, rng).value()] += 1.0;
  }
  const double bound = std::exp(epsilon);
  for (const auto& [value, count] : p_n) {
    if (count < 1000.0) continue;  // skip tails with high relative error
    const auto it = p_n1.find(value);
    ASSERT_NE(it, p_n1.end());
    const double ratio = count / it->second;
    EXPECT_LT(ratio, bound * 1.1) << "output " << value;
    EXPECT_GT(ratio, 1.0 / (bound * 1.1)) << "output " << value;
  }
}

// Hostile parameters must refuse (not abort, not sample): NaN passes every
// ordinary comparison, so the mechanisms check finiteness explicitly.
TEST(MechanismParameterTest, NonFiniteOrNonPositiveParamsRefuse) {
  Rng rng(7);
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(LaplaceMechanism(1.0, 1.0, nan, rng).ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, nan, 1.0, rng).ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, 1.0, inf, rng).ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, 1.0, 0.0, rng).ok());
  EXPECT_FALSE(LaplaceMechanism(1.0, -1.0, 1.0, rng).ok());
  EXPECT_FALSE(GeometricMechanism(1, 1.0, nan, rng).ok());
  EXPECT_FALSE(GeometricMechanism(1, inf, 1.0, rng).ok());
  EXPECT_FALSE(GeometricMechanism(1, 1.0, -0.5, rng).ok());
  EXPECT_EQ(LaplaceMechanism(1.0, 1.0, nan, rng).status().code(),
            StatusCode::kInvalidArgument);
}

// A refused call must not consume randomness: the noise stream a valid
// caller sees is unaffected by interleaved hostile calls.
TEST(MechanismParameterTest, RefusalDrawsNoNoise) {
  Rng clean(11);
  Rng probed(11);
  const double before = LaplaceMechanism(0.0, 1.0, 1.0, clean).value();
  ASSERT_FALSE(LaplaceMechanism(0.0, 1.0, std::nan(""), probed).ok());
  ASSERT_FALSE(GeometricMechanism(0, -1.0, 1.0, probed).ok());
  EXPECT_EQ(LaplaceMechanism(0.0, 1.0, 1.0, probed).value(), before);
}

TEST(LaplaceNoiseQuantileTest, MatchesClosedForm) {
  // P(|Lap(b)| <= t) = 1 − e^{−t/b}; at b = 1 and confidence 1 − e^{−3},
  // t must be 3.
  const double confidence = 1.0 - std::exp(-3.0);
  EXPECT_NEAR(LaplaceNoiseQuantile(1.0, 1.0, confidence), 3.0, 1e-9);
}

TEST(LaplaceNoiseQuantileTest, EmpiricalCoverage) {
  Rng rng(4);
  const double sensitivity = 1.0, epsilon = 0.5, confidence = 0.9;
  const double t = LaplaceNoiseQuantile(sensitivity, epsilon, confidence);
  size_t within = 0;
  for (size_t i = 0; i < kSamples; ++i) {
    if (std::fabs(LaplaceMechanism(0.0, sensitivity, epsilon, rng).value()) <=
        t) {
      ++within;
    }
  }
  EXPECT_NEAR(static_cast<double>(within) / kSamples, confidence, 0.005);
}

TEST(EpsilonForLaplaceErrorTest, InvertsTheQuantile) {
  const double sensitivity = 1.0, max_error = 5.0, confidence = 0.95;
  const double epsilon =
      EpsilonForLaplaceError(sensitivity, max_error, confidence);
  EXPECT_NEAR(LaplaceNoiseQuantile(sensitivity, epsilon, confidence),
              max_error, 1e-9);
}

TEST(EpsilonForLaplaceErrorTest, TighterErrorNeedsMoreBudget) {
  const double loose = EpsilonForLaplaceError(1.0, 10.0, 0.95);
  const double tight = EpsilonForLaplaceError(1.0, 1.0, 0.95);
  EXPECT_GT(tight, loose);
}

}  // namespace
}  // namespace dpclustx
