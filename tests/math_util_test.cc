#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(LogSumExpTest, MatchesDirectComputationForSmallValues) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const double direct =
      std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(xs), direct, 1e-12);
}

TEST(LogSumExpTest, StableForHugeValues) {
  const std::vector<double> xs = {1e4, 1e4 + 1.0};
  // Direct exp() would overflow; the stable form gives 1e4 + log(1 + e).
  EXPECT_NEAR(LogSumExp(xs), 1e4 + std::log(1.0 + std::exp(1.0)), 1e-8);
}

TEST(LogSumExpTest, SingleElement) {
  EXPECT_DOUBLE_EQ(LogSumExp({-3.5}), -3.5);
}

TEST(SafeDivideTest, NormalAndFallback) {
  EXPECT_DOUBLE_EQ(SafeDivide(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(SafeDivide(6.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeDivide(6.0, 0.0, -1.0), -1.0);
}

TEST(MeanStdDevTest, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  // Sample stddev with n−1 denominator.
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanStdDevTest, SingleValueHasZeroStdDev) {
  EXPECT_DOUBLE_EQ(StdDev({42.0}), 0.0);
}

TEST(PairCountTest, SmallValues) {
  EXPECT_DOUBLE_EQ(PairCount(0), 0.0);
  EXPECT_DOUBLE_EQ(PairCount(1), 0.0);
  EXPECT_DOUBLE_EQ(PairCount(2), 1.0);
  EXPECT_DOUBLE_EQ(PairCount(5), 10.0);
}

TEST(ClampTest, Bounds) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace dpclustx
