// DPXCOL on-disk format: round trips, append commit paths, and the
// refusal matrix (corruption, truncation, newer versions) — mirroring
// snapshot_test's coverage of the other durable format.

#include "data/columnar_format.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/schema.h"

namespace dpclustx {
namespace {

class ColumnarFormatTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/dpclustx_dpxcol_" + name;
  }

  /// A small dataset whose domains exercise both the 8-bit and 16-bit
  /// column widths under the adaptive policy.
  Dataset MakeDataset(size_t rows) {
    std::vector<std::string> small = {"a", "b", "c"};
    std::vector<std::string> wide;
    for (size_t v = 0; v < 300; ++v) wide.push_back("v" + std::to_string(v));
    Dataset dataset(Schema({Attribute("small", small),
                            Attribute("wide", std::move(wide))}));
    for (size_t r = 0; r < rows; ++r) {
      dataset.AppendRowUnchecked({static_cast<ValueCode>(r % 3),
                                  static_cast<ValueCode>((r * 7) % 300)});
    }
    return dataset;
  }

  std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  void ExpectSameRows(const Dataset& a, const Dataset& b) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_attributes(), b.num_attributes());
    for (size_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.Row(r), b.Row(r)) << "row " << r;
    }
  }
};

TEST_F(ColumnarFormatTest, RoundTripPreservesRowsSchemaAndWidths) {
  const Dataset original = MakeDataset(100);
  const std::string path = TempPath("roundtrip.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(original, path).ok());

  const auto mapped = MappedColumnar::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ((*mapped)->num_rows(), 100u);
  EXPECT_EQ((*mapped)->capacity_rows(), 100u);
  EXPECT_NE((*mapped)->file_uid(), 0u);
  EXPECT_EQ((*mapped)->column_width(0), ColumnWidth::k8);
  EXPECT_EQ((*mapped)->column_width(1), ColumnWidth::k16);
  EXPECT_TRUE((*mapped)->VerifyData().ok());

  const auto dataset = Dataset::FromMapped(*mapped);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_TRUE(dataset->is_mapped());
  EXPECT_EQ(dataset->schema().attribute(1).label(7), "v7");
  ExpectSameRows(original, *dataset);
}

TEST_F(ColumnarFormatTest, FromMappedClampsToAPrefix) {
  const std::string path = TempPath("prefix.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(10), path).ok());
  const auto mapped = MappedColumnar::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  const auto prefix = Dataset::FromMapped(*mapped, 4);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  EXPECT_EQ(prefix->num_rows(), 4u);

  EXPECT_EQ(Dataset::FromMapped(*mapped, 11).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ColumnarFormatTest, MappedDatasetRefusesAppendRow) {
  const std::string path = TempPath("immutable.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(5), path).ok());
  const auto mapped = MappedColumnar::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto dataset = Dataset::FromMapped(*mapped);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->AppendRow({0, 0}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ColumnarFormatTest, OpenRefusesMissingFile) {
  EXPECT_EQ(MappedColumnar::Open(TempPath("absent.dpxcol")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ColumnarFormatTest, OpenRefusesBadMagic) {
  const std::string path = TempPath("magic.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(5), path).ok());
  std::string bytes = ReadBytes(path);
  bytes[0] = 'X';
  WriteBytes(path, bytes);
  const auto opened = MappedColumnar::Open(path);
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
}

TEST_F(ColumnarFormatTest, OpenRefusesNewerFormatVersion) {
  const std::string path = TempPath("future.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(5), path).ok());
  std::string bytes = ReadBytes(path);
  // The version u32 sits right after the 8-byte magic (little-endian).
  bytes[8] = static_cast<char>(kColumnarFormatVersion + 1);
  WriteBytes(path, bytes);
  EXPECT_EQ(MappedColumnar::Open(path).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ColumnarFormatTest, OpenRefusesHeaderCorruption) {
  const std::string path = TempPath("header.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(5), path).ok());
  std::string bytes = ReadBytes(path);
  // First header payload byte (after magic + version + hlen + hcrc).
  bytes[24] = static_cast<char>(bytes[24] ^ 0x40);
  WriteBytes(path, bytes);
  const auto opened = MappedColumnar::Open(path);
  EXPECT_EQ(opened.status().code(), StatusCode::kIoError);
  EXPECT_NE(opened.status().message().find("CRC"), std::string::npos);
}

TEST_F(ColumnarFormatTest, OpenRefusesTruncation) {
  const std::string path = TempPath("truncated.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(100), path).ok());
  const std::string bytes = ReadBytes(path);
  // Cutting the last column block off makes its recorded extent run past
  // the end of the file — structural check, no data scan needed.
  WriteBytes(path, bytes.substr(0, bytes.size() - 64));
  EXPECT_EQ(MappedColumnar::Open(path).status().code(), StatusCode::kIoError);
  // A file shorter than the fixed prefix is refused too.
  WriteBytes(path, bytes.substr(0, 10));
  EXPECT_EQ(MappedColumnar::Open(path).status().code(), StatusCode::kIoError);
}

TEST_F(ColumnarFormatTest, VerifyDataCatchesColumnCorruption) {
  const std::string path = TempPath("bitrot.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(100), path).ok());
  std::string bytes = ReadBytes(path);
  // Flip a committed cell in the last column block (the final bytes of the
  // file are alignment padding; 64 bytes back is inside the committed 200
  // bytes of the 16-bit column). The header stays intact, so the default
  // trust-the-file open still succeeds...
  const size_t victim = bytes.size() - 64;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x01);
  WriteBytes(path, bytes);
  const auto opened = MappedColumnar::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  // ...but the O(data) pass catches it, both standalone and at open time.
  EXPECT_EQ((*opened)->VerifyData().code(), StatusCode::kIoError);
  ColumnarOpenOptions verify;
  verify.verify_data = true;
  EXPECT_EQ(MappedColumnar::Open(path, verify).status().code(),
            StatusCode::kIoError);
}

TEST_F(ColumnarFormatTest, AppendWithinCapacityCommitsInPlace) {
  const std::string path = TempPath("append.dpxcol");
  ColumnarWriteOptions options;
  options.capacity_rows = 64;
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(10), path, options).ok());
  const auto base = MappedColumnar::Open(path);
  ASSERT_TRUE(base.ok()) << base.status();

  const auto appended = AppendRowsToColumnar(*base, {{2, 299}, {0, 123}});
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_EQ((*appended)->num_rows(), 12u);
  EXPECT_EQ((*appended)->capacity_rows(), 64u);
  EXPECT_EQ((*appended)->file_uid(), (*base)->file_uid());
  // The base handle is an immutable snapshot at the old row count.
  EXPECT_EQ((*base)->num_rows(), 10u);

  // A cold reopen sees the committed tail and passes the full data scan.
  ColumnarOpenOptions verify;
  verify.verify_data = true;
  const auto reopened = MappedColumnar::Open(path, verify);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_rows(), 12u);
  const auto dataset = Dataset::FromMapped(*reopened);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->Row(10), (std::vector<ValueCode>{2, 299}));
  EXPECT_EQ(dataset->Row(11), (std::vector<ValueCode>{0, 123}));
}

TEST_F(ColumnarFormatTest, AppendBeyondCapacityGrowsPreservingUid) {
  const std::string path = TempPath("grow.dpxcol");
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(10), path).ok());  // capacity 10
  const auto base = MappedColumnar::Open(path);
  ASSERT_TRUE(base.ok()) << base.status();
  const uint64_t uid = (*base)->file_uid();

  std::vector<std::vector<ValueCode>> tail;
  for (size_t i = 0; i < 5; ++i) {
    tail.push_back({static_cast<ValueCode>(i % 3),
                    static_cast<ValueCode>(i)});
  }
  const auto grown = AppendRowsToColumnar(*base, tail);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_EQ((*grown)->num_rows(), 15u);
  EXPECT_GE((*grown)->capacity_rows(), 20u);  // doubled, not just 15
  EXPECT_EQ((*grown)->file_uid(), uid);
  // The old handle still reads its inode (renamed away, not truncated).
  EXPECT_EQ((*base)->num_rows(), 10u);
  EXPECT_TRUE((*base)->VerifyData().ok());
  EXPECT_TRUE((*grown)->VerifyData().ok());
}

TEST_F(ColumnarFormatTest, AppendValidatesRows) {
  const std::string path = TempPath("validate.dpxcol");
  ColumnarWriteOptions options;
  options.capacity_rows = 32;
  ASSERT_TRUE(WriteColumnarFile(MakeDataset(5), path, options).ok());
  const auto base = MappedColumnar::Open(path);
  ASSERT_TRUE(base.ok()) << base.status();

  // Wrong arity and out-of-domain codes are refused before any byte is
  // written; the file is untouched.
  EXPECT_EQ(AppendRowsToColumnar(*base, {{0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AppendRowsToColumnar(*base, {{0, 300}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(AppendRowsToColumnar(*base, {{3, 0}}).status().code(),
            StatusCode::kInvalidArgument);
  const auto reopened = MappedColumnar::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_rows(), 5u);

  // Empty append is a no-op returning the same snapshot.
  const auto same = AppendRowsToColumnar(*base, {});
  ASSERT_TRUE(same.ok());
  EXPECT_EQ((*same)->num_rows(), 5u);
}

}  // namespace
}  // namespace dpclustx
