#include "cluster/dp_kmeans.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpclustx {
namespace {

TEST(DpKMeansTest, ValidatesOptions) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(50, 3, 9, 1);
  DpKMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(FitDpKMeans(dataset, options).ok());
  options = DpKMeansOptions{};
  options.epsilon = 0.0;
  EXPECT_FALSE(FitDpKMeans(dataset, options).ok());
  options = DpKMeansOptions{};
  options.iterations = 0;
  EXPECT_FALSE(FitDpKMeans(dataset, options).ok());
}

TEST(DpKMeansTest, ChargesBudget) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 3, 9, 2);
  PrivacyBudget budget(2.0);
  DpKMeansOptions options;
  options.epsilon = 1.0;
  ASSERT_TRUE(FitDpKMeans(dataset, options, &budget).ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 1.0);
}

TEST(DpKMeansTest, FailsWhenBudgetInsufficient) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(200, 3, 9, 3);
  PrivacyBudget budget(0.5);
  DpKMeansOptions options;
  options.epsilon = 1.0;
  EXPECT_EQ(FitDpKMeans(dataset, options, &budget).status().code(),
            StatusCode::kOutOfBudget);
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.0);
}

TEST(DpKMeansTest, HighBudgetRecoversSeparatedBlocks) {
  // With a very generous budget DPLloyd behaves like Lloyd and should find
  // the planted two-block structure on a large dataset.
  const Dataset dataset = testutil::MakeTwoBlockDataset(3000, 4, 9, 4);
  DpKMeansOptions options;
  options.num_clusters = 2;
  options.epsilon = 100.0;
  options.seed = 5;
  const auto clustering = FitDpKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  EXPECT_GT(testutil::TwoBlockPurity(labels), 0.95);
}

TEST(DpKMeansTest, PaperBudgetStillRuns) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(2000, 4, 9, 6);
  DpKMeansOptions options;
  options.num_clusters = 5;
  options.epsilon = 1.0;  // the paper's ε_clust
  const auto clustering = FitDpKMeans(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->num_clusters(), 5u);
  // Labels must be valid even if the noisy clustering is poor.
  for (ClusterId label : (*clustering)->AssignAll(dataset)) {
    EXPECT_LT(label, 5u);
  }
}

TEST(DpKMeansTest, DeterministicGivenSeed) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(500, 3, 9, 7);
  DpKMeansOptions options;
  options.seed = 11;
  const auto a = FitDpKMeans(dataset, options);
  const auto b = FitDpKMeans(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST(DpKMeansTest, DifferentSeedsGiveDifferentNoise) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(500, 3, 9, 8);
  DpKMeansOptions options;
  options.epsilon = 0.5;
  options.seed = 1;
  const auto a = FitDpKMeans(dataset, options);
  options.seed = 2;
  const auto b = FitDpKMeans(dataset, options);
  EXPECT_NE((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

}  // namespace
}  // namespace dpclustx
