// Crash-proofing tests for the explanation service: fault injection (forced
// NaNs, simulated allocation failure, slow ops), per-request deadlines,
// hostile inputs, oversized payloads, and overload shedding. The common
// assertion everywhere: the request gets a structured error response and the
// engine keeps serving other tenants.

#include "service/service_engine.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dpclustx::service {
namespace {

JsonValue Parse(const std::string& text) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << text;
  return std::move(*parsed);
}

JsonValue Call(ServiceEngine& engine, const std::string& request) {
  return Parse(engine.Handle(request));
}

void ExpectOk(const JsonValue& response) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_TRUE(response.at("ok").AsBool()) << response.Dump();
}

void ExpectError(const JsonValue& response, const std::string& code) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  ASSERT_FALSE(response.at("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.at("error").at("code").AsString(), code)
      << response.Dump();
}

/// True when the fault point belongs to a request from `session`.
bool FromSession(const FaultPoint& fault, const std::string& session) {
  if (!fault.request->Has("session")) return false;
  const StatusOr<std::string> id = fault.request->GetString("session");
  return id.ok() && *id == session;
}

/// Loads a small synthetic dataset, clusters it, and opens a session.
void SetUpSession(ServiceEngine& engine, const std::string& session,
                  double epsilon = 2.0) {
  if (!engine.registry().Get("d").ok()) {
    ExpectOk(Call(engine,
                  R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                  R"("generator":"diabetes","rows":1500,"seed":7})"));
    ExpectOk(Call(engine,
                  R"({"op":"cluster","dataset":"d","method":"k-means",)"
                  R"("k":3,"seed":3})"));
  }
  ExpectOk(Call(engine, R"({"op":"create_session","session":")" + session +
                            R"(","dataset":"d","epsilon":)" +
                            std::to_string(epsilon) + "}"));
}

double SpentEpsilon(ServiceEngine& engine, const std::string& session) {
  const JsonValue budget = Call(
      engine, R"({"op":"budget","session":")" + session + R"("})");
  EXPECT_TRUE(budget.at("ok").AsBool()) << budget.Dump();
  return budget.at("spent").AsNumber();
}

// A fault that forces a NaN into the explain response body must come back as
// a structured Internal error — never a crash, never a NaN on the wire —
// while a concurrent well-formed tenant is served normally.
TEST(ServiceRobustnessTest, InjectedNanYieldsInternalErrorAndServerSurvives) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:finish" && FromSession(fault, "victim")) {
      fault.body->Set("epsilon_remaining", JsonValue::Number(std::nan("")));
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "victim");
  SetUpSession(engine, "bystander");

  const JsonValue poisoned = Call(
      engine, R"({"op":"explain","session":"victim","epsilon":0.3,"seed":1})");
  ExpectError(poisoned, "Internal");
  // The response body was suppressed wholesale: no partial release leaks.
  EXPECT_FALSE(poisoned.Has("explanation")) << poisoned.Dump();

  const JsonValue clean = Call(
      engine,
      R"({"op":"explain","session":"bystander","epsilon":0.4,"seed":2})");
  ExpectOk(clean);
  ExpectOk(Call(engine, R"({"op":"ping"})"));
}

// An injected failure before the handler runs (simulating an allocation
// failure at admission) is propagated verbatim and charges nothing.
TEST(ServiceRobustnessTest, InjectedAllocationFailureChargesNothing) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:start") {
      return Status::ResourceExhausted("simulated allocation failure");
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "alice");
  ExpectError(
      Call(engine,
           R"({"op":"explain","session":"alice","epsilon":0.3,"seed":1})"),
      "ResourceExhausted");
  EXPECT_EQ(SpentEpsilon(engine, "alice"), 0.0);
  ExpectOk(Call(engine, R"({"op":"ping"})"));
}

// A hook that stalls between the ε charge and the compute (a slow op) trips
// the post-spend deadline checkpoint: the request fails DeadlineExceeded and
// the charge is NOT refunded — the ledger may overstate, never understate,
// released ε.
TEST(ServiceRobustnessTest, SlowComputeHitsDeadlineWithoutRefund) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:compute") {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "alice");
  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":0.3,"seed":1,"deadline_ms":20})"),
              "DeadlineExceeded");
  EXPECT_NEAR(SpentEpsilon(engine, "alice"), 0.3, 1e-9);

  // The failure is visible in the per-op counters.
  const JsonValue stats = Call(engine, R"({"op":"stats"})");
  const JsonValue& explain_ops = stats.at("ops").at("explain");
  EXPECT_GE(explain_ops.at("deadline_exceeded").AsNumber(), 1.0);
  EXPECT_GE(explain_ops.at("errors").AsNumber(), 1.0);
}

// A request whose deadline expired before the handler ran (stalled at the
// ":start" hook, standing in for queue wait) is dropped for free: the
// expiry check precedes the ε charge.
TEST(ServiceRobustnessTest, ExpiredBeforeSpendChargesNothing) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:start") {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "alice");
  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":0.3,"seed":1,"deadline_ms":20})"),
              "DeadlineExceeded");
  EXPECT_EQ(SpentEpsilon(engine, "alice"), 0.0);
}

// The engine-wide default deadline applies when a request carries none; a
// request can override it either way (longer, or 0 = none).
TEST(ServiceRobustnessTest, DefaultDeadlineAppliesAndIsOverridable) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.default_deadline_ms = 20;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:compute") {
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "alice");
  ExpectError(
      Call(engine,
           R"({"op":"explain","session":"alice","epsilon":0.3,"seed":1})"),
      "DeadlineExceeded");
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice",)"
                        R"("epsilon":0.3,"seed":1,"deadline_ms":60000})"));
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice",)"
                        R"("epsilon":0.4,"seed":1,"deadline_ms":0})"));
}

// Hostile request parameters: every one must produce a structured error
// response (correct code, server alive), never an abort.
TEST(ServiceRobustnessTest, HostileInputsGetStructuredErrors) {
  ServiceEngine engine;
  SetUpSession(engine, "alice", /*epsilon=*/1.0);

  // Non-finite epsilon cannot even be expressed in JSON — the parser
  // rejects the literal, so it dies at the protocol boundary.
  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":NaN})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"create_session","session":"b",)"
                           R"("dataset":"d","epsilon":Infinity})"),
              "InvalidArgument");
  // Zero/negative epsilon.
  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":0})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"hist","session":"alice",)"
                           R"("attribute":"diab_0","epsilon":-1})"),
              "InvalidArgument");
  // k = 0 and an empty dataset.
  ExpectError(Call(engine, R"({"op":"cluster","dataset":"d",)"
                           R"("method":"k-means","k":0})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"load_dataset","name":"empty",)"
                           R"("source":"synthetic","generator":"diabetes",)"
                           R"("rows":0})"),
              "InvalidArgument");
  // Out-of-range cluster and unknown attribute.
  ExpectError(Call(engine, R"({"op":"size","session":"alice",)"
                           R"("cluster":99,"epsilon":0.01})"),
              "InvalidArgument");
  const JsonValue bad_attr =
      Call(engine, R"({"op":"hist","session":"alice",)"
                   R"("attribute":"no_such_attr","epsilon":0.01})");
  ASSERT_FALSE(bad_attr.at("ok").AsBool()) << bad_attr.Dump();
  // Malformed deadline_ms values.
  ExpectError(Call(engine, R"({"op":"ping","deadline_ms":-5})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"ping","deadline_ms":"soon"})"),
              "InvalidArgument");

  // None of the refusals charged the session.
  EXPECT_EQ(SpentEpsilon(engine, "alice"), 0.0);
  ExpectOk(Call(engine, R"({"op":"ping"})"));
}

// Oversized payloads are rejected before the parser touches them.
TEST(ServiceRobustnessTest, OversizedPayloadRejectedBeforeParse) {
  ServiceEngineOptions options;
  options.max_request_bytes = 256;
  ServiceEngine engine(options);
  std::string big = R"({"op":"ping","padding":")";
  big.append(1024, 'x');
  big += R"("})";
  const JsonValue response = Call(engine, big);
  ExpectError(response, "InvalidArgument");
  EXPECT_NE(response.at("error").at("message").AsString().find(
                "max_request_bytes"),
            std::string::npos);
  ExpectOk(Call(engine, R"({"op":"ping"})"));
}

// When the bounded queue is full, HandleAsync sheds: the rejection response
// carries a retry_after_ms hint and the shed counter moves.
TEST(ServiceRobustnessTest, ShedRequestsCarryRetryAfterHint) {
  ServiceEngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 75;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  options.fault_injector = [&](const FaultPoint& fault) {
    if (fault.point == "ping:start") {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    return Status::OK();
  };
  ServiceEngine engine(options);

  std::atomic<int> completed{0};
  const auto done = [&](std::string) { completed.fetch_add(1); };
  // First occupies the worker (blocked on the gate), second fills the
  // queue; the engine may briefly leave the queue slot occupied while the
  // worker dequeues, so submit until one sheds.
  ASSERT_TRUE(engine.HandleAsync(R"({"op":"ping","id":"a"})", done).ok());
  Status shed = Status::OK();
  int accepted = 1;
  while (shed.ok()) {
    shed = engine.HandleAsync(R"({"op":"ping","id":"b"})", done);
    if (shed.ok()) ++accepted;
    ASSERT_LE(accepted, 3) << "queue bound never enforced";
  }
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  const JsonValue rejection = Parse(ServiceEngine::RejectionResponse(
      R"({"op":"ping","id":"c"})", shed, options.retry_after_ms));
  ExpectError(rejection, "ResourceExhausted");
  EXPECT_EQ(rejection.at("error").at("retry_after_ms").AsNumber(), 75.0);
  EXPECT_EQ(rejection.at("id").AsString(), "c");

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.Shutdown();  // drains the accepted requests
  EXPECT_EQ(completed.load(), accepted);
  // Handle() does not use the pool, so stats stay reachable after Shutdown.
  const JsonValue stats = Call(engine, R"({"op":"stats"})");
  EXPECT_GE(stats.at("shed").AsNumber(), 1.0);
  EXPECT_EQ(stats.at("retry_after_ms").AsNumber(), 75.0);
}

// Per-op counters accumulate across a mixed workload.
TEST(ServiceRobustnessTest, OpStatsTracksLatencyAndErrors) {
  ServiceEngine engine;
  ExpectOk(Call(engine, R"({"op":"ping"})"));
  ExpectOk(Call(engine, R"({"op":"ping"})"));
  ExpectError(Call(engine, R"({"op":"budget","session":"ghost"})"),
              "NotFound");
  // Unknown op names must not grow the metrics map (hostile clients can
  // invent unboundedly many).
  ExpectError(Call(engine, R"({"op":"zzz_not_an_op"})"), "NotFound");

  const JsonValue stats = Call(engine, R"({"op":"stats"})");
  const JsonValue& ops = stats.at("ops");
  EXPECT_EQ(ops.at("ping").at("count").AsNumber(), 2.0);
  EXPECT_EQ(ops.at("ping").at("errors").AsNumber(), 0.0);
  EXPECT_EQ(ops.at("budget").at("count").AsNumber(), 1.0);
  EXPECT_EQ(ops.at("budget").at("errors").AsNumber(), 1.0);
  EXPECT_FALSE(ops.Has("zzz_not_an_op"));
  EXPECT_GE(ops.at("ping").at("max_micros").AsNumber(), 0.0);
}

// The acceptance scenario: while one tenant's requests are being forced to
// fail (injected NaNs), concurrent well-formed requests from other tenants
// all complete successfully.
TEST(ServiceRobustnessTest, FaultyTenantDoesNotDisturbConcurrentTenants) {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  options.num_threads = 4;
  options.fault_injector = [](const FaultPoint& fault) {
    if (fault.point == "explain:finish" && FromSession(fault, "victim")) {
      fault.body->Set("epsilon_remaining", JsonValue::Number(std::nan("")));
    }
    return Status::OK();
  };
  ServiceEngine engine(options);
  SetUpSession(engine, "victim", /*epsilon=*/50.0);
  constexpr int kTenants = 3;
  constexpr int kRequests = 4;
  for (int t = 0; t < kTenants; ++t) {
    SetUpSession(engine, "tenant" + std::to_string(t), /*epsilon=*/50.0);
  }

  std::atomic<int> tenant_ok{0};
  std::atomic<int> victim_internal{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kRequests; ++i) {
      const JsonValue response = Call(
          engine, R"({"op":"explain","session":"victim","epsilon":0.3,)"
                      R"("seed":)" +
                      std::to_string(i + 1) + "}");
      if (!response.at("ok").AsBool() &&
          response.at("error").at("code").AsString() == "Internal") {
        victim_internal.fetch_add(1);
      }
    }
  });
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequests; ++i) {
        const JsonValue response = Call(
            engine, R"({"op":"explain","session":"tenant)" +
                        std::to_string(t) + R"(","epsilon":0.3,"seed":)" +
                        std::to_string(i + 1) + "}");
        if (response.at("ok").AsBool()) tenant_ok.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(victim_internal.load(), kRequests);
  EXPECT_EQ(tenant_ok.load(), kTenants * kRequests);
  ExpectOk(Call(engine, R"({"op":"ping"})"));
}

}  // namespace
}  // namespace dpclustx::service
