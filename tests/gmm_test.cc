#include "cluster/gmm.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpclustx {
namespace {

TEST(GmmTest, ValidatesOptions) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(10, 3, 9, 1);
  GmmOptions options;
  options.num_components = 0;
  EXPECT_FALSE(FitGmm(dataset, options).ok());
  options.num_components = 1000;
  EXPECT_FALSE(FitGmm(dataset, options).ok());
}

TEST(GmmTest, RecoversTwoSeparatedBlocks) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(600, 5, 9, 2);
  GmmOptions options;
  options.num_components = 2;
  options.seed = 3;
  const auto clustering = FitGmm(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  EXPECT_GT(testutil::TwoBlockPurity(labels), 0.95);
}

TEST(GmmTest, DeterministicGivenSeed) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(300, 4, 9, 4);
  GmmOptions options;
  options.num_components = 3;
  options.seed = 5;
  const auto a = FitGmm(dataset, options);
  const auto b = FitGmm(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST(GmmTest, AssignAllMatchesAssign) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(100, 3, 9, 6);
  GmmOptions options;
  options.num_components = 2;
  const auto clustering = FitGmm(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> bulk = (*clustering)->AssignAll(dataset);
  for (size_t row = 0; row < dataset.num_rows(); row += 7) {
    EXPECT_EQ(bulk[row], (*clustering)->Assign(dataset.Row(row)));
  }
}

TEST(GmmClusteringTest, RejectsNonPositiveVariance) {
  const Schema schema({Attribute::WithAnonymousDomain("a", 3)});
  EXPECT_DEATH(GmmClustering(schema, {0.0}, {{0.5}}, {{0.0}}), "var");
}

TEST(GmmTest, NameDescribesConfiguration) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(50, 2, 5, 7);
  GmmOptions options;
  options.num_components = 2;
  const auto clustering = FitGmm(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->name(), "gmm(k=2)");
}

}  // namespace
}  // namespace dpclustx
