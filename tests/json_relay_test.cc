// Tests for the zero-reparse relay scanner (service/json_relay.h).
//
// The load-bearing property is byte-identity: for any line produced by
// JsonValue::Dump, splicing or erasing the top-level "id" must produce
// exactly the bytes the old parse → mutate → dump path produced. The
// golden section checks that over a corpus shaped like real engine
// responses (histograms, nested explanations, broadcast merges, error
// envelopes); the unit section pins the scanner's error vocabulary so the
// router's fallback logic (full-parse on anything but OK) stays correct.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/status.h"
#include "service/json_relay.h"

namespace dpclustx::service {
namespace {

using dpclustx::JsonValue;
using dpclustx::StatusCode;
using dpclustx::StatusOr;

TEST(ScanTopLevelId, FindsPlainId) {
  const std::string line = R"({"id":"r42","ok":true})";
  StatusOr<RelayScan> scan = ScanTopLevelId(line);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->id, "r42");
  EXPECT_EQ(line.substr(scan->value_begin, scan->value_end - scan->value_begin),
            "\"r42\"");
}

TEST(ScanTopLevelId, IgnoresNestedIdMembers) {
  // "id" inside nested objects/arrays must not be mistaken for the
  // top-level member; only the outermost one is relayed.
  const std::string line =
      R"({"a":{"id":"inner"},"b":[{"id":"x"}],"id":"outer","z":1})";
  StatusOr<RelayScan> scan = ScanTopLevelId(line);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->id, "outer");
}

TEST(ScanTopLevelId, IgnoresIdInsideStringValues) {
  // A value whose *text* looks like an id member must not confuse the
  // string-state tracking.
  const std::string line =
      R"({"id":"real","note":"looks like \"id\":\"fake\" inside"})";
  StatusOr<RelayScan> scan = ScanTopLevelId(line);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->id, "real");
}

TEST(ScanTopLevelId, NotFoundWhenNoId) {
  StatusOr<RelayScan> scan = ScanTopLevelId(R"({"ok":true,"pong":true})");
  EXPECT_EQ(scan.status().code(), StatusCode::kNotFound);
}

TEST(ScanTopLevelId, InvalidOnTornLine) {
  // A worker crash mid-write leaves a structurally open line; the scanner
  // must refuse rather than splice into garbage.
  EXPECT_EQ(ScanTopLevelId(R"({"id":"r1","ok":tr)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScanTopLevelId(R"({"id":"r1","nested":{"open":1)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScanTopLevelId(R"({"id":"r1","s":"unterminated)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScanTopLevelId, InvalidOnTrailingGarbage) {
  EXPECT_EQ(ScanTopLevelId(R"({"id":"r1"} trailing)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScanTopLevelId(R"({"id":"r1"}{"id":"r2"})").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScanTopLevelId, InvalidOnNonObject) {
  EXPECT_EQ(ScanTopLevelId(R"([1,2,3])").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScanTopLevelId("42").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScanTopLevelId("").status().code(), StatusCode::kInvalidArgument);
}

TEST(ScanTopLevelId, InvalidOnNonStringId) {
  // The router only ever stamps string ids on worker requests; a numeric
  // id means the line is not one of ours.
  EXPECT_EQ(ScanTopLevelId(R"({"id":42,"ok":true})").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScanTopLevelId, RefusesEscapedIdValue) {
  // Escapes inside the id value mean the raw bytes differ from the
  // decoded string; the caller must take the full-parse path.
  EXPECT_EQ(ScanTopLevelId(R"({"id":"a\"b","ok":true})").status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Golden byte-identity against the full-parse path.

/// The reference implementation the splice path replaced.
std::string FullParseSplice(const std::string& line,
                            const JsonValue& client_id) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok());
  parsed->Set("id", client_id);
  return parsed->Dump();
}

std::string FullParseErase(const std::string& line) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok());
  parsed->Remove("id");
  return parsed->Dump();
}

/// Response lines shaped like what ServiceEngine actually emits. Each is
/// canonicalized through Dump() first — the relay only ever sees worker
/// output, which is Dump() text by construction.
std::vector<std::string> ResponseCorpus() {
  std::vector<std::string> corpus;
  auto add = [&](const std::string& raw) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(raw);
    EXPECT_TRUE(parsed.ok()) << raw;
    corpus.push_back(parsed->Dump());
  };
  add(R"({"id":"r1","ok":true,"pong":true})");
  add(R"({"id":"r2","ok":false,)"
      R"("error":{"code":"OutOfBudget","message":"0.1 > 0.05"}})");
  // Histogram payload: long numeric arrays around the id.
  add(R"({"bins":[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15],)"
      R"("counts":[12.5,0.25,-3.125,7,19,0.0625,44,8],)"
      R"("epsilon_spent":0.30000001,"id":"r3","ok":true,)"
      R"("session":"tenant7"})");
  // Explanation payload: nested objects with string fields that contain
  // braces, quotes-adjacent text, and unicode escapes.
  add(R"({"clusters":[{"explanation":[{"attribute":"age","hi":64,"lo":18,)"
      R"("score":0.91}],"label":"c {0}"},{"explanation":[],"label":"c1"}],)"
      R"("id":"r4","note":"quality µ=0.5, \"quoted\"","ok":true})");
  // Broadcast-merge shape: per-worker nested response objects, each with
  // its own nested "id"-free body.
  add(R"({"id":"r5","ok":true,"workers":{"shard-0":{"ok":true,"pong":true},)"
      R"("shard-1":{"ok":true,"pong":true}}})");
  // id first, id last, id mid-object.
  add(R"({"id":"r6","z":1})");
  add(R"({"a":1,"id":"r7"})");
  add(R"({"a":1,"id":"r8","z":[{"deep":{"id":"decoy"}}]})");
  // Empty-ish payloads.
  add(R"({"id":"r9","ok":true,"rows":0,"schema":[]})");
  return corpus;
}

TEST(RelayGolden, SpliceMatchesFullParseByteForByte) {
  const std::vector<JsonValue> client_ids = {
      JsonValue::String("client-17"), JsonValue::String("x"),
      JsonValue::Number(42), JsonValue::Number(-1.5), JsonValue::Bool(true),
      JsonValue::Null()};
  for (const std::string& line : ResponseCorpus()) {
    StatusOr<RelayScan> scan = ScanTopLevelId(line);
    ASSERT_TRUE(scan.ok()) << line;
    for (const JsonValue& client_id : client_ids) {
      const std::string spliced = SpliceId(line, *scan, client_id.Dump());
      EXPECT_EQ(spliced, FullParseSplice(line, client_id))
          << "line: " << line << "\nclient id: " << client_id.Dump();
    }
  }
}

TEST(RelayGolden, EraseMatchesFullParseByteForByte) {
  for (const std::string& line : ResponseCorpus()) {
    StatusOr<RelayScan> scan = ScanTopLevelId(line);
    ASSERT_TRUE(scan.ok()) << line;
    EXPECT_EQ(EraseId(line, *scan), FullParseErase(line)) << "line: " << line;
  }
}

// ---------------------------------------------------------------------------
// Trace-context splice: same byte-identity contract, request-shaped corpus.

/// Request lines shaped like what clients (and the router's re-dump) send.
/// Canonicalized through Dump() — the router splices into its own Dump()
/// output, never into raw client bytes.
std::vector<std::string> RequestCorpus() {
  std::vector<std::string> corpus;
  auto add = [&](const std::string& raw) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(raw);
    EXPECT_TRUE(parsed.ok()) << raw;
    corpus.push_back(parsed->Dump());
  };
  add(R"({"op":"ping","id":"r1"})");
  add(R"({"op":"explain","session":"tenant7","epsilon":0.3,"id":"r2",)"
      R"("trace":true})");
  add(R"({"op":"load_dataset","name":"d","source":"synthetic",)"
      R"("generator":"diabetes","rows":1500,"seed":7,"id":"r3"})");
  add(R"({"op":"hist","session":"s","clustering":"default",)"
      R"("attribute":"diab_0","epsilon":0.25,"id":"r4"})");
  add(R"({"op":"append_rows","dataset":"d","rows":[[1,2,3],[4,5,6]],)"
      R"("id":"r5"})");
  add(R"({"id":"r6"})");  // single-member object
  add(R"({})");           // empty object
  return corpus;
}

TEST(TraceContextSplice, MatchesFullParseByteForByte) {
  const std::string tc = R"({"pid":"r17","tid":"t17"})";
  StatusOr<JsonValue> tc_parsed = JsonValue::Parse(tc);
  ASSERT_TRUE(tc_parsed.ok());
  ASSERT_EQ(tc_parsed->Dump(), tc) << "tc literal must be Dump-canonical";
  for (const std::string& line : RequestCorpus()) {
    StatusOr<std::string> spliced = SpliceTraceContext(line, tc);
    ASSERT_TRUE(spliced.ok()) << line << ": " << spliced.status().ToString();
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok());
    parsed->Set("_tc", *tc_parsed);
    EXPECT_EQ(*spliced, parsed->Dump()) << "line: " << line;
  }
}

TEST(TraceContextSplice, SplicedLineRescansAndReparses) {
  // The spliced request flows straight into the worker's parser, and the
  // worker's response relays back through ScanTopLevelId — both must keep
  // working on spliced bytes.
  for (const std::string& line : RequestCorpus()) {
    StatusOr<std::string> spliced =
        SpliceTraceContext(line, R"({"pid":"r1","tid":"t1"})");
    ASSERT_TRUE(spliced.ok());
    StatusOr<JsonValue> parsed = JsonValue::Parse(*spliced);
    ASSERT_TRUE(parsed.ok()) << *spliced;
    EXPECT_EQ(parsed->at("_tc").at("tid").AsString(), "t1");
    StatusOr<RelayScan> rescan = ScanTopLevelId(*spliced);
    if (line.find("\"id\"") != std::string::npos) {
      ASSERT_TRUE(rescan.ok()) << *spliced;
    } else {
      EXPECT_EQ(rescan.status().code(), StatusCode::kNotFound);
    }
  }
}

TEST(TraceContextSplice, RefusesExistingTraceContext) {
  // Double-splicing (a router relaying through a router) must fall back to
  // the full parser, never emit two _tc members.
  const std::string once = *SpliceTraceContext(R"({"op":"ping","id":"r1"})",
                                               R"({"pid":"r1","tid":"t1"})");
  EXPECT_EQ(SpliceTraceContext(once, R"({"pid":"r2","tid":"t2"})")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(TraceContextSplice, RefusesKeysSortingBeforeTc) {
  // A first key at or before "_tc" breaks Dump's canonical order, so the
  // splice refuses rather than produce non-canonical bytes.
  EXPECT_EQ(SpliceTraceContext(R"({"_a":1,"op":"ping"})", R"({"tid":"t"})")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(SpliceTraceContext(R"({"_t":1})", R"({"tid":"t"})")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // A first key *after* "_tc" is fine even when it starts with '_'.
  EXPECT_TRUE(SpliceTraceContext(R"({"_zz":1})", R"({"tid":"t"})").ok());
}

TEST(TraceContextSplice, InvalidOnTornOrNonObjectLines) {
  EXPECT_EQ(SpliceTraceContext(R"({"op":"ping")", R"({"tid":"t"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SpliceTraceContext(R"([1,2,3])", R"({"tid":"t"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SpliceTraceContext(R"({"op":"ping"} x)", R"({"tid":"t"})")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RelayGolden, SpliceThenRescanRoundTrips) {
  // The spliced output must itself be a valid relay input — the replica
  // retry path re-stamps an already-spliced line.
  for (const std::string& line : ResponseCorpus()) {
    StatusOr<RelayScan> scan = ScanTopLevelId(line);
    ASSERT_TRUE(scan.ok());
    const std::string spliced = SpliceId(line, *scan, "\"second-hop\"");
    StatusOr<RelayScan> rescan = ScanTopLevelId(spliced);
    ASSERT_TRUE(rescan.ok()) << spliced;
    EXPECT_EQ(rescan->id, "second-hop");
  }
}

}  // namespace
}  // namespace dpclustx::service
