#include "eval/harness.h"

#include <gtest/gtest.h>

namespace dpclustx::eval {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22.5"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(SummarizeTest, MeanAndStdDev) {
  const RunSummary summary = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(summary.mean, 2.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 1.0);
  EXPECT_EQ(summary.count, 3u);
}

TEST(SummarizeTest, EmptyInput) {
  const RunSummary summary = Summarize({});
  EXPECT_DOUBLE_EQ(summary.mean, 0.0);
  EXPECT_EQ(summary.count, 0u);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  const double t0 = timer.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(timer.ElapsedSeconds(), t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace dpclustx::eval
