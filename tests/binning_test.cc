#include "data/binning.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(BinnerTest, EqualWidthBasic) {
  const std::vector<double> values = {0.0, 10.0, 20.0, 30.0, 40.0};
  const auto binner = Binner::EqualWidth("x", values, 4);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->num_bins(), 4u);
  EXPECT_EQ(binner->CodeFor(0.0), 0u);
  EXPECT_EQ(binner->CodeFor(9.9), 0u);
  EXPECT_EQ(binner->CodeFor(10.0), 1u);
  EXPECT_EQ(binner->CodeFor(39.9), 3u);
  EXPECT_EQ(binner->CodeFor(40.0), 3u);  // right edge closed in last bin
}

TEST(BinnerTest, EqualWidthClampsOutOfRange) {
  const auto binner = Binner::EqualWidth("x", {0.0, 10.0}, 2);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->CodeFor(-100.0), 0u);
  EXPECT_EQ(binner->CodeFor(100.0), 1u);
}

TEST(BinnerTest, EqualWidthDegenerateColumn) {
  const auto binner = Binner::EqualWidth("x", {7.0, 7.0, 7.0}, 5);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->num_bins(), 1u);
  EXPECT_EQ(binner->CodeFor(7.0), 0u);
}

TEST(BinnerTest, EqualWidthRejectsBadInput) {
  EXPECT_FALSE(Binner::EqualWidth("x", {}, 3).ok());
  EXPECT_FALSE(Binner::EqualWidth("x", {1.0}, 0).ok());
}

TEST(BinnerTest, EqualFrequencyBalancesCounts) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  const auto binner = Binner::EqualFrequency("x", values, 4);
  ASSERT_TRUE(binner.ok());
  EXPECT_EQ(binner->num_bins(), 4u);
  std::vector<size_t> counts(4, 0);
  for (double v : values) ++counts[binner->CodeFor(v)];
  for (size_t count : counts) EXPECT_EQ(count, 25u);
}

TEST(BinnerTest, EqualFrequencyCollapsesDuplicateQuantiles) {
  // 90% of mass at one value: fewer bins than requested.
  std::vector<double> values(90, 5.0);
  for (int i = 0; i < 10; ++i) values.push_back(10.0 + i);
  const auto binner = Binner::EqualFrequency("x", values, 5);
  ASSERT_TRUE(binner.ok());
  EXPECT_LT(binner->num_bins(), 5u);
  EXPECT_GE(binner->num_bins(), 1u);
}

TEST(BinnerTest, FromEdgesValidation) {
  EXPECT_TRUE(Binner::FromEdges("x", {0.0, 1.0, 2.0}).ok());
  EXPECT_FALSE(Binner::FromEdges("x", {0.0}).ok());
  EXPECT_FALSE(Binner::FromEdges("x", {0.0, 0.0, 1.0}).ok());
  EXPECT_FALSE(Binner::FromEdges("x", {2.0, 1.0}).ok());
}

TEST(BinnerTest, ToAttributeLabelsMatchPaperStyle) {
  const auto binner = Binner::FromEdges("lab_proc", {40.0, 50.0, 60.0});
  ASSERT_TRUE(binner.ok());
  const Attribute attr = binner->ToAttribute();
  EXPECT_EQ(attr.name(), "lab_proc");
  ASSERT_EQ(attr.domain_size(), 2u);
  EXPECT_EQ(attr.label(0), "[40, 50)");
  EXPECT_EQ(attr.label(1), "[50, 60]");
}

TEST(BinnerTest, EncodeWholeColumn) {
  const auto binner = Binner::FromEdges("x", {0.0, 1.0, 2.0});
  ASSERT_TRUE(binner.ok());
  const std::vector<ValueCode> codes = binner->Encode({0.5, 1.5, -3.0, 9.0});
  EXPECT_EQ(codes, (std::vector<ValueCode>{0, 1, 0, 1}));
}

}  // namespace
}  // namespace dpclustx
