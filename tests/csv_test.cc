#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/dpclustx_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    out << content;
  }
};

TEST_F(CsvTest, ParseDocumentBasics) {
  const auto rows = csv_internal::ParseDocument("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"3", "4"}));
}

TEST_F(CsvTest, ParseDocumentQuotedFields) {
  const auto rows = csv_internal::ParseDocument(
      "name,notes\n\"Doe, Jane\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[1][0], "Doe, Jane");
  EXPECT_EQ((*rows)[1][1], "said \"hi\"");
}

TEST_F(CsvTest, ParseDocumentEmbeddedNewline) {
  const auto rows = csv_internal::ParseDocument("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "line1\nline2");
}

TEST_F(CsvTest, ParseDocumentCrlfAndMissingFinalNewline) {
  const auto rows = csv_internal::ParseDocument("a,b\r\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvTest, ParseDocumentUnterminatedQuoteFails) {
  EXPECT_FALSE(csv_internal::ParseDocument("a\n\"oops\n").ok());
}

TEST_F(CsvTest, ParseDocumentPreservesBareMidFieldCr) {
  // A CR that is not followed by LF and not at end of input is field data,
  // not a row terminator — WriteCsv quotes CR on output, so a bare one in
  // the input must survive the trip through the parser.
  const auto rows = csv_internal::ParseDocument("a,b\nx\ry,2\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"x\ry", "2"}));
}

TEST_F(CsvTest, ParseDocumentTornFinalCrlf) {
  // Input ending in a lone CR: treated as a row terminator (a CRLF whose LF
  // was cut off), not as trailing field data.
  const auto rows = csv_internal::ParseDocument("a,b\r\n1,2\r");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvTest, ParseDocumentStrayAfterClosedQuoteIsPositionedError) {
  const auto rows = csv_internal::ParseDocument("head\n\"a\"b\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  // The error names the 1-based row and column so users can find the typo
  // in a multi-gigabyte file.
  EXPECT_NE(rows.status().message().find("row 2"), std::string::npos)
      << rows.status().message();
  EXPECT_NE(rows.status().message().find("column"), std::string::npos)
      << rows.status().message();
}

TEST_F(CsvTest, ParseDocumentEmptyQuotedFields) {
  const auto rows = csv_internal::ParseDocument("a,b\n\"\",\"\"\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"", ""}));
}

TEST_F(CsvTest, ParseDocumentKeepsQuoteInsideUnquotedField) {
  const auto rows = csv_internal::ParseDocument("a\nab\"c\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ((*rows)[1][0], "ab\"c");
}

TEST_F(CsvTest, StreamParserSplitPointsDoNotChangeTheDialect) {
  // Feeding one byte at a time must parse identically to one big chunk —
  // the chunked reader may split mid-quote, mid-CRLF, or mid-escape.
  const std::string doc =
      "a,b\r\n\"x\r\ny\",\"q\"\"q\"\r\nplain,v\r";
  const auto whole = csv_internal::ParseDocument(doc);
  ASSERT_TRUE(whole.ok()) << whole.status();

  std::vector<std::vector<std::string>> streamed;
  csv_internal::StreamParser parser(
      [&streamed](std::vector<std::string>&& row) {
        streamed.push_back(std::move(row));
        return Status::OK();
      });
  for (char c : doc) ASSERT_TRUE(parser.Feed(&c, 1).ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(streamed, *whole);
}

TEST_F(CsvTest, ReadCsvMaxBytesGate) {
  const std::string path = TempPath("gate.csv");
  const std::string content = "a\nx\ny\n";
  WriteFile(path, content);
  CsvReadOptions tight;
  tight.max_bytes = content.size() - 1;
  EXPECT_EQ(ReadCsv(path, tight).status().code(), StatusCode::kIoError);
  CsvReadOptions exact;
  exact.max_bytes = content.size();
  EXPECT_TRUE(ReadCsv(path, exact).ok());
}

TEST_F(CsvTest, ReadCsvInfersSchema) {
  const std::string path = TempPath("infer.csv");
  WriteFile(path, "color,size\nred,small\nblue,large\nred,large\n");
  const auto dataset = ReadCsv(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_rows(), 3u);
  EXPECT_EQ(dataset->schema().attribute(0).name(), "color");
  EXPECT_EQ(dataset->schema().attribute(0).domain_size(), 2u);
  // First-appearance order: red=0, blue=1.
  EXPECT_EQ(dataset->at(0, 0), 0u);
  EXPECT_EQ(dataset->at(1, 0), 1u);
}

TEST_F(CsvTest, ReadCsvRejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1\n");
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST_F(CsvTest, ReadCsvMissingFile) {
  EXPECT_EQ(ReadCsv("/nonexistent/zzz.csv").status().code(),
            StatusCode::kIoError);
}

TEST_F(CsvTest, RoundTripPreservesData) {
  Schema schema({Attribute("x", {"a,1", "b\"2", "plain"}),
                 Attribute("y", {"low", "high"})});
  Dataset original(schema);
  original.AppendRowUnchecked({0, 1});
  original.AppendRowUnchecked({1, 0});
  original.AppendRowUnchecked({2, 1});
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());

  const auto loaded = ReadCsvWithSchema(path, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(loaded->Row(r), original.Row(r)) << "row " << r;
  }
}

TEST_F(CsvTest, ReadCsvWithSchemaEnforcesHeader) {
  const std::string path = TempPath("header.csv");
  WriteFile(path, "wrong,y\nlow,low\n");
  const Schema schema(
      {Attribute("x", {"low"}), Attribute("y", {"low"})});
  EXPECT_FALSE(ReadCsvWithSchema(path, schema).ok());
}

TEST_F(CsvTest, ReadCsvWithSchemaEnforcesDomain) {
  const std::string path = TempPath("domain.csv");
  WriteFile(path, "x\nunknown_value\n");
  const Schema schema({Attribute("x", {"known"})});
  EXPECT_EQ(ReadCsvWithSchema(path, schema).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dpclustx
