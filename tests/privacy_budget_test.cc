#include "dp/privacy_budget.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(PrivacyBudgetTest, SpendAccumulates) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Spend(0.3, "a").ok());
  EXPECT_TRUE(budget.Spend(0.4, "b").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.7);
  EXPECT_NEAR(budget.remaining_epsilon(), 0.3, 1e-12);
  EXPECT_EQ(budget.ledger().size(), 2u);
}

TEST(PrivacyBudgetTest, OverspendFailsWithoutCharging) {
  PrivacyBudget budget(0.5);
  EXPECT_TRUE(budget.Spend(0.4, "a").ok());
  const Status s = budget.Spend(0.2, "b");
  EXPECT_EQ(s.code(), StatusCode::kOutOfBudget);
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.4);  // unchanged
  EXPECT_EQ(budget.ledger().size(), 1u);
}

TEST(PrivacyBudgetTest, ExactSpendToleratesFloatingPoint) {
  PrivacyBudget budget(0.3);
  // 3 × 0.1 != 0.3 exactly in binary; the slack must absorb it.
  EXPECT_TRUE(budget.Spend(0.1, "a").ok());
  EXPECT_TRUE(budget.Spend(0.1, "b").ok());
  EXPECT_TRUE(budget.Spend(0.1, "c").ok());
}

TEST(PrivacyBudgetTest, RejectsNonPositiveEpsilon) {
  PrivacyBudget budget(1.0);
  EXPECT_EQ(budget.Spend(0.0, "zero").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.Spend(-0.1, "neg").code(), StatusCode::kInvalidArgument);
}

TEST(PrivacyBudgetTest, ParallelChargesMaximum) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.SpendParallel({0.2, 0.5, 0.1}, "hist").ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.5);
}

TEST(PrivacyBudgetTest, ParallelValidatesInput) {
  PrivacyBudget budget(1.0);
  EXPECT_FALSE(budget.SpendParallel({}, "x").ok());
  EXPECT_FALSE(budget.SpendParallel({0.1, 0.0}, "x").ok());
}

TEST(PrivacyBudgetTest, ReportListsEntries) {
  PrivacyBudget budget(1.0);
  ASSERT_TRUE(budget.Spend(0.25, "clustering").ok());
  const std::string report = budget.Report();
  EXPECT_NE(report.find("clustering"), std::string::npos);
  EXPECT_NE(report.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace dpclustx
