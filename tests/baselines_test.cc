#include "baselines/dp_naive.h"
#include "baselines/dp_tabee.h"
#include "baselines/tabee.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "core/candidate_selection.h"
#include "core/explainer.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace dpclustx::baselines {
namespace {

StatsCache MakeStats(uint64_t seed = 1, size_t rows = 6000) {
  synth::SyntheticConfig config;
  config.num_rows = rows;
  config.num_attributes = 12;
  config.num_latent_groups = 3;
  config.max_domain = 8;
  config.signal_strength = 0.9;
  config.informative_fraction = 0.5;
  config.seed = seed;
  Dataset dataset = std::move(*synth::Generate(config));
  KMeansOptions kmeans;
  kmeans.num_clusters = 3;
  kmeans.seed = seed;
  const auto clustering = FitKMeans(dataset, kmeans);
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  return std::move(*StatsCache::Build(dataset, labels, 3));
}

TEST(TabeeTest, ProducesValidExplanation) {
  const StatsCache stats = MakeStats();
  TabeeOptions options;
  const auto explanation = ExplainTabee(stats, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination.size(), 3u);
  EXPECT_EQ(explanation->per_cluster.size(), 3u);
  // Non-private output carries exact histograms.
  for (size_t c = 0; c < 3; ++c) {
    const auto& e = explanation->per_cluster[c];
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(
            e.inside, stats.cluster_histogram(e.cluster, e.attribute)),
        0.0);
  }
}

TEST(TabeeTest, DeterministicAndExact) {
  const StatsCache stats = MakeStats();
  TabeeOptions options;
  const auto a = ExplainTabee(stats, options);
  const auto b = ExplainTabee(stats, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->combination, b->combination);
}

TEST(TabeeTest, SelectionMaximizesSearchScoreOverCandidates) {
  const StatsCache stats = MakeStats();
  TabeeOptions options;
  options.num_candidates = 2;
  const auto explanation = ExplainTabee(stats, options);
  ASSERT_TRUE(explanation.ok());
  // Exhaustively check no candidate combination beats the selected one under
  // the search score (Int + Suf + pairwise diversity).
  const auto& sets = explanation->candidate_sets;
  auto search_score = [&](const AttributeCombination& ac) {
    return options.lambda.interestingness *
               eval::Interestingness(stats, ac) +
           options.lambda.sufficiency * eval::Sufficiency(stats, ac) +
           options.lambda.diversity *
               eval::SensitivePairwiseDiversity(stats, ac);
  };
  const double selected = search_score(explanation->combination);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      for (size_t k = 0; k < 2; ++k) {
        const AttributeCombination ac = {sets[0][i], sets[1][j], sets[2][k]};
        EXPECT_LE(search_score(ac), selected + 1e-9);
      }
    }
  }
}

TEST(DpTabeeTest, ProducesValidCombination) {
  const StatsCache stats = MakeStats();
  DpTabeeOptions options;
  options.seed = 3;
  const auto explanation = ExplainDpTabee(stats, options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->combination.size(), 3u);
  EXPECT_TRUE(explanation->per_cluster.empty());  // histograms off by default
  for (size_t c = 0; c < 3; ++c) {
    const auto& set = explanation->candidate_sets[c];
    EXPECT_NE(std::find(set.begin(), set.end(),
                        explanation->combination[c]),
              set.end());
  }
}

TEST(DpTabeeTest, HighBudgetMatchesTabee) {
  const StatsCache stats = MakeStats();
  DpTabeeOptions dp_options;
  dp_options.epsilon_cand_set = 1e7;
  dp_options.epsilon_top_comb = 1e7;
  dp_options.seed = 4;
  const auto dp = ExplainDpTabee(stats, dp_options);
  const auto exact = ExplainTabee(stats, TabeeOptions{});
  ASSERT_TRUE(dp.ok() && exact.ok());
  EXPECT_EQ(dp->combination, exact->combination);
}

TEST(DpTabeeTest, GeneratesHistogramsWhenAsked) {
  const StatsCache stats = MakeStats();
  DpTabeeOptions options;
  options.generate_histograms = true;
  const auto explanation = ExplainDpTabee(stats, options);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->per_cluster.size(), 3u);
}

TEST(DpNaiveTest, ProducesValidExplanation) {
  const StatsCache stats = MakeStats();
  DpNaiveOptions options;
  options.seed = 5;
  const auto explanation = ExplainDpNaive(stats, options);
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->combination.size(), 3u);
  EXPECT_EQ(explanation->per_cluster.size(), 3u);
  for (const auto& e : explanation->per_cluster) {
    EXPECT_EQ(e.inside.domain_size(),
              stats.schema().attribute(e.attribute).domain_size());
  }
}

TEST(DpNaiveTest, ValidatesEpsilon) {
  const StatsCache stats = MakeStats();
  DpNaiveOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(ExplainDpNaive(stats, options).ok());
}

TEST(DpNaiveTest, HugeBudgetApproachesTabee) {
  const StatsCache stats = MakeStats();
  DpNaiveOptions options;
  options.epsilon = 1e7;
  options.seed = 6;
  const auto naive = ExplainDpNaive(stats, options);
  const auto exact = ExplainTabee(stats, TabeeOptions{});
  ASSERT_TRUE(naive.ok() && exact.ok());
  EXPECT_EQ(naive->combination, exact->combination);
}

// The paper's headline ordering at moderate ε on well-separated data:
// DPClustX Quality ≈ TabEE Quality, and both beat DP-TabEE, whose noise
// swamps the [0,1]-ranged scores.
TEST(BaselineOrderingTest, DpClustXBeatsDpTabeeAtModerateEpsilon) {
  const StatsCache stats = MakeStats(7, 8000);
  GlobalWeights lambda;

  const auto tabee = ExplainTabee(stats, TabeeOptions{});
  ASSERT_TRUE(tabee.ok());
  const double tabee_quality =
      eval::SensitiveQuality(stats, tabee->combination, lambda);

  double dpx_quality = 0.0, dptabee_quality = 0.0;
  constexpr int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    // DPClustX at ε = 0.5 per stage (selection only). We drive the internal
    // search directly through candidate sets to stay deterministic per seed.
    DpTabeeOptions dptabee_options;
    dptabee_options.epsilon_cand_set = 0.5;
    dptabee_options.epsilon_top_comb = 0.5;
    dptabee_options.seed = 100 + static_cast<uint64_t>(run);
    const auto dptabee = ExplainDpTabee(stats, dptabee_options);
    ASSERT_TRUE(dptabee.ok());
    dptabee_quality +=
        eval::SensitiveQuality(stats, dptabee->combination, lambda);

    Rng rng(200 + static_cast<uint64_t>(run));
    dpclustx::CandidateSelectionOptions stage1;
    stage1.epsilon = 0.5;
    stage1.k = 3;
    stage1.gamma = lambda.ConditionalSingleClusterWeights();
    const auto sets = dpclustx::SelectCandidates(stats, stage1, rng);
    ASSERT_TRUE(sets.ok());
    const auto tables =
        core_internal::BuildLowSensitivityTables(stats, *sets, lambda);
    const auto combo = core_internal::SearchCombination(
        *sets, tables, 0.5, kGlScoreSensitivity, 1 << 20, rng);
    ASSERT_TRUE(combo.ok());
    dpx_quality += eval::SensitiveQuality(stats, *combo, lambda);
  }
  dpx_quality /= kRuns;
  dptabee_quality /= kRuns;

  EXPECT_GT(dpx_quality, dptabee_quality);
  // DPClustX should land close to the non-private optimum.
  EXPECT_GT(dpx_quality, 0.9 * tabee_quality);
}

}  // namespace
}  // namespace dpclustx::baselines
