#include "dp/eda_session.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

struct Fixture {
  Dataset dataset;
  std::vector<uint32_t> labels;
};

Fixture MakeFixture() {
  Schema schema({Attribute::WithAnonymousDomain("a", 4),
                 Attribute::WithAnonymousDomain("b", 3)});
  Dataset dataset(schema);
  Rng rng(1);
  std::vector<uint32_t> labels;
  for (int i = 0; i < 5000; ++i) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(rng.UniformInt(4)),
                                static_cast<ValueCode>(rng.UniformInt(3))});
    labels.push_back(static_cast<uint32_t>(rng.UniformInt(3)));
  }
  return {std::move(dataset), std::move(labels)};
}

TEST(EdaSessionTest, OpenValidatesInput) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  EXPECT_FALSE(EdaSession::Open(nullptr, f.labels, 3, &budget, 1).ok());
  EXPECT_FALSE(EdaSession::Open(&f.dataset, f.labels, 3, nullptr, 1).ok());
  EXPECT_FALSE(EdaSession::Open(&f.dataset, {0, 1}, 3, &budget, 1).ok());
  EXPECT_FALSE(EdaSession::Open(&f.dataset, f.labels, 2, &budget, 1).ok());
}

TEST(EdaSessionTest, QueriesChargeBudgetSequentially) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  auto session = EdaSession::Open(&f.dataset, f.labels, 3, &budget, 7);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->QueryFullHistogram(0, 0.2).ok());
  ASSERT_TRUE(session->QueryClusterHistogram(1, 0, 0.3).ok());
  ASSERT_TRUE(session->QueryClusterSize(0, 0.1).ok());
  EXPECT_NEAR(budget.spent_epsilon(), 0.6, 1e-12);
  EXPECT_EQ(session->queries_issued(), 3u);
}

TEST(EdaSessionTest, AllClusterRoundChargesOnce) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  auto session = EdaSession::Open(&f.dataset, f.labels, 3, &budget, 7);
  ASSERT_TRUE(session.ok());
  const auto round = session->QueryAllClusterHistograms(1, 0.25);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->size(), 3u);
  // Parallel composition: one ε charge for all three disjoint clusters.
  EXPECT_NEAR(budget.spent_epsilon(), 0.25, 1e-12);
}

TEST(EdaSessionTest, RefusesQueriesBeyondBudget) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(0.3);
  auto session = EdaSession::Open(&f.dataset, f.labels, 3, &budget, 7);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->QueryFullHistogram(0, 0.25).ok());
  const auto refused = session->QueryFullHistogram(1, 0.25);
  EXPECT_EQ(refused.status().code(), StatusCode::kOutOfBudget);
  // The refused query drew no noise and charged nothing.
  EXPECT_NEAR(budget.spent_epsilon(), 0.25, 1e-12);
}

TEST(EdaSessionTest, ValidatesQueryArguments) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1.0);
  auto session = EdaSession::Open(&f.dataset, f.labels, 3, &budget, 7);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->QueryClusterHistogram(9, 0, 0.1).ok());
  EXPECT_FALSE(session->QueryClusterHistogram(0, 9, 0.1).ok());
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.0);
}

TEST(EdaSessionTest, NoisyAnswersApproximateTruthAtHighBudget) {
  const Fixture f = MakeFixture();
  PrivacyBudget budget(1e8);
  auto session = EdaSession::Open(&f.dataset, f.labels, 3, &budget, 7);
  ASSERT_TRUE(session.ok());
  const auto size = session->QueryClusterSize(2, 1e6);
  ASSERT_TRUE(size.ok());
  size_t truth = 0;
  for (uint32_t label : f.labels) {
    if (label == 2) ++truth;
  }
  EXPECT_NEAR(*size, static_cast<double>(truth), 2.0);
}

}  // namespace
}  // namespace dpclustx
