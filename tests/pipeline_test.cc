#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"

namespace dpclustx {
namespace {

Dataset MakeData(uint64_t seed = 1) {
  synth::SyntheticConfig config;
  config.num_rows = 4000;
  config.num_attributes = 10;
  config.num_latent_groups = 3;
  config.max_domain = 6;
  config.signal_strength = 0.9;
  config.seed = seed;
  return std::move(*synth::Generate(config));
}

TEST(ParseClusteringMethodTest, ParsesAllNames) {
  EXPECT_EQ(ParseClusteringMethod("k-means").value(),
            ClusteringMethod::kKMeans);
  EXPECT_EQ(ParseClusteringMethod("dp-k-means").value(),
            ClusteringMethod::kDpKMeans);
  EXPECT_EQ(ParseClusteringMethod("k-modes").value(),
            ClusteringMethod::kKModes);
  EXPECT_EQ(ParseClusteringMethod("agglomerative").value(),
            ClusteringMethod::kAgglomerative);
  EXPECT_EQ(ParseClusteringMethod("gmm").value(), ClusteringMethod::kGmm);
  EXPECT_FALSE(ParseClusteringMethod("dbscan").ok());
}

TEST(PipelineTest, RunsEveryMethodEndToEnd) {
  const Dataset dataset = MakeData();
  for (const ClusteringMethod method :
       {ClusteringMethod::kKMeans, ClusteringMethod::kDpKMeans,
        ClusteringMethod::kKModes, ClusteringMethod::kAgglomerative,
        ClusteringMethod::kGmm}) {
    PipelineOptions options;
    options.method = method;
    options.num_clusters = 3;
    const auto result = RunPipeline(dataset, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->explanation.combination.size(), 3u);
    EXPECT_EQ(result->labels.size(), dataset.num_rows());
    EXPECT_EQ(result->stats.num_clusters(), 3u);
    EXPECT_FALSE(result->clustering_name.empty());
  }
}

TEST(PipelineTest, ChargesClusteringAndExplanationToOneBudget) {
  const Dataset dataset = MakeData();
  PrivacyBudget budget(1.3);
  PipelineOptions options;
  options.method = ClusteringMethod::kDpKMeans;
  options.num_clusters = 3;
  options.epsilon_clustering = 1.0;
  const auto result = RunPipeline(dataset, options, &budget);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(budget.spent_epsilon(), 1.3, 1e-9);
}

TEST(PipelineTest, InsufficientBudgetFailsAtClustering) {
  const Dataset dataset = MakeData();
  PrivacyBudget budget(0.5);
  PipelineOptions options;
  options.method = ClusteringMethod::kDpKMeans;
  options.epsilon_clustering = 1.0;
  const auto result = RunPipeline(dataset, options, &budget);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfBudget);
  EXPECT_DOUBLE_EQ(budget.spent_epsilon(), 0.0);
}

TEST(PipelineTest, StatsUsableForEvaluation) {
  const Dataset dataset = MakeData();
  PipelineOptions options;
  options.num_clusters = 3;
  const auto result = RunPipeline(dataset, options);
  ASSERT_TRUE(result.ok());
  GlobalWeights lambda;
  const double quality = eval::SensitiveQuality(
      result->stats, result->explanation.combination, lambda);
  EXPECT_GT(quality, 0.0);
  EXPECT_LE(quality, 1.0);
}

TEST(PipelineTest, DeterministicGivenSeeds) {
  const Dataset dataset = MakeData();
  PipelineOptions options;
  options.num_clusters = 3;
  options.clustering_seed = 9;
  options.explain.seed = 11;
  const auto a = RunPipeline(dataset, options);
  const auto b = RunPipeline(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->explanation.combination, b->explanation.combination);
  EXPECT_EQ(a->labels, b->labels);
}

}  // namespace
}  // namespace dpclustx
