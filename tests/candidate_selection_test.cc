#include "core/candidate_selection.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/explainer.h"

namespace dpclustx {
namespace {

// Dataset where attribute 0 strongly separates the clusters, attribute 1 is
// weaker, attribute 2 is pure noise shared across clusters.
StatsCache MakeStats(uint64_t seed = 1) {
  Schema schema({Attribute::WithAnonymousDomain("strong", 4),
                 Attribute::WithAnonymousDomain("weak", 4),
                 Attribute::WithAnonymousDomain("noise", 4)});
  Dataset dataset(schema);
  Rng rng(seed);
  std::vector<ClusterId> labels;
  for (size_t r = 0; r < 2000; ++r) {
    const auto cluster = static_cast<ClusterId>(rng.UniformInt(2));
    const auto strong = static_cast<ValueCode>(2 * cluster +
                                               rng.UniformInt(2));
    const ValueCode weak =
        rng.Bernoulli(0.6) ? static_cast<ValueCode>(cluster)
                           : static_cast<ValueCode>(rng.UniformInt(4));
    const auto noise = static_cast<ValueCode>(rng.UniformInt(4));
    dataset.AppendRowUnchecked({strong, weak, noise});
    labels.push_back(cluster);
  }
  return std::move(*StatsCache::Build(dataset, labels, 2));
}

TEST(SelectCandidatesExactTest, RanksStrongAttributeFirst) {
  const StatsCache stats = MakeStats();
  const auto sets = SelectCandidatesExact(stats, 2, {0.5, 0.5});
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 2u);
  for (const auto& set : *sets) {
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set[0], 0u) << "strong attribute should rank first";
  }
}

TEST(SelectCandidatesExactTest, ValidatesK) {
  const StatsCache stats = MakeStats();
  EXPECT_FALSE(SelectCandidatesExact(stats, 0, {0.5, 0.5}).ok());
  EXPECT_FALSE(SelectCandidatesExact(stats, 4, {0.5, 0.5}).ok());
}

TEST(SelectCandidatesTest, ValidatesOptions) {
  const StatsCache stats = MakeStats();
  Rng rng(1);
  CandidateSelectionOptions options;
  options.k = 0;
  EXPECT_FALSE(SelectCandidates(stats, options, rng).ok());
  options = CandidateSelectionOptions{};
  options.epsilon = 0.0;
  EXPECT_FALSE(SelectCandidates(stats, options, rng).ok());
}

TEST(SelectCandidatesTest, ReturnsDistinctAttributesPerCluster) {
  const StatsCache stats = MakeStats();
  Rng rng(2);
  CandidateSelectionOptions options;
  options.epsilon = 0.5;
  options.k = 2;
  const auto sets = SelectCandidates(stats, options, rng);
  ASSERT_TRUE(sets.ok());
  for (const auto& set : *sets) {
    const std::set<AttrIndex> distinct(set.begin(), set.end());
    EXPECT_EQ(distinct.size(), set.size());
  }
}

TEST(SelectCandidatesTest, HighBudgetMatchesExactSelection) {
  const StatsCache stats = MakeStats();
  Rng rng(3);
  CandidateSelectionOptions options;
  options.epsilon = 1e7;
  options.k = 2;
  options.gamma = {0.5, 0.5};
  const auto noisy = SelectCandidates(stats, options, rng);
  const auto exact = SelectCandidatesExact(stats, 2, options.gamma);
  ASSERT_TRUE(noisy.ok() && exact.ok());
  EXPECT_EQ(*noisy, *exact);
}

TEST(SelectCandidatesTest, TinyBudgetStillReturnsValidSets) {
  const StatsCache stats = MakeStats();
  Rng rng(4);
  CandidateSelectionOptions options;
  options.epsilon = 1e-4;
  options.k = 3;
  const auto sets = SelectCandidates(stats, options, rng);
  ASSERT_TRUE(sets.ok());
  for (const auto& set : *sets) {
    EXPECT_EQ(set.size(), 3u);
    for (AttrIndex attr : set) EXPECT_LT(attr, 3u);
  }
}

TEST(SvtSelectCandidatesTest, ValidatesOptions) {
  const StatsCache stats = MakeStats();
  Rng rng(10);
  SvtCandidateOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(SvtSelectCandidates(stats, options, rng).ok());
  options = SvtCandidateOptions{};
  options.max_candidates = 0;
  EXPECT_FALSE(SvtSelectCandidates(stats, options, rng).ok());
  options = SvtCandidateOptions{};
  options.threshold_fraction = 1.5;
  EXPECT_FALSE(SvtSelectCandidates(stats, options, rng).ok());
  options = SvtCandidateOptions{};
  options.size_budget_share = 0.0;
  EXPECT_FALSE(SvtSelectCandidates(stats, options, rng).ok());
}

TEST(SvtSelectCandidatesTest, HighBudgetKeepsQualifyingAttributes) {
  const StatsCache stats = MakeStats();
  Rng rng(11);
  SvtCandidateOptions options;
  options.epsilon = 1e6;
  options.max_candidates = 3;
  // The strong attribute separates clusters almost perfectly, so its
  // single-cluster score is near |D_c|; a 30% bar keeps it.
  options.threshold_fraction = 0.3;
  const auto sets = SvtSelectCandidates(stats, options, rng);
  ASSERT_TRUE(sets.ok()) << sets.status();
  ASSERT_EQ(sets->size(), 2u);
  for (const auto& set : *sets) {
    EXPECT_FALSE(set.empty());
    EXPECT_NE(std::find(set.begin(), set.end(), 0u), set.end())
        << "the strong attribute must clear the bar";
  }
}

TEST(SvtSelectCandidatesTest, NeverReturnsEmptySets) {
  const StatsCache stats = MakeStats();
  SvtCandidateOptions options;
  options.epsilon = 1e6;
  options.threshold_fraction = 0.99;  // an impossible bar for weak attrs
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto sets = SvtSelectCandidates(stats, options, rng);
    ASSERT_TRUE(sets.ok());
    for (const auto& set : *sets) {
      EXPECT_FALSE(set.empty());
      EXPECT_LE(set.size(), options.max_candidates);
    }
  }
}

TEST(SvtSelectCandidatesTest, CandidateSetsFeedStageTwo) {
  // Variable-size SVT candidate sets must be consumable by the Stage-2
  // search (per-cluster set sizes may differ).
  const StatsCache stats = MakeStats();
  Rng rng(13);
  SvtCandidateOptions options;
  options.epsilon = 2.0;
  const auto sets = SvtSelectCandidates(stats, options, rng);
  ASSERT_TRUE(sets.ok());
  GlobalWeights lambda;
  const auto tables =
      core_internal::BuildLowSensitivityTables(stats, *sets, lambda);
  const auto combo = core_internal::SearchCombination(
      *sets, tables, 0.1, kGlScoreSensitivity, 1 << 20, rng);
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(combo->size(), 2u);
}

TEST(SelectCandidatesTest, StrongAttributeSelectedMoreOftenThanNoise) {
  const StatsCache stats = MakeStats();
  CandidateSelectionOptions options;
  options.epsilon = 5.0;
  options.k = 1;
  size_t strong_hits = 0, noise_hits = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const auto sets = SelectCandidates(stats, options, rng);
    ASSERT_TRUE(sets.ok());
    if ((*sets)[0][0] == 0) ++strong_hits;
    if ((*sets)[0][0] == 2) ++noise_hits;
  }
  EXPECT_GT(strong_hits, noise_hits);
}

}  // namespace
}  // namespace dpclustx
