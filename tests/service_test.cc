// End-to-end tests for the explanation service: protocol round-trips,
// post-processing-free cache hits, multi-tenant budget isolation, the
// cross-session dataset cap, and queue backpressure.

#include "service/service_engine.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "data/columnar_format.h"
#include "data/dataset.h"
#include "gtest/gtest.h"

namespace dpclustx::service {
namespace {

JsonValue Parse(const std::string& text) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << text;
  return std::move(*parsed);
}

JsonValue Call(ServiceEngine& engine, const std::string& request) {
  return Parse(engine.Handle(request));
}

void ExpectOk(const JsonValue& response) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_TRUE(response.at("ok").AsBool()) << response.Dump();
}

void ExpectError(const JsonValue& response, const std::string& code) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  ASSERT_FALSE(response.at("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.at("error").at("code").AsString(), code)
      << response.Dump();
}

/// Engine options for tests that pin mechanism seeds. Deterministic noise
/// is a test-only configuration: a default-configured engine rejects
/// client-supplied seeds on noisy ops (see SeedsAreRejectedInSecureMode).
ServiceEngineOptions DebugNoise() {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  return options;
}

/// Loads a small synthetic dataset and clusters it (k-means, free).
void SetUpDataset(ServiceEngine& engine, double cap_epsilon = 0.0) {
  JsonValue load = Call(engine,
                        R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                        R"("generator":"diabetes","rows":1500,"seed":7,)"
                        R"("cap_epsilon":)" +
                            std::to_string(cap_epsilon) + "}");
  ExpectOk(load);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
}

TEST(ServiceTest, PingRoundTripEchoesId) {
  ServiceEngine engine;
  const JsonValue response = Call(engine, R"({"op":"ping","id":"abc"})");
  ExpectOk(response);
  EXPECT_EQ(response.at("id").AsString(), "abc");
  EXPECT_TRUE(response.at("pong").AsBool());
}

TEST(ServiceTest, MalformedRequestsGetErrorResponsesNotCrashes) {
  ServiceEngine engine;
  ExpectError(Call(engine, "this is not json"), "InvalidArgument");
  ExpectError(Call(engine, "[1,2,3]"), "InvalidArgument");
  ExpectError(Call(engine, R"({"no_op_field":1})"), "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"frobnicate"})"), "NotFound");
  ExpectError(Call(engine, R"({"op":"explain","session":"ghost"})"),
              "NotFound");
}

TEST(ServiceTest, ExplainProtocolRoundTrip) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const JsonValue response =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":11})");
  ExpectOk(response);
  EXPECT_FALSE(response.at("cache_hit").AsBool());
  EXPECT_NEAR(response.at("epsilon_charged").AsNumber(), 0.3, 1e-12);
  EXPECT_NEAR(response.at("epsilon_remaining").AsNumber(), 0.7, 1e-12);
  ASSERT_TRUE(response.Has("explanation"));
  EXPECT_FALSE(response.at("text").AsString().empty());

  // The ledger reflects the single atomic charge.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  ExpectOk(budget);
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);
  EXPECT_EQ(budget.at("ledger").size(), 1u);
}

TEST(ServiceTest, CacheHitIsByteIdenticalAndFree) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const std::string request =
      R"({"op":"explain","session":"alice","epsilon":0.3,"seed":11})";
  const JsonValue first = Call(engine, request);
  ExpectOk(first);
  ASSERT_FALSE(first.at("cache_hit").AsBool());

  const JsonValue second = Call(engine, request);
  ExpectOk(second);
  EXPECT_TRUE(second.at("cache_hit").AsBool());
  // The release itself is byte-identical post-processing...
  EXPECT_EQ(second.at("explanation").Dump(), first.at("explanation").Dump());
  EXPECT_EQ(second.at("text").AsString(), first.at("text").AsString());
  // ...and costs zero additional ε.
  EXPECT_EQ(second.at("epsilon_charged").AsNumber(), 0.0);
  EXPECT_EQ(second.at("epsilon_remaining").AsNumber(),
            first.at("epsilon_remaining").AsNumber());
  EXPECT_EQ(engine.cache().hits(), 1u);

  // A different seed is a different release: fresh noise, fresh charge.
  const JsonValue third = Call(
      engine,
      R"({"op":"explain","session":"alice","epsilon":0.3,"seed":12})");
  ExpectOk(third);
  EXPECT_FALSE(third.at("cache_hit").AsBool());
  EXPECT_NEAR(third.at("epsilon_remaining").AsNumber(), 0.4, 1e-12);
}

TEST(ServiceTest, ExhaustedSessionGetsCleanOutOfBudget) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  // Enough for one explain at 0.3, not two.
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":0.5})"));
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                        R"("seed":11})"));
  const JsonValue refused =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":12})");
  ExpectError(refused, "OutOfBudget");
  // The refusal leaks nothing: no histogram payload, no exact counts —
  // just the error object (plus ok/id bookkeeping).
  EXPECT_FALSE(refused.Has("explanation"));
  EXPECT_FALSE(refused.Has("text"));
  // And it charged nothing.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);

  // The cached release from before exhaustion is still free to re-serve.
  const JsonValue cached =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":11})");
  ExpectOk(cached);
  EXPECT_TRUE(cached.at("cache_hit").AsBool());
}

TEST(ServiceTest, SessionsAreIsolated) {
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":0.25})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":1.0})"));
  // Alice burns her whole budget...
  ExpectOk(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                        R"("epsilon":0.25})"));
  ExpectError(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                           R"("epsilon":0.01})"),
              "OutOfBudget");
  // ...and Bob's is untouched.
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  ExpectOk(bob);
  EXPECT_EQ(bob.at("spent").AsNumber(), 0.0);
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.01})"));
  // Duplicate session ids are refused (a second "alice" would reset her
  // ledger).
  ExpectError(Call(engine, R"({"op":"create_session","session":"alice",)"
                           R"("dataset":"d","epsilon":9.0})"),
              "FailedPrecondition");
}

TEST(ServiceTest, DatasetCapBoundsAllSessionsTogether) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine, /*cap_epsilon=*/0.5);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                        R"("seed":11})"));
  // Bob has plenty of session budget, but the dataset-wide cap (0.5) has
  // only 0.2 left.
  const JsonValue refused =
      Call(engine, R"({"op":"explain","session":"bob","epsilon":0.3,)"
                   R"("seed":12})");
  ExpectError(refused, "OutOfBudget");
  // A smaller request that fits under the cap still works.
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.1})"));
  // The refused charge did not touch Bob's session ledger.
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  EXPECT_NEAR(bob.at("spent").AsNumber(), 0.1, 1e-12);
  EXPECT_NEAR(bob.at("dataset_cap_remaining").AsNumber(), 0.1, 1e-12);
}

TEST(ServiceTest, ClusterResponseCarriesNoExactSizes) {
  ServiceEngine engine;
  const JsonValue load =
      Call(engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                   R"("generator":"diabetes","rows":1500,"seed":7})");
  ExpectOk(load);
  const JsonValue clustered =
      Call(engine, R"({"op":"cluster","dataset":"d","method":"k-means",)"
                   R"("k":3,"seed":3})");
  ExpectOk(clustered);
  EXPECT_FALSE(clustered.Has("sizes"));
  EXPECT_FALSE(clustered.Has("cluster_sizes"));
  // Re-issuing the identical cluster request is idempotent; a conflicting
  // one is refused (views are immutable).
  ExpectOk(Call(engine, R"({"op":"cluster","dataset":"d","method":"k-means",)"
                        R"("k":3,"seed":3})"));
  ExpectError(Call(engine,
                   R"({"op":"cluster","dataset":"d","method":"k-means",)"
                   R"("k":4,"seed":3})"),
              "FailedPrecondition");
}

TEST(ServiceTest, AsyncBackpressureRejectsWithoutLosingAcceptedWork) {
  // Single worker blocked on a gate; the queue (capacity 2) fills, then
  // further submissions must be rejected via Status, and every accepted
  // request must still be answered after the gate opens.
  ServiceEngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  ServiceEngine engine(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool gate_open = false;
  bool worker_busy = false;
  std::vector<std::string> responses;

  const Status head = engine.pool().TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    worker_busy = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  });
  ASSERT_TRUE(head.ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return worker_busy; });
  }

  auto collect = [&](std::string response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(std::move(response));
  };
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string request =
        R"({"op":"ping","id":)" + std::to_string(i) + "}";
    const Status submitted = engine.HandleAsync(request, collect);
    if (submitted.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(submitted.code(), StatusCode::kResourceExhausted);
      // The server turns the rejection into a busy response for the client.
      const JsonValue busy =
          Parse(ServiceEngine::RejectionResponse(request, submitted));
      EXPECT_FALSE(busy.at("ok").AsBool());
      EXPECT_EQ(busy.at("error").at("code").AsString(), "ResourceExhausted");
      EXPECT_EQ(busy.at("id").AsNumber(), static_cast<double>(i));
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);  // exactly the queue capacity
  EXPECT_EQ(rejected, 4);

  {
    std::lock_guard<std::mutex> lock(mutex);
    gate_open = true;
  }
  cv.notify_all();
  engine.Shutdown();  // drains the two accepted pings
  ASSERT_EQ(responses.size(), 2u);
  std::set<double> ids;
  for (const std::string& response : responses) {
    const JsonValue parsed = Parse(response);
    EXPECT_TRUE(parsed.at("ok").AsBool());
    ids.insert(parsed.at("id").AsNumber());
  }
  EXPECT_EQ(ids, (std::set<double>{0.0, 1.0}));
}

TEST(ServiceTest, ConcurrentMixedLoadIsRaceFreeAndBudgetExact) {
  // Many concurrent queries against one session: the total spend must come
  // out exact regardless of interleaving, and no request may crash. Run
  // under TSan by scripts/check.sh.
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":100.0})"));

  constexpr int kRequests = 40;
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kRequests; ++i) {
    const std::string request =
        R"({"op":"size","session":"alice","cluster":0,"epsilon":0.5,"seed":)" +
        std::to_string(i) + "}";
    const Status submitted =
        engine.HandleAsync(request, [&](std::string response) {
          if (Parse(response).at("ok").AsBool()) ++ok_count;
          std::lock_guard<std::mutex> lock(mutex);
          ++completed;
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return completed == kRequests; });
  }
  EXPECT_EQ(ok_count.load(), kRequests);
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.5 * kRequests, 1e-9);
  EXPECT_EQ(budget.at("ledger").size(), static_cast<size_t>(kRequests));
}

TEST(ServiceTest, SeedsAreRejectedInSecureMode) {
  // A default-configured engine must refuse client-supplied noise seeds on
  // every noisy op: the mechanism noise is data-independent, so a client
  // who chose the seed could subtract the noise and recover exact counts.
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const JsonValue schema = Call(engine, R"({"op":"schema","dataset":"d"})");
  ExpectOk(schema);
  const std::string attr =
      schema.at("attributes").at(0).at("name").AsString();

  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":0.3,"seed":11})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"hist","session":"alice","attribute":")" +
                               attr + R"(","epsilon":0.02,"seed":11})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                           R"("epsilon":0.01,"seed":11})"),
              "InvalidArgument");
  // Refusals charge nothing.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_EQ(budget.at("spent").AsNumber(), 0.0);
}

TEST(ServiceTest, ServerSeededExplainsStillCacheHit) {
  // Without client seeds, a repeated identical request re-serves the first
  // (server-seeded) release byte-identically at zero additional ε.
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const std::string request =
      R"({"op":"explain","session":"alice","epsilon":0.3})";
  const JsonValue first = Call(engine, request);
  ExpectOk(first);
  ASSERT_FALSE(first.at("cache_hit").AsBool());
  const JsonValue second = Call(engine, request);
  ExpectOk(second);
  EXPECT_TRUE(second.at("cache_hit").AsBool());
  EXPECT_EQ(second.at("explanation").Dump(), first.at("explanation").Dump());
  EXPECT_EQ(second.at("epsilon_charged").AsNumber(), 0.0);
}

TEST(ServiceTest, ConcurrentIdenticalExplainsChargeOnce) {
  // N identical explain requests race through the pool: exactly one may
  // spend ε and compute; the others must wait for it in flight and take
  // the cache hit (a dual charge would silently burn double budget).
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  constexpr int kRequests = 8;
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  std::vector<std::string> responses;
  for (int i = 0; i < kRequests; ++i) {
    const Status submitted = engine.HandleAsync(
        R"({"op":"explain","session":"alice","epsilon":0.3})",
        [&](std::string response) {
          std::lock_guard<std::mutex> lock(mutex);
          responses.push_back(std::move(response));
          ++completed;
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return completed == kRequests; });
  }
  int misses = 0;
  double charged = 0.0;
  for (const std::string& response : responses) {
    const JsonValue parsed = Parse(response);
    ExpectOk(parsed);
    if (!parsed.at("cache_hit").AsBool()) ++misses;
    charged += parsed.at("epsilon_charged").AsNumber();
  }
  EXPECT_EQ(misses, 1);
  EXPECT_NEAR(charged, 0.3, 1e-12);
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);
  EXPECT_EQ(budget.at("ledger").size(), 1u);
}

TEST(ServiceTest, ReplacingDatasetDoesNotResetCap) {
  // Re-registering the same underlying data with replace=true must carry
  // the cross-session cap's spend forward — otherwise any client could
  // reset the dataset-wide ε bound in one request.
  ServiceEngine engine;
  SetUpDataset(engine, /*cap_epsilon=*/0.5);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine,
                R"({"op":"explain","session":"alice","epsilon":0.3})"));

  // Same source (generator/rows/seed), bigger requested cap: the cap can
  // be tightened but never raised or reset by a replacement.
  const JsonValue reloaded = Call(
      engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
              R"("generator":"diabetes","rows":1500,"seed":7,)"
              R"("cap_epsilon":100.0,"replace":true})");
  ExpectOk(reloaded);
  EXPECT_NEAR(reloaded.at("cap_epsilon").AsNumber(), 0.5, 1e-12);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":10.0})"));
  // Only 0.5 - 0.3 = 0.2 of the cap survives the replacement.
  ExpectError(Call(engine,
                   R"({"op":"explain","session":"bob","epsilon":0.3})"),
              "OutOfBudget");
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.1})"));
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  ExpectOk(bob);
  EXPECT_NEAR(bob.at("dataset_cap_remaining").AsNumber(), 0.1, 1e-9);

  // A genuinely different source (other row count) is new data and gets
  // the cap it asks for.
  const JsonValue fresh = Call(
      engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
              R"("generator":"diabetes","rows":1600,"seed":7,)"
              R"("cap_epsilon":0.5,"replace":true})");
  ExpectOk(fresh);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"carol",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine,
                R"({"op":"explain","session":"carol","epsilon":0.3})"));
}

TEST(ServiceTest, StatsSchemaIsBackwardCompatible) {
  // The per-op block moved from a mutex-guarded map onto registry handles;
  // the JSON surface must not change: count/errors/deadline_exceeded/
  // total_micros/max_micros per op, never-called ops absent.
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectError(Call(engine, R"({"op":"schema","dataset":"ghost"})"),
              "NotFound");
  const JsonValue stats = Call(engine, R"({"op":"stats"})");
  ExpectOk(stats);

  const JsonValue& ops = stats.at("ops");
  ASSERT_TRUE(ops.Has("load_dataset")) << stats.Dump();
  ASSERT_TRUE(ops.Has("schema"));
  EXPECT_FALSE(ops.Has("explain")) << "never-called ops must be absent";
  const JsonValue& schema_op = ops.at("schema");
  EXPECT_EQ(schema_op.at("count").AsNumber(), 1.0);
  EXPECT_EQ(schema_op.at("errors").AsNumber(), 1.0);
  EXPECT_EQ(schema_op.at("deadline_exceeded").AsNumber(), 0.0);
  EXPECT_TRUE(schema_op.Has("total_micros"));
  EXPECT_TRUE(schema_op.Has("max_micros"));

  // Pre-registry fields survive, and the new blocks are present.
  EXPECT_TRUE(stats.at("cache").Has("hits"));
  EXPECT_TRUE(stats.at("cache").Has("evictions"));
  EXPECT_TRUE(stats.at("pool").Has("queue_depth"));
  EXPECT_TRUE(stats.at("pool").Has("active"));
  EXPECT_TRUE(stats.Has("shed"));
  EXPECT_TRUE(stats.at("audit").Has("epsilon_charged"));
  // Trace-ring occupancy mirrors the audit block's bounded-drop surface.
  EXPECT_TRUE(stats.at("trace").Has("retained"));
  EXPECT_TRUE(stats.at("trace").Has("capacity"));
  EXPECT_EQ(stats.at("trace").at("dropped").AsNumber(), 0.0);
  EXPECT_FALSE(stats.at("build").at("compiler").AsString().empty());
}

TEST(ServiceTest, MetricsOpExposesPrometheusAndJson) {
  ServiceEngine engine;
  ExpectOk(Call(engine, R"({"op":"ping"})"));
  const JsonValue both = Call(engine, R"({"op":"metrics"})");
  ExpectOk(both);
  EXPECT_TRUE(both.Has("metrics"));
  const std::string text = both.at("prometheus").AsString();
  EXPECT_NE(text.find("# TYPE dpclustx_op_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dpclustx_op_requests_total{op=\"ping\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE dpclustx_op_latency_micros histogram"),
            std::string::npos)
      << text;

  // Histograms use native Prometheus exposition: cumulative le-bucketed
  // series plus _sum/_count, scrapeable by a stock Prometheus with no
  // relabeling.
  EXPECT_NE(
      text.find("dpclustx_op_latency_micros_bucket{op=\"ping\",le=\"50\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("dpclustx_op_latency_micros_bucket{op=\"ping\",le=\"+Inf\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("dpclustx_op_latency_micros_sum{op=\"ping\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dpclustx_op_latency_micros_count{op=\"ping\"} 1"),
            std::string::npos)
      << text;

  const JsonValue json_only = Call(engine, R"({"op":"metrics",)"
                                           R"("format":"json"})");
  ExpectOk(json_only);
  EXPECT_TRUE(json_only.Has("metrics"));
  EXPECT_FALSE(json_only.Has("prometheus"));
  // The JSON exposition schema is a stable surface: histograms keep the
  // non-cumulative count/sum_micros/max_micros/bounds_micros/buckets shape
  // regardless of how the Prometheus side renders them.
  const JsonValue& histograms = json_only.at("metrics").at("histograms");
  ASSERT_TRUE(histograms.Has("dpclustx_op_latency_micros{op=\"ping\"}"))
      << json_only.Dump();
  const JsonValue& ping_hist =
      histograms.at("dpclustx_op_latency_micros{op=\"ping\"}");
  EXPECT_EQ(ping_hist.at("count").AsNumber(), 1.0);
  EXPECT_TRUE(ping_hist.Has("sum_micros"));
  EXPECT_TRUE(ping_hist.Has("max_micros"));
  EXPECT_EQ(ping_hist.at("bounds_micros").size(),
            ping_hist.at("buckets").size() - 1)
      << "buckets must keep the trailing +Inf cell";
  ExpectError(Call(engine, R"({"op":"metrics","format":"xml"})"),
              "InvalidArgument");
}

TEST(ServiceTest, TraceContextActivatesTracingAndEchoesTraceId) {
  // A relayed request carrying "_tc" must come back with the span tree and
  // the propagated trace id even without "trace":true — the router cannot
  // stitch a timeline it never receives.
  ServiceEngine engine;
  const JsonValue response = Call(
      engine, R"({"op":"ping","_tc":{"pid":"r7","tid":"t7"},"id":"r7"})");
  ExpectOk(response);
  ASSERT_TRUE(response.Has("trace")) << response.Dump();
  EXPECT_EQ(response.at("trace_id").AsString(), "t7");
  EXPECT_EQ(response.at("trace").at("name").AsString(), "request");

  // The ring entry remembers the propagated id.
  const JsonValue trace_op = Call(engine, R"({"op":"trace"})");
  ExpectOk(trace_op);
  const JsonValue& traces = trace_op.at("traces");
  ASSERT_GE(traces.size(), 1u);
  EXPECT_EQ(traces.at(size_t{0}).at("tid").AsString(), "t7");

  // A malformed _tc (non-object / missing tid) is inert, not an error.
  const JsonValue untraced =
      Call(engine, R"({"op":"ping","_tc":"bogus","id":"x"})");
  ExpectOk(untraced);
  EXPECT_FALSE(untraced.Has("trace"));
}

TEST(ServiceTest, TraceRingCountsEvictionsInsteadOfSilentOverwrite) {
  ServiceEngineOptions options;
  options.trace_ring_capacity = 2;
  ServiceEngine engine(options);
  for (int i = 0; i < 5; ++i) {
    ExpectOk(Call(engine, R"({"op":"ping","trace":true})"));
  }
  const JsonValue trace_op = Call(engine, R"({"op":"trace"})");
  ExpectOk(trace_op);
  EXPECT_EQ(trace_op.at("retained").AsNumber(), 2.0);
  EXPECT_EQ(trace_op.at("dropped").AsNumber(), 3.0);
  const JsonValue stats = Call(engine, R"({"op":"stats"})");
  ExpectOk(stats);
  EXPECT_EQ(stats.at("trace").at("retained").AsNumber(), 2.0);
  EXPECT_EQ(stats.at("trace").at("dropped").AsNumber(), 3.0);
  EXPECT_EQ(stats.at("trace").at("capacity").AsNumber(), 2.0);
}

/// Flattens a span tree into {name -> wall_micros}.
std::map<std::string, double> FlattenSpans(const JsonValue& trace) {
  std::map<std::string, double> wall_by_name;
  std::vector<const JsonValue*> stack = {&trace};
  while (!stack.empty()) {
    const JsonValue* span = stack.back();
    stack.pop_back();
    wall_by_name[span->at("name").AsString()] =
        span->at("wall_micros").AsNumber();
    const JsonValue& children = span->at("children");
    for (size_t i = 0; i < children.size(); ++i) {
      stack.push_back(&children.at(i));
    }
  }
  return wall_by_name;
}

TEST(ServiceTest, PerRequestTraceCoversThePipelineStages) {
  // Acceptance: traced requests yield span trees covering clustering, the
  // StatsCache build (both during the `cluster` op — explains reuse the
  // resident cache), and the Stage-1/Stage-2 mechanisms, with non-zero
  // wall timings throughout.
  ServiceEngine engine;
  ExpectOk(Call(engine,
                R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                R"("generator":"diabetes","rows":1500,"seed":7})"));
  const JsonValue clustered =
      Call(engine,
           R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
           R"("seed":3,"trace":true})");
  ExpectOk(clustered);
  ASSERT_TRUE(clustered.Has("trace")) << clustered.Dump();
  std::map<std::string, double> cluster_spans =
      FlattenSpans(clustered.at("trace"));
  for (const char* stage :
       {"parse", "clustering_fit", "assign_all", "stats_cache_build"}) {
    ASSERT_TRUE(cluster_spans.count(stage) != 0)
        << "missing span '" << stage << "' in "
        << clustered.at("trace").Dump();
    EXPECT_GE(cluster_spans[stage], 1.0) << stage;
  }

  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const JsonValue response =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("trace":true})");
  ExpectOk(response);
  ASSERT_TRUE(response.Has("trace")) << response.Dump();
  std::map<std::string, double> explain_spans =
      FlattenSpans(response.at("trace"));
  for (const char* stage :
       {"parse", "cache_lookup", "budget_check", "explain_compute",
        "stage1_candidates", "stage2_select", "stage2_histograms"}) {
    ASSERT_TRUE(explain_spans.count(stage) != 0)
        << "missing span '" << stage << "' in " << response.at("trace").Dump();
    EXPECT_GE(explain_spans[stage], 1.0) << stage;
  }

  // The ring kept both traces for the `trace` op (and untraced requests
  // do not land there).
  ExpectOk(Call(engine, R"({"op":"ping"})"));
  const JsonValue ring = Call(engine, R"({"op":"trace"})");
  ExpectOk(ring);
  ASSERT_EQ(ring.at("traces").size(), 2u);
  EXPECT_EQ(ring.at("traces").at(0).at("op").AsString(), "cluster");
  EXPECT_EQ(ring.at("traces").at(1).at("op").AsString(), "explain");
  EXPECT_FALSE(ring.at("trace_all").AsBool());
}

TEST(ServiceTest, TraceAllFillsTheRingWithoutInflatingResponses) {
  ServiceEngineOptions options;
  options.trace_all = true;
  options.trace_ring_capacity = 2;
  ServiceEngine engine(options);
  for (int i = 0; i < 3; ++i) {
    const JsonValue response = Call(engine, R"({"op":"ping"})");
    ExpectOk(response);
    EXPECT_FALSE(response.Has("trace"));
  }
  // `trace` op requests are themselves traced; the ring keeps the newest 2.
  const JsonValue ring = Call(engine, R"({"op":"trace"})");
  ExpectOk(ring);
  ASSERT_EQ(ring.at("traces").size(), 2u);
  EXPECT_EQ(ring.at("traces").at(1).at("op").AsString(), "ping");
  EXPECT_TRUE(ring.at("trace_all").AsBool());
  const JsonValue limited = Call(engine, R"({"op":"trace","limit":1})");
  ExpectOk(limited);
  EXPECT_EQ(limited.at("traces").size(), 1u);
}

TEST(ServiceTest, AuditOpRecordsChargesAndDenials) {
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":0.4})"));
  ExpectOk(Call(engine,
                R"({"op":"explain","session":"alice","epsilon":0.3})"));
  // A repeat at ε=0.3 would be a cache hit (same key, zero charge); asking
  // for ε=0.2 misses the cache and exceeds the 0.1 remaining.
  ExpectError(Call(engine,
                   R"({"op":"explain","session":"alice","epsilon":0.2})"),
              "OutOfBudget");

  const JsonValue audit = Call(engine, R"({"op":"audit"})");
  ExpectOk(audit);
  ASSERT_EQ(audit.at("records").size(), 2u);
  const JsonValue& charge = audit.at("records").at(0);
  EXPECT_EQ(charge.at("seq").AsNumber(), 1.0);
  EXPECT_EQ(charge.at("tenant").AsString(), "alice");
  EXPECT_EQ(charge.at("dataset").AsString(), "d");
  EXPECT_TRUE(charge.at("granted").AsBool());
  EXPECT_NEAR(charge.at("epsilon").AsNumber(), 0.3, 1e-12);
  const JsonValue& denial = audit.at("records").at(1);
  EXPECT_FALSE(denial.at("granted").AsBool());
  EXPECT_EQ(denial.at("reason").AsString(), "session budget");

  // The audited charge total equals the ledger spend exactly.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_EQ(audit.at("totals").at("alice").at("epsilon_charged").AsNumber(),
            budget.at("spent").AsNumber());
  const JsonValue limited = Call(engine, R"({"op":"audit","limit":1})");
  ExpectOk(limited);
  EXPECT_EQ(limited.at("records").size(), 1u);
}

TEST(ServiceTest, ConcurrentAuditTotalsMatchLedgersExactly) {
  // Acceptance: under concurrent multi-tenant load, each tenant's audited
  // ε total must equal its session ledger's spent total EXACTLY (bit-for-
  // bit, not within a tolerance) — both sums accumulate under the session's
  // spend lock, in the same order. Runs under TSan via scripts/check.sh.
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 25;
  for (int t = 0; t < kTenants; ++t) {
    ExpectOk(Call(engine, R"({"op":"create_session","session":"tenant)" +
                              std::to_string(t) +
                              R"(","dataset":"d","epsilon":100.0})"));
  }
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  constexpr int kTotal = kTenants * kRequestsPerTenant;
  for (int i = 0; i < kTotal; ++i) {
    // An awkward ε whose repeated sum is inexact in binary floating point:
    // only same-order accumulation can reproduce the ledger total exactly.
    const std::string request =
        R"({"op":"size","session":"tenant)" + std::to_string(i % kTenants) +
        R"(","cluster":0,"epsilon":0.1,"seed":)" + std::to_string(i) + "}";
    const Status submitted =
        engine.HandleAsync(request, [&](std::string response) {
          EXPECT_TRUE(Parse(response).at("ok").AsBool());
          std::lock_guard<std::mutex> lock(mutex);
          ++completed;
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return completed == kTotal; });
  }

  const JsonValue audit = Call(engine, R"({"op":"audit"})");
  ExpectOk(audit);
  for (int t = 0; t < kTenants; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    const JsonValue budget =
        Call(engine, R"({"op":"budget","session":")" + tenant + R"("})");
    ExpectOk(budget);
    EXPECT_EQ(
        audit.at("totals").at(tenant).at("epsilon_charged").AsNumber(),
        budget.at("spent").AsNumber())
        << tenant << " audit total diverged from its ledger";
  }
  EXPECT_EQ(audit.at("global").at("charges").AsNumber(),
            static_cast<double>(kTotal));
}

TEST(ServiceTest, InjectedRegistryOutlivesTheEngine) {
  // Two engines sharing one injected registry: per-op instruments are
  // reused (registration is idempotent), and engine destruction detaches
  // its callback gauges so a later exposition does not touch freed state.
  obs::MetricsRegistry registry;
  ServiceEngineOptions options;
  options.metrics_registry = &registry;
  {
    ServiceEngine first(options);
    ExpectOk(Call(first, R"({"op":"ping"})"));
  }
  {
    ServiceEngine second(options);
    ExpectOk(Call(second, R"({"op":"ping"})"));
    ExpectOk(Call(second, R"({"op":"ping"})"));
  }
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("dpclustx_op_requests_total{op=\"ping\"} 3"),
            std::string::npos)
      << text;
  // Callback gauges from both destroyed engines are gone, not dangling.
  EXPECT_EQ(text.find("dpclustx_cache_size"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Streaming ingest: append_rows and memory-mapped DPXCOL sources.
// ---------------------------------------------------------------------------

/// Writes a small DPXCOL file (3 attrs matching nothing in particular) and
/// returns its path. `capacity_rows` reserves append headroom.
std::string WriteSmallColumnar(const std::string& name, size_t capacity_rows) {
  Schema schema({Attribute("color", {"red", "green", "blue"}),
                 Attribute("size", {"s", "m", "l", "xl"}),
                 Attribute("grade", {"lo", "hi"})});
  Dataset dataset(schema);
  for (size_t r = 0; r < 12; ++r) {
    dataset.AppendRowUnchecked({static_cast<ValueCode>(r % 3),
                                static_cast<ValueCode>(r % 4),
                                static_cast<ValueCode>(r % 2)});
  }
  const std::string path =
      testing::TempDir() + "/dpclustx_service_" + name + ".dpxcol";
  std::remove(path.c_str());
  ColumnarWriteOptions options;
  options.capacity_rows = capacity_rows;
  Status written = WriteColumnarFile(dataset, path, options);
  EXPECT_TRUE(written.ok()) << written;
  return path;
}

/// Builds an append_rows request for dataset `name` with one row of
/// `cells` zero codes (code 0 is valid in every domain).
std::string ZeroRowAppend(const std::string& name, size_t cells) {
  std::string row = "[";
  for (size_t a = 0; a < cells; ++a) row += (a == 0 ? "0" : ",0");
  row += "]";
  return R"({"op":"append_rows","dataset":")" + name + R"(","rows":[)" +
         row + "]}";
}

TEST(ServiceTest, AppendRowsBumpsEpochAndInvalidatesCachedReleases) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  const std::string request =
      R"({"op":"explain","session":"alice","epsilon":0.3,"seed":11})";
  ExpectOk(Call(engine, request));
  ASSERT_TRUE(Call(engine, request).at("cache_hit").AsBool());

  // Appending a row advances the dataset epoch...
  const JsonValue append = Call(engine, ZeroRowAppend("d", 47));
  ExpectOk(append);
  EXPECT_EQ(append.at("appended").AsNumber(), 1.0);
  EXPECT_EQ(append.at("rows").AsNumber(), 1501.0);
  EXPECT_GE(append.at("epoch").AsNumber(), 1.0);

  // ...so the same explain request is no longer a cache hit: the cached
  // release described the pre-append data and must not be re-served.
  const JsonValue after = Call(engine, request);
  ExpectOk(after);
  EXPECT_FALSE(after.at("cache_hit").AsBool());
}

TEST(ServiceTest, AppendRowsValidatesCellsBeforeWritingAnything) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  // Wrong arity (diabetes rows have 47 cells).
  ExpectError(Call(engine,
                   R"({"op":"append_rows","dataset":"d","rows":[[0]]})"),
              "InvalidArgument");
  // Out-of-domain numeric code (diabetes domains top out at 39).
  std::string bad = ZeroRowAppend("d", 47);
  bad.replace(bad.find("[[0"), 3, "[[999");
  ExpectError(Call(engine, bad), "InvalidArgument");
  // Unknown dataset.
  ExpectError(Call(engine,
                   R"({"op":"append_rows","dataset":"ghost","rows":[[0]]})"),
              "NotFound");
  // A rejected batch leaves the row count untouched.
  const auto entry = engine.registry().Get("d");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->dataset()->num_rows(), 1500u);
}

TEST(ServiceTest, AppendRowsRefusedOnReadOnlyReplicas) {
  ServiceEngineOptions options = DebugNoise();
  options.read_only = true;
  ServiceEngine replica(options);
  // Refused before any dataset lookup: replicas never mutate state.
  ExpectError(Call(replica,
                   R"({"op":"append_rows","dataset":"d","rows":[[0]]})"),
              "FailedPrecondition");
}

TEST(ServiceTest, ColumnarDatasetLoadsMappedAndServesExplains) {
  ServiceEngine engine(DebugNoise());
  const std::string path = WriteSmallColumnar("load", /*capacity_rows=*/0);
  const JsonValue load = Call(
      engine, R"({"op":"load_dataset","name":"m","source":"dpxcol",)"
              R"("path":")" + path + R"(","verify":true})");
  ExpectOk(load);
  EXPECT_TRUE(load.at("mapped").AsBool());
  EXPECT_EQ(load.at("rows").AsNumber(), 12.0);
  EXPECT_EQ(load.at("attributes").AsNumber(), 3.0);

  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"m","method":"k-modes","k":2,)"
                R"("seed":5})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"m","epsilon":2.0})"));
  const JsonValue explain = Call(
      engine, R"({"op":"explain","session":"bob","epsilon":0.5,"seed":3})");
  ExpectOk(explain);
  EXPECT_FALSE(explain.at("text").AsString().empty());
  std::remove(path.c_str());
}

TEST(ServiceTest, AppendToMappedDatasetGrowsTheFileOnDisk) {
  ServiceEngine engine(DebugNoise());
  const std::string path = WriteSmallColumnar("grow", /*capacity_rows=*/64);
  ExpectOk(Call(engine,
                R"({"op":"load_dataset","name":"m","source":"dpxcol",)"
                R"("path":")" + path + R"("})"));
  // Mix label-string and numeric-code cells in one batch.
  const JsonValue append = Call(
      engine, R"({"op":"append_rows","dataset":"m",)"
              R"("rows":[["red","xl","hi"],[2,0,0]]})");
  ExpectOk(append);
  EXPECT_EQ(append.at("rows").AsNumber(), 14.0);

  // The durable file — reopened offline — has the new rows committed.
  auto reopened = MappedColumnar::Open(path, {/*verify_data=*/true});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_rows(), 14u);
  auto offline = Dataset::FromMapped(*reopened);
  ASSERT_TRUE(offline.ok()) << offline.status();
  EXPECT_EQ(offline->Row(12), (std::vector<ValueCode>{0, 3, 1}));
  EXPECT_EQ(offline->Row(13), (std::vector<ValueCode>{2, 0, 0}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpclustx::service
