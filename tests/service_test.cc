// End-to-end tests for the explanation service: protocol round-trips,
// post-processing-free cache hits, multi-tenant budget isolation, the
// cross-session dataset cap, and queue backpressure.

#include "service/service_engine.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dpclustx::service {
namespace {

JsonValue Parse(const std::string& text) {
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " in: " << text;
  return std::move(*parsed);
}

JsonValue Call(ServiceEngine& engine, const std::string& request) {
  return Parse(engine.Handle(request));
}

void ExpectOk(const JsonValue& response) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  EXPECT_TRUE(response.at("ok").AsBool()) << response.Dump();
}

void ExpectError(const JsonValue& response, const std::string& code) {
  ASSERT_TRUE(response.Has("ok")) << response.Dump();
  ASSERT_FALSE(response.at("ok").AsBool()) << response.Dump();
  EXPECT_EQ(response.at("error").at("code").AsString(), code)
      << response.Dump();
}

/// Engine options for tests that pin mechanism seeds. Deterministic noise
/// is a test-only configuration: a default-configured engine rejects
/// client-supplied seeds on noisy ops (see SeedsAreRejectedInSecureMode).
ServiceEngineOptions DebugNoise() {
  ServiceEngineOptions options;
  options.insecure_deterministic_noise = true;
  return options;
}

/// Loads a small synthetic dataset and clusters it (k-means, free).
void SetUpDataset(ServiceEngine& engine, double cap_epsilon = 0.0) {
  JsonValue load = Call(engine,
                        R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                        R"("generator":"diabetes","rows":1500,"seed":7,)"
                        R"("cap_epsilon":)" +
                            std::to_string(cap_epsilon) + "}");
  ExpectOk(load);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
}

TEST(ServiceTest, PingRoundTripEchoesId) {
  ServiceEngine engine;
  const JsonValue response = Call(engine, R"({"op":"ping","id":"abc"})");
  ExpectOk(response);
  EXPECT_EQ(response.at("id").AsString(), "abc");
  EXPECT_TRUE(response.at("pong").AsBool());
}

TEST(ServiceTest, MalformedRequestsGetErrorResponsesNotCrashes) {
  ServiceEngine engine;
  ExpectError(Call(engine, "this is not json"), "InvalidArgument");
  ExpectError(Call(engine, "[1,2,3]"), "InvalidArgument");
  ExpectError(Call(engine, R"({"no_op_field":1})"), "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"frobnicate"})"), "NotFound");
  ExpectError(Call(engine, R"({"op":"explain","session":"ghost"})"),
              "NotFound");
}

TEST(ServiceTest, ExplainProtocolRoundTrip) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const JsonValue response =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":11})");
  ExpectOk(response);
  EXPECT_FALSE(response.at("cache_hit").AsBool());
  EXPECT_NEAR(response.at("epsilon_charged").AsNumber(), 0.3, 1e-12);
  EXPECT_NEAR(response.at("epsilon_remaining").AsNumber(), 0.7, 1e-12);
  ASSERT_TRUE(response.Has("explanation"));
  EXPECT_FALSE(response.at("text").AsString().empty());

  // The ledger reflects the single atomic charge.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  ExpectOk(budget);
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);
  EXPECT_EQ(budget.at("ledger").size(), 1u);
}

TEST(ServiceTest, CacheHitIsByteIdenticalAndFree) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const std::string request =
      R"({"op":"explain","session":"alice","epsilon":0.3,"seed":11})";
  const JsonValue first = Call(engine, request);
  ExpectOk(first);
  ASSERT_FALSE(first.at("cache_hit").AsBool());

  const JsonValue second = Call(engine, request);
  ExpectOk(second);
  EXPECT_TRUE(second.at("cache_hit").AsBool());
  // The release itself is byte-identical post-processing...
  EXPECT_EQ(second.at("explanation").Dump(), first.at("explanation").Dump());
  EXPECT_EQ(second.at("text").AsString(), first.at("text").AsString());
  // ...and costs zero additional ε.
  EXPECT_EQ(second.at("epsilon_charged").AsNumber(), 0.0);
  EXPECT_EQ(second.at("epsilon_remaining").AsNumber(),
            first.at("epsilon_remaining").AsNumber());
  EXPECT_EQ(engine.cache().hits(), 1u);

  // A different seed is a different release: fresh noise, fresh charge.
  const JsonValue third = Call(
      engine,
      R"({"op":"explain","session":"alice","epsilon":0.3,"seed":12})");
  ExpectOk(third);
  EXPECT_FALSE(third.at("cache_hit").AsBool());
  EXPECT_NEAR(third.at("epsilon_remaining").AsNumber(), 0.4, 1e-12);
}

TEST(ServiceTest, ExhaustedSessionGetsCleanOutOfBudget) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  // Enough for one explain at 0.3, not two.
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":0.5})"));
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                        R"("seed":11})"));
  const JsonValue refused =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":12})");
  ExpectError(refused, "OutOfBudget");
  // The refusal leaks nothing: no histogram payload, no exact counts —
  // just the error object (plus ok/id bookkeeping).
  EXPECT_FALSE(refused.Has("explanation"));
  EXPECT_FALSE(refused.Has("text"));
  // And it charged nothing.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);

  // The cached release from before exhaustion is still free to re-serve.
  const JsonValue cached =
      Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                   R"("seed":11})");
  ExpectOk(cached);
  EXPECT_TRUE(cached.at("cache_hit").AsBool());
}

TEST(ServiceTest, SessionsAreIsolated) {
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":0.25})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":1.0})"));
  // Alice burns her whole budget...
  ExpectOk(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                        R"("epsilon":0.25})"));
  ExpectError(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                           R"("epsilon":0.01})"),
              "OutOfBudget");
  // ...and Bob's is untouched.
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  ExpectOk(bob);
  EXPECT_EQ(bob.at("spent").AsNumber(), 0.0);
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.01})"));
  // Duplicate session ids are refused (a second "alice" would reset her
  // ledger).
  ExpectError(Call(engine, R"({"op":"create_session","session":"alice",)"
                           R"("dataset":"d","epsilon":9.0})"),
              "FailedPrecondition");
}

TEST(ServiceTest, DatasetCapBoundsAllSessionsTogether) {
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine, /*cap_epsilon=*/0.5);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine, R"({"op":"explain","session":"alice","epsilon":0.3,)"
                        R"("seed":11})"));
  // Bob has plenty of session budget, but the dataset-wide cap (0.5) has
  // only 0.2 left.
  const JsonValue refused =
      Call(engine, R"({"op":"explain","session":"bob","epsilon":0.3,)"
                   R"("seed":12})");
  ExpectError(refused, "OutOfBudget");
  // A smaller request that fits under the cap still works.
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.1})"));
  // The refused charge did not touch Bob's session ledger.
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  EXPECT_NEAR(bob.at("spent").AsNumber(), 0.1, 1e-12);
  EXPECT_NEAR(bob.at("dataset_cap_remaining").AsNumber(), 0.1, 1e-12);
}

TEST(ServiceTest, ClusterResponseCarriesNoExactSizes) {
  ServiceEngine engine;
  const JsonValue load =
      Call(engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
                   R"("generator":"diabetes","rows":1500,"seed":7})");
  ExpectOk(load);
  const JsonValue clustered =
      Call(engine, R"({"op":"cluster","dataset":"d","method":"k-means",)"
                   R"("k":3,"seed":3})");
  ExpectOk(clustered);
  EXPECT_FALSE(clustered.Has("sizes"));
  EXPECT_FALSE(clustered.Has("cluster_sizes"));
  // Re-issuing the identical cluster request is idempotent; a conflicting
  // one is refused (views are immutable).
  ExpectOk(Call(engine, R"({"op":"cluster","dataset":"d","method":"k-means",)"
                        R"("k":3,"seed":3})"));
  ExpectError(Call(engine,
                   R"({"op":"cluster","dataset":"d","method":"k-means",)"
                   R"("k":4,"seed":3})"),
              "FailedPrecondition");
}

TEST(ServiceTest, AsyncBackpressureRejectsWithoutLosingAcceptedWork) {
  // Single worker blocked on a gate; the queue (capacity 2) fills, then
  // further submissions must be rejected via Status, and every accepted
  // request must still be answered after the gate opens.
  ServiceEngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  ServiceEngine engine(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool gate_open = false;
  bool worker_busy = false;
  std::vector<std::string> responses;

  const Status head = engine.pool().TrySubmit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    worker_busy = true;
    cv.notify_all();
    cv.wait(lock, [&] { return gate_open; });
  });
  ASSERT_TRUE(head.ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return worker_busy; });
  }

  auto collect = [&](std::string response) {
    std::lock_guard<std::mutex> lock(mutex);
    responses.push_back(std::move(response));
  };
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string request =
        R"({"op":"ping","id":)" + std::to_string(i) + "}";
    const Status submitted = engine.HandleAsync(request, collect);
    if (submitted.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(submitted.code(), StatusCode::kResourceExhausted);
      // The server turns the rejection into a busy response for the client.
      const JsonValue busy =
          Parse(ServiceEngine::RejectionResponse(request, submitted));
      EXPECT_FALSE(busy.at("ok").AsBool());
      EXPECT_EQ(busy.at("error").at("code").AsString(), "ResourceExhausted");
      EXPECT_EQ(busy.at("id").AsNumber(), static_cast<double>(i));
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);  // exactly the queue capacity
  EXPECT_EQ(rejected, 4);

  {
    std::lock_guard<std::mutex> lock(mutex);
    gate_open = true;
  }
  cv.notify_all();
  engine.Shutdown();  // drains the two accepted pings
  ASSERT_EQ(responses.size(), 2u);
  std::set<double> ids;
  for (const std::string& response : responses) {
    const JsonValue parsed = Parse(response);
    EXPECT_TRUE(parsed.at("ok").AsBool());
    ids.insert(parsed.at("id").AsNumber());
  }
  EXPECT_EQ(ids, (std::set<double>{0.0, 1.0}));
}

TEST(ServiceTest, ConcurrentMixedLoadIsRaceFreeAndBudgetExact) {
  // Many concurrent queries against one session: the total spend must come
  // out exact regardless of interleaving, and no request may crash. Run
  // under TSan by scripts/check.sh.
  ServiceEngine engine(DebugNoise());
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":100.0})"));

  constexpr int kRequests = 40;
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kRequests; ++i) {
    const std::string request =
        R"({"op":"size","session":"alice","cluster":0,"epsilon":0.5,"seed":)" +
        std::to_string(i) + "}";
    const Status submitted =
        engine.HandleAsync(request, [&](std::string response) {
          if (Parse(response).at("ok").AsBool()) ++ok_count;
          std::lock_guard<std::mutex> lock(mutex);
          ++completed;
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return completed == kRequests; });
  }
  EXPECT_EQ(ok_count.load(), kRequests);
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.5 * kRequests, 1e-9);
  EXPECT_EQ(budget.at("ledger").size(), static_cast<size_t>(kRequests));
}

TEST(ServiceTest, SeedsAreRejectedInSecureMode) {
  // A default-configured engine must refuse client-supplied noise seeds on
  // every noisy op: the mechanism noise is data-independent, so a client
  // who chose the seed could subtract the noise and recover exact counts.
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const JsonValue schema = Call(engine, R"({"op":"schema","dataset":"d"})");
  ExpectOk(schema);
  const std::string attr =
      schema.at("attributes").at(0).at("name").AsString();

  ExpectError(Call(engine, R"({"op":"explain","session":"alice",)"
                           R"("epsilon":0.3,"seed":11})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"hist","session":"alice","attribute":")" +
                               attr + R"(","epsilon":0.02,"seed":11})"),
              "InvalidArgument");
  ExpectError(Call(engine, R"({"op":"size","session":"alice","cluster":0,)"
                           R"("epsilon":0.01,"seed":11})"),
              "InvalidArgument");
  // Refusals charge nothing.
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_EQ(budget.at("spent").AsNumber(), 0.0);
}

TEST(ServiceTest, ServerSeededExplainsStillCacheHit) {
  // Without client seeds, a repeated identical request re-serves the first
  // (server-seeded) release byte-identically at zero additional ε.
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":1.0})"));
  const std::string request =
      R"({"op":"explain","session":"alice","epsilon":0.3})";
  const JsonValue first = Call(engine, request);
  ExpectOk(first);
  ASSERT_FALSE(first.at("cache_hit").AsBool());
  const JsonValue second = Call(engine, request);
  ExpectOk(second);
  EXPECT_TRUE(second.at("cache_hit").AsBool());
  EXPECT_EQ(second.at("explanation").Dump(), first.at("explanation").Dump());
  EXPECT_EQ(second.at("epsilon_charged").AsNumber(), 0.0);
}

TEST(ServiceTest, ConcurrentIdenticalExplainsChargeOnce) {
  // N identical explain requests race through the pool: exactly one may
  // spend ε and compute; the others must wait for it in flight and take
  // the cache hit (a dual charge would silently burn double budget).
  ServiceEngine engine;
  SetUpDataset(engine);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  constexpr int kRequests = 8;
  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  std::vector<std::string> responses;
  for (int i = 0; i < kRequests; ++i) {
    const Status submitted = engine.HandleAsync(
        R"({"op":"explain","session":"alice","epsilon":0.3})",
        [&](std::string response) {
          std::lock_guard<std::mutex> lock(mutex);
          responses.push_back(std::move(response));
          ++completed;
          cv.notify_all();
        });
    ASSERT_TRUE(submitted.ok());
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return completed == kRequests; });
  }
  int misses = 0;
  double charged = 0.0;
  for (const std::string& response : responses) {
    const JsonValue parsed = Parse(response);
    ExpectOk(parsed);
    if (!parsed.at("cache_hit").AsBool()) ++misses;
    charged += parsed.at("epsilon_charged").AsNumber();
  }
  EXPECT_EQ(misses, 1);
  EXPECT_NEAR(charged, 0.3, 1e-12);
  const JsonValue budget =
      Call(engine, R"({"op":"budget","session":"alice"})");
  EXPECT_NEAR(budget.at("spent").AsNumber(), 0.3, 1e-12);
  EXPECT_EQ(budget.at("ledger").size(), 1u);
}

TEST(ServiceTest, ReplacingDatasetDoesNotResetCap) {
  // Re-registering the same underlying data with replace=true must carry
  // the cross-session cap's spend forward — otherwise any client could
  // reset the dataset-wide ε bound in one request.
  ServiceEngine engine;
  SetUpDataset(engine, /*cap_epsilon=*/0.5);
  ExpectOk(Call(engine, R"({"op":"create_session","session":"alice",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine,
                R"({"op":"explain","session":"alice","epsilon":0.3})"));

  // Same source (generator/rows/seed), bigger requested cap: the cap can
  // be tightened but never raised or reset by a replacement.
  const JsonValue reloaded = Call(
      engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
              R"("generator":"diabetes","rows":1500,"seed":7,)"
              R"("cap_epsilon":100.0,"replace":true})");
  ExpectOk(reloaded);
  EXPECT_NEAR(reloaded.at("cap_epsilon").AsNumber(), 0.5, 1e-12);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"bob",)"
                        R"("dataset":"d","epsilon":10.0})"));
  // Only 0.5 - 0.3 = 0.2 of the cap survives the replacement.
  ExpectError(Call(engine,
                   R"({"op":"explain","session":"bob","epsilon":0.3})"),
              "OutOfBudget");
  ExpectOk(Call(engine, R"({"op":"size","session":"bob","cluster":0,)"
                        R"("epsilon":0.1})"));
  const JsonValue bob = Call(engine, R"({"op":"budget","session":"bob"})");
  ExpectOk(bob);
  EXPECT_NEAR(bob.at("dataset_cap_remaining").AsNumber(), 0.1, 1e-9);

  // A genuinely different source (other row count) is new data and gets
  // the cap it asks for.
  const JsonValue fresh = Call(
      engine, R"({"op":"load_dataset","name":"d","source":"synthetic",)"
              R"("generator":"diabetes","rows":1600,"seed":7,)"
              R"("cap_epsilon":0.5,"replace":true})");
  ExpectOk(fresh);
  ExpectOk(Call(engine,
                R"({"op":"cluster","dataset":"d","method":"k-means","k":3,)"
                R"("seed":3})"));
  ExpectOk(Call(engine, R"({"op":"create_session","session":"carol",)"
                        R"("dataset":"d","epsilon":10.0})"));
  ExpectOk(Call(engine,
                R"({"op":"explain","session":"carol","epsilon":0.3})"));
}

}  // namespace
}  // namespace dpclustx::service
