#include "data/schema.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Schema MakeSchema() {
  return Schema({Attribute("age", {"[0,30)", "[30,60)", "[60,90)"}),
                 Attribute("gender", {"F", "M"})});
}

TEST(AttributeTest, BasicAccessors) {
  const Attribute attr("color", {"red", "green", "blue"});
  EXPECT_EQ(attr.name(), "color");
  EXPECT_EQ(attr.domain_size(), 3u);
  EXPECT_EQ(attr.label(1), "green");
}

TEST(AttributeTest, AnonymousDomainLabels) {
  const Attribute attr = Attribute::WithAnonymousDomain("x", 4);
  EXPECT_EQ(attr.domain_size(), 4u);
  EXPECT_EQ(attr.label(0), "v0");
  EXPECT_EQ(attr.label(3), "v3");
}

TEST(AttributeTest, CodeOfFindsAndFails) {
  const Attribute attr("color", {"red", "green"});
  ASSERT_TRUE(attr.CodeOf("green").ok());
  EXPECT_EQ(attr.CodeOf("green").value(), 1u);
  EXPECT_EQ(attr.CodeOf("mauve").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, FindAttribute) {
  const Schema schema = MakeSchema();
  ASSERT_TRUE(schema.FindAttribute("gender").ok());
  EXPECT_EQ(schema.FindAttribute("gender").value(), 1u);
  EXPECT_EQ(schema.FindAttribute("zip").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeSchema().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEmptySchema) {
  EXPECT_EQ(Schema(std::vector<Attribute>{}).Validate().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsDuplicateAttributeNames) {
  const Schema schema({Attribute("a", {"x"}), Attribute("a", {"y"})});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEmptyDomain) {
  const Schema schema({Attribute("a", std::vector<std::string>{})});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsDuplicateLabels) {
  const Schema schema({Attribute("a", {"x", "x"})});
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ProjectKeepsOrder) {
  const Schema projected = MakeSchema().Project({1, 0});
  ASSERT_EQ(projected.num_attributes(), 2u);
  EXPECT_EQ(projected.attribute(0).name(), "gender");
  EXPECT_EQ(projected.attribute(1).name(), "age");
}

TEST(SchemaTest, ProjectSubset) {
  const Schema projected = MakeSchema().Project({1});
  ASSERT_EQ(projected.num_attributes(), 1u);
  EXPECT_EQ(projected.attribute(0).name(), "gender");
}

}  // namespace
}  // namespace dpclustx
