#include "cluster/kmodes.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dpclustx {
namespace {

TEST(KModesTest, ValidatesOptions) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(10, 3, 9, 1);
  KModesOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(FitKModes(dataset, options).ok());
  options.num_clusters = 1000;
  EXPECT_FALSE(FitKModes(dataset, options).ok());
}

TEST(KModesTest, RecoversTwoSeparatedBlocks) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(500, 6, 9, 2);
  KModesOptions options;
  options.num_clusters = 2;
  options.seed = 3;
  const auto clustering = FitKModes(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const std::vector<ClusterId> labels = (*clustering)->AssignAll(dataset);
  EXPECT_GT(testutil::TwoBlockPurity(labels), 0.95);
}

TEST(KModesTest, DeterministicGivenSeed) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(300, 4, 9, 4);
  KModesOptions options;
  options.num_clusters = 3;
  options.seed = 5;
  const auto a = FitKModes(dataset, options);
  const auto b = FitKModes(dataset, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->AssignAll(dataset), (*b)->AssignAll(dataset));
}

TEST(KModesTest, ModesAreValidTuples) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(100, 3, 5, 6);
  KModesOptions options;
  options.num_clusters = 2;
  const auto clustering = FitKModes(dataset, options);
  ASSERT_TRUE(clustering.ok());
  const auto* modes =
      dynamic_cast<const ModeClustering*>(clustering->get());
  ASSERT_NE(modes, nullptr);
  for (const auto& mode : modes->modes()) {
    ASSERT_EQ(mode.size(), 3u);
    for (ValueCode code : mode) EXPECT_LT(code, 5u);
  }
}

TEST(KModesTest, NameDescribesConfiguration) {
  const Dataset dataset = testutil::MakeTwoBlockDataset(50, 2, 5, 7);
  KModesOptions options;
  options.num_clusters = 2;
  const auto clustering = FitKModes(dataset, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ((*clustering)->name(), "k-modes(k=2)");
}

}  // namespace
}  // namespace dpclustx
