#include "data/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(HistogramTest, ZeroInitialized) {
  Histogram h(4);
  EXPECT_EQ(h.domain_size(), 4u);
  EXPECT_DOUBLE_EQ(h.Total(), 0.0);
}

TEST(HistogramTest, IncrementAndTotal) {
  Histogram h(3);
  h.Increment(0);
  h.Increment(0);
  h.Increment(2, 3.0);
  EXPECT_DOUBLE_EQ(h.bin(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin(1), 0.0);
  EXPECT_DOUBLE_EQ(h.bin(2), 3.0);
  EXPECT_DOUBLE_EQ(h.Total(), 5.0);
}

TEST(HistogramTest, NormalizedSumsToOne) {
  Histogram h({1.0, 3.0, 0.0, 4.0});
  const std::vector<double> p = h.Normalized();
  EXPECT_DOUBLE_EQ(p[0], 0.125);
  EXPECT_DOUBLE_EQ(p[1], 0.375);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[3], 0.5);
}

TEST(HistogramTest, EmptyHistogramNormalizesToUniform) {
  Histogram h(4);
  const std::vector<double> p = h.Normalized();
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(HistogramTest, ArgMaxBreaksTiesLow) {
  EXPECT_EQ(Histogram({1.0, 5.0, 5.0}).ArgMax(), 1u);
  EXPECT_EQ(Histogram({9.0, 1.0}).ArgMax(), 0u);
}

TEST(HistogramTest, L1Distance) {
  const Histogram a({1.0, 2.0, 3.0});
  const Histogram b({2.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(a, b), 3.0);
}

TEST(HistogramTest, TvdOfIdenticalDistributionsIsZero) {
  const Histogram a({2.0, 4.0});
  const Histogram b({1.0, 2.0});  // same distribution, different scale
  EXPECT_NEAR(Histogram::Tvd(a, b), 0.0, 1e-12);
}

TEST(HistogramTest, TvdOfDisjointSupportIsOne) {
  const Histogram a({5.0, 0.0});
  const Histogram b({0.0, 7.0});
  EXPECT_DOUBLE_EQ(Histogram::Tvd(a, b), 1.0);
}

TEST(HistogramTest, TvdKnownValue) {
  const Histogram a({3.0, 1.0});  // (0.75, 0.25)
  const Histogram b({1.0, 3.0});  // (0.25, 0.75)
  EXPECT_DOUBLE_EQ(Histogram::Tvd(a, b), 0.5);
}

TEST(HistogramTest, JensenShannonBounds) {
  const Histogram same_a({2.0, 2.0});
  const Histogram same_b({5.0, 5.0});
  EXPECT_NEAR(Histogram::JensenShannonDistance(same_a, same_b), 0.0, 1e-9);
  const Histogram dis_a({1.0, 0.0});
  const Histogram dis_b({0.0, 1.0});
  // Disjoint support: JS distance (base 2) is exactly 1.
  EXPECT_NEAR(Histogram::JensenShannonDistance(dis_a, dis_b), 1.0, 1e-9);
}

TEST(HistogramTest, JensenShannonSymmetric) {
  const Histogram a({3.0, 1.0, 2.0});
  const Histogram b({1.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(Histogram::JensenShannonDistance(a, b),
                   Histogram::JensenShannonDistance(b, a));
}

TEST(HistogramTest, SubtractClampedFloorsAtZero) {
  const Histogram full({5.0, 2.0, 1.0});
  const Histogram part({2.0, 3.0, 0.0});
  const Histogram out = full.SubtractClamped(part);
  EXPECT_DOUBLE_EQ(out.bin(0), 3.0);
  EXPECT_DOUBLE_EQ(out.bin(1), 0.0);  // clamped, not −1
  EXPECT_DOUBLE_EQ(out.bin(2), 1.0);
}

TEST(HistogramTest, PlusAddsBinwise) {
  const Histogram sum = Histogram({1.0, 2.0}).Plus(Histogram({3.0, 4.0}));
  EXPECT_DOUBLE_EQ(sum.bin(0), 4.0);
  EXPECT_DOUBLE_EQ(sum.bin(1), 6.0);
}

TEST(HistogramTest, RoundedNonNegative) {
  const Histogram rounded =
      Histogram({-2.3, 0.4, 1.6}).RoundedNonNegative();
  EXPECT_DOUBLE_EQ(rounded.bin(0), 0.0);
  EXPECT_DOUBLE_EQ(rounded.bin(1), 0.0);
  EXPECT_DOUBLE_EQ(rounded.bin(2), 2.0);
}

TEST(HistogramTest, AsciiArtMentionsLabelsAndPercents) {
  const Attribute attr("size", {"small", "large"});
  const std::string art = Histogram({1.0, 3.0}).ToAsciiArt(attr);
  EXPECT_NE(art.find("small"), std::string::npos);
  EXPECT_NE(art.find("large"), std::string::npos);
  EXPECT_NE(art.find("75.0%"), std::string::npos);
}

}  // namespace
}  // namespace dpclustx
