#include "data/dataset.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Dataset MakeDataset() {
  Schema schema({Attribute::WithAnonymousDomain("a", 3),
                 Attribute::WithAnonymousDomain("b", 2)});
  Dataset dataset(schema);
  // rows: (0,0) (1,1) (2,0) (1,0)
  dataset.AppendRowUnchecked({0, 0});
  dataset.AppendRowUnchecked({1, 1});
  dataset.AppendRowUnchecked({2, 0});
  dataset.AppendRowUnchecked({1, 0});
  return dataset;
}

TEST(DatasetTest, AppendRowValidates) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  EXPECT_TRUE(dataset.AppendRow({1}).ok());
  EXPECT_FALSE(dataset.AppendRow({2}).ok());      // out of domain
  EXPECT_FALSE(dataset.AppendRow({0, 0}).ok());   // wrong arity
  EXPECT_EQ(dataset.num_rows(), 1u);
}

TEST(DatasetTest, CellAndRowAccess) {
  const Dataset dataset = MakeDataset();
  EXPECT_EQ(dataset.num_rows(), 4u);
  EXPECT_EQ(dataset.at(2, 0), 2u);
  EXPECT_EQ(dataset.Row(1), (std::vector<ValueCode>{1, 1}));
}

TEST(DatasetTest, ComputeHistogram) {
  const Dataset dataset = MakeDataset();
  const Histogram h = dataset.ComputeHistogram(0);
  EXPECT_DOUBLE_EQ(h.bin(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin(2), 1.0);
}

TEST(DatasetTest, ComputeHistogramOnRowSubset) {
  const Dataset dataset = MakeDataset();
  const Histogram h = dataset.ComputeHistogram(1, {0, 1});
  EXPECT_DOUBLE_EQ(h.bin(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin(1), 1.0);
}

TEST(DatasetTest, GroupHistogramsPartitionTheColumn) {
  const Dataset dataset = MakeDataset();
  const std::vector<uint32_t> labels = {0, 1, 0, 1};
  const std::vector<Histogram> groups =
      dataset.ComputeGroupHistograms(0, labels, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_DOUBLE_EQ(groups[0].bin(0), 1.0);
  EXPECT_DOUBLE_EQ(groups[0].bin(2), 1.0);
  EXPECT_DOUBLE_EQ(groups[1].bin(1), 2.0);
  // Partition property: group histograms sum to the full histogram.
  const Histogram sum = groups[0].Plus(groups[1]);
  EXPECT_DOUBLE_EQ(Histogram::L1Distance(sum, dataset.ComputeHistogram(0)),
                   0.0);
}

TEST(DatasetTest, GroupHistogramsAllowEmptyGroups) {
  const Dataset dataset = MakeDataset();
  const std::vector<uint32_t> labels = {0, 0, 0, 0};
  const std::vector<Histogram> groups =
      dataset.ComputeGroupHistograms(0, labels, 3);
  EXPECT_DOUBLE_EQ(groups[1].Total(), 0.0);
  EXPECT_DOUBLE_EQ(groups[2].Total(), 0.0);
}

TEST(DatasetTest, SelectRowsKeepsOrderAndDuplicates) {
  const Dataset dataset = MakeDataset();
  const Dataset subset = dataset.SelectRows({3, 3, 0});
  ASSERT_EQ(subset.num_rows(), 3u);
  EXPECT_EQ(subset.at(0, 0), 1u);
  EXPECT_EQ(subset.at(1, 0), 1u);
  EXPECT_EQ(subset.at(2, 0), 0u);
}

TEST(DatasetTest, SelectAttributesProjectsSchema) {
  const Dataset dataset = MakeDataset();
  const Dataset projected = dataset.SelectAttributes({1});
  EXPECT_EQ(projected.num_attributes(), 1u);
  EXPECT_EQ(projected.schema().attribute(0).name(), "b");
  EXPECT_EQ(projected.num_rows(), 4u);
  EXPECT_EQ(projected.at(1, 0), 1u);
}

TEST(DatasetTest, SampleRowsFractionBounds) {
  const Dataset dataset = MakeDataset();
  Rng rng(1);
  EXPECT_EQ(dataset.SampleRows(0.0, rng).num_rows(), 0u);
  EXPECT_EQ(dataset.SampleRows(1.0, rng).num_rows(), 4u);
}

TEST(DatasetTest, SampleRowsApproximatesFraction) {
  Schema schema({Attribute::WithAnonymousDomain("a", 2)});
  Dataset dataset(schema);
  for (int i = 0; i < 10000; ++i) dataset.AppendRowUnchecked({0});
  Rng rng(5);
  const size_t kept = dataset.SampleRows(0.3, rng).num_rows();
  EXPECT_NEAR(static_cast<double>(kept), 3000.0, 200.0);
}

}  // namespace
}  // namespace dpclustx
