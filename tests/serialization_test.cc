#include "core/serialization.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

Schema MakeSchema() {
  return Schema({Attribute("lab_proc", {"[0,40)", "[40,80)"}),
                 Attribute("gender", {"F", "M"}),
                 Attribute("diag", {"Circulatory", "Diabetes", "Injury"})});
}

GlobalExplanation MakeExplanation() {
  GlobalExplanation explanation;
  explanation.combination = {0, 2};
  explanation.candidate_sets = {{0, 1, 2}, {2, 0, 1}};
  SingleClusterExplanation e0;
  e0.cluster = 0;
  e0.attribute = 0;
  e0.inside = Histogram({10.0, 90.0});
  e0.outside = Histogram({55.5, 44.5});
  SingleClusterExplanation e1;
  e1.cluster = 1;
  e1.attribute = 2;
  e1.inside = Histogram({1.0, 2.0, 3.0});
  e1.outside = Histogram({30.0, 20.0, 10.0});
  explanation.per_cluster = {e0, e1};
  return explanation;
}

TEST(SchemaJsonTest, RoundTrip) {
  const Schema schema = MakeSchema();
  const std::string json = SchemaToJson(schema);
  const auto parsed = SchemaFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_attributes(), 3u);
  EXPECT_EQ(parsed->attribute(0).name(), "lab_proc");
  EXPECT_EQ(parsed->attribute(2).value_labels(),
            schema.attribute(2).value_labels());
}

TEST(SchemaJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(SchemaFromJson("{}").ok());
  EXPECT_FALSE(SchemaFromJson(R"({"attributes": 3})").ok());
  EXPECT_FALSE(
      SchemaFromJson(R"({"attributes": [{"name": "a"}]})").ok());
  // Duplicate attribute names fail schema validation.
  EXPECT_FALSE(SchemaFromJson(
                   R"({"attributes": [{"name":"a","domain":["x"]},
                                       {"name":"a","domain":["y"]}]})")
                   .ok());
}

TEST(ExplanationJsonTest, RoundTrip) {
  const Schema schema = MakeSchema();
  const GlobalExplanation original = MakeExplanation();
  const std::string json = ExplanationToJson(original, schema);
  const auto parsed = ExplanationFromJson(json, schema);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->combination, original.combination);
  EXPECT_EQ(parsed->candidate_sets, original.candidate_sets);
  ASSERT_EQ(parsed->per_cluster.size(), 2u);
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(parsed->per_cluster[c].cluster,
              original.per_cluster[c].cluster);
    EXPECT_EQ(parsed->per_cluster[c].attribute,
              original.per_cluster[c].attribute);
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(parsed->per_cluster[c].inside,
                              original.per_cluster[c].inside),
        0.0);
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(parsed->per_cluster[c].outside,
                              original.per_cluster[c].outside),
        0.0);
  }
}

TEST(ExplanationJsonTest, UsesAttributeNames) {
  const std::string json =
      ExplanationToJson(MakeExplanation(), MakeSchema());
  EXPECT_NE(json.find("\"lab_proc\""), std::string::npos);
  EXPECT_NE(json.find("\"diag\""), std::string::npos);
  EXPECT_NE(json.find("\"candidate_sets\""), std::string::npos);
}

TEST(ExplanationJsonTest, UnknownAttributeNameFails) {
  const auto parsed = ExplanationFromJson(
      R"({"combination": ["nonexistent"]})", MakeSchema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

TEST(ExplanationJsonTest, HistogramDomainMismatchFails) {
  // lab_proc has 2 bins; give it 3.
  const auto parsed = ExplanationFromJson(
      R"({"combination": ["lab_proc"],
          "clusters": [{"cluster": 0, "attribute": "lab_proc",
                         "inside": [1,2,3], "outside": [1,2]}]})",
      MakeSchema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplanationJsonTest, SelectionOnlyExplanationRoundTrips) {
  GlobalExplanation selection_only;
  selection_only.combination = {1, 1};
  const Schema schema = MakeSchema();
  const auto parsed = ExplanationFromJson(
      ExplanationToJson(selection_only, schema), schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->combination, selection_only.combination);
  EXPECT_TRUE(parsed->per_cluster.empty());
}

}  // namespace
}  // namespace dpclustx
