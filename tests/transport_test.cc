// Tests for the socket transport (service/transport.h): address parsing,
// the epoll echo path under concurrent clients, per-connection rejection of
// torn/oversized/garbage frames, write backpressure, and an end-to-end run
// of the real dpclustx_router in socket mode.
//
// The in-process tests run a Transport whose frame handler echoes (or
// transforms) frames, driven by ClientChannel connections from test
// threads — the same client class the tools use, so both halves of the
// framing contract are exercised together. The e2e section forks the real
// router + serve binaries (skipped, loudly, if the binaries are missing —
// ctest builds them via add_dependencies).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/status.h"
#include "service/transport.h"

namespace dpclustx::service {
namespace {

using dpclustx::JsonValue;
using dpclustx::Status;
using dpclustx::StatusCode;
using dpclustx::StatusOr;

std::string TestSocketPath(const std::string& tag) {
  // Unix socket paths are limited to ~108 bytes; keep them short and
  // per-process so parallel ctest invocations cannot collide.
  return "/tmp/dpx_tt_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

TEST(ParseListenAddressTest, UnixSpec) {
  StatusOr<ListenAddress> addr = ParseListenAddress("unix:/tmp/x.sock");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->kind, ListenAddress::Kind::kUnix);
  EXPECT_EQ(addr->path, "/tmp/x.sock");
}

TEST(ParseListenAddressTest, TcpPortOnly) {
  StatusOr<ListenAddress> addr = ParseListenAddress("tcp:8080");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->kind, ListenAddress::Kind::kTcp);
  EXPECT_EQ(addr->host, "127.0.0.1");
  EXPECT_EQ(addr->port, 8080);
}

TEST(ParseListenAddressTest, TcpHostAndPort) {
  StatusOr<ListenAddress> addr = ParseListenAddress("tcp:0.0.0.0:9999");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->host, "0.0.0.0");
  EXPECT_EQ(addr->port, 9999);
}

TEST(ParseListenAddressTest, Rejections) {
  EXPECT_FALSE(ParseListenAddress("").ok());
  EXPECT_FALSE(ParseListenAddress("http:8080").ok());
  EXPECT_FALSE(ParseListenAddress("unix:").ok());
  EXPECT_FALSE(ParseListenAddress("tcp:").ok());
  EXPECT_FALSE(ParseListenAddress("tcp:notaport").ok());
  EXPECT_FALSE(ParseListenAddress("tcp:70000").ok());
}

/// Transport bound to a fresh unix socket whose handler echoes each frame
/// prefixed with "echo:". Stops on destruction.
class EchoFixture {
 public:
  explicit EchoFixture(TransportOptions options = {},
                       const std::string& tag = "echo") {
    path_ = TestSocketPath(tag);
    transport_ = std::make_unique<Transport>(options);
    Status listen = transport_->Listen("unix:" + path_);
    EXPECT_TRUE(listen.ok()) << listen.ToString();
    Status start = transport_->Start([this](ConnId conn, std::string&& line) {
      frames_handled_.fetch_add(1);
      transport_->Send(conn, "echo:" + line);
    });
    EXPECT_TRUE(start.ok()) << start.ToString();
  }

  ~EchoFixture() {
    transport_->Stop();
    ::unlink(path_.c_str());
  }

  std::string spec() const { return "unix:" + path_; }
  Transport& transport() { return *transport_; }
  size_t frames_handled() const { return frames_handled_.load(); }

 private:
  std::string path_;
  std::unique_ptr<Transport> transport_;
  std::atomic<size_t> frames_handled_{0};
};

TEST(TransportTest, EchoRoundTrip) {
  EchoFixture fixture;
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  ASSERT_TRUE((*channel)->SendLine("hello").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(*reply, "echo:hello");
}

TEST(TransportTest, ManyConcurrentClientsNoLossNoCrosstalk) {
  EchoFixture fixture;
  constexpr size_t kClients = 16;
  constexpr size_t kPerClient = 50;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<ClientChannel>> channel =
          ClientChannel::Connect(fixture.spec());
      if (!channel.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Pipelined: send everything, then read everything. Echo order per
      // connection must be FIFO and no frame may leak across clients.
      for (size_t i = 0; i < kPerClient; ++i) {
        const std::string msg =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        if (!(*channel)->SendLine(msg).ok()) failures.fetch_add(1);
      }
      for (size_t i = 0; i < kPerClient; ++i) {
        StatusOr<std::string> reply = (*channel)->RecvLine(10000);
        const std::string expect =
            "echo:c" + std::to_string(c) + "-" + std::to_string(i);
        if (!reply.ok() || *reply != expect) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(fixture.frames_handled(), kClients * kPerClient);
}

TEST(TransportTest, EmptyAndCrTerminatedFrames) {
  EchoFixture fixture;
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(channel.ok());
  // Blank lines are skipped, \r\n framing is tolerated.
  ASSERT_TRUE((*channel)->SendLine("").ok());
  ASSERT_TRUE((*channel)->SendLine("a\r").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:a");
}

TEST(TransportTest, OversizedFrameRejectedWithoutKillingOthers) {
  TransportOptions options;
  options.max_frame_bytes = 128;
  EchoFixture fixture(options, "oversz");

  StatusOr<std::unique_ptr<ClientChannel>> bad =
      ClientChannel::Connect(fixture.spec());
  StatusOr<std::unique_ptr<ClientChannel>> good =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(bad.ok() && good.ok());

  ASSERT_TRUE((*bad)->SendLine(std::string(4096, 'x')).ok());
  StatusOr<std::string> rejection = (*bad)->RecvLine(5000);
  ASSERT_TRUE(rejection.ok()) << rejection.status().ToString();
  StatusOr<JsonValue> parsed = JsonValue::Parse(*rejection);
  ASSERT_TRUE(parsed.ok()) << *rejection;
  EXPECT_FALSE(parsed->at("ok").AsBool());
  EXPECT_EQ(parsed->at("error").at("code").AsString(), "InvalidArgument");
  // The offending connection is closed after the error flushes...
  StatusOr<std::string> after = (*bad)->RecvLine(5000);
  EXPECT_EQ(after.status().code(), StatusCode::kIoError);
  // ...while the well-behaved connection is untouched.
  ASSERT_TRUE((*good)->SendLine("still-fine").ok());
  StatusOr<std::string> reply = (*good)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:still-fine");
}

TEST(TransportTest, TornFrameAtEofIsDroppedNotDelivered) {
  EchoFixture fixture({}, "torn");
  {
    // Raw socket write with no trailing newline, then close: the torn
    // tail must never reach the frame handler.
    StatusOr<std::unique_ptr<ClientChannel>> channel =
        ClientChannel::Connect(fixture.spec());
    ASSERT_TRUE(channel.ok());
    const std::string partial = "torn-frame-no-newline";
    ASSERT_EQ(::write((*channel)->fd(), partial.data(), partial.size()),
              static_cast<ssize_t>(partial.size()));
  }  // channel closes here
  // A follow-up complete frame proves the loop is still serving.
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->SendLine("complete").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:complete");
  EXPECT_EQ(fixture.frames_handled(), 1u);  // only the complete frame
}

TEST(TransportTest, GarbageBytesGetPerFrameRejections) {
  // The transport itself is payload-agnostic (framing only); garbage
  // bytes form a frame like any other and reach the handler, which is
  // where protocol-level rejection lives. This pins that layering.
  EchoFixture fixture({}, "garbage");
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->SendLine("\x01\x02 not json at all").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:\x01\x02 not json at all");
}

TEST(TransportTest, TcpListenerOnEphemeralPort) {
  Transport transport;
  ASSERT_TRUE(transport.Listen("tcp:127.0.0.1:0").ok());
  const uint16_t port = transport.BoundPort(0);
  ASSERT_GT(port, 0);
  ASSERT_TRUE(transport.Start([&](ConnId conn, std::string&& line) {
    transport.Send(conn, "tcp:" + line);
  }).ok());
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect("tcp:127.0.0.1:" + std::to_string(port));
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  ASSERT_TRUE((*channel)->SendLine("ping").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "tcp:ping");
  transport.Stop();
}

TEST(TransportTest, SendToUnknownConnectionReturnsFalse) {
  EchoFixture fixture({}, "unknown");
  EXPECT_FALSE(fixture.transport().Send(kFirstConnId + 999, "nobody-home"));
}

TEST(TransportTest, QueuedBytesReflectsUndrainedResponsesAndSuspendsReads) {
  // A handler that answers with a payload bigger than the kernel socket
  // buffer, to a client that does not read: the remainder must sit in the
  // transport's out queue (visible through QueuedBytes — what the
  // router's shed check keys on), and because that backlog exceeds the
  // soft limit, further requests from this connection must not be
  // handled until the client drains.
  TransportOptions options;
  options.write_soft_limit_bytes = 8 << 10;
  options.write_hard_limit_bytes = 64 << 20;
  const std::string path = TestSocketPath("backpressure");
  Transport transport(options);
  ASSERT_TRUE(transport.Listen("unix:" + path).ok());
  // 4 MiB: far beyond any default unix-socket send buffer, so a single
  // response is guaranteed to leave a queued remainder.
  const std::string big(4 << 20, 'b');
  std::atomic<size_t> handled{0};
  std::atomic<ConnId> observed_conn{0};
  ASSERT_TRUE(transport.Start([&](ConnId conn, std::string&&) {
    observed_conn.store(conn);
    handled.fetch_add(1);
    transport.Send(conn, big);
  }).ok());

  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect("unix:" + path);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->SendLine("gimme").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (handled.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(handled.load(), 1u);
  // The un-flushed remainder is visible as queued bytes.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GT(transport.QueuedBytes(observed_conn.load()), 0u);

  // With the backlog above the soft limit, a second request must sit
  // unread in the socket rather than being handled.
  ASSERT_TRUE((*channel)->SendLine("more").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(handled.load(), 1u) << "reads were not suspended under backlog";

  // Draining the first response resumes reads; the second request is then
  // handled and answered — backpressure defers work, it must not lose it.
  for (size_t received = 0; received < 2; ++received) {
    StatusOr<std::string> reply = (*channel)->RecvLine(20000);
    ASSERT_TRUE(reply.ok()) << "after " << received << " replies: "
                            << reply.status().ToString();
    ASSERT_EQ(reply->size(), big.size());
  }
  EXPECT_EQ(handled.load(), 2u);
  transport.Stop();
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// HTTP scrape endpoints on the same listeners.

/// Writes `request` raw, then slurps until the server closes (HTTP mode is
/// one-shot with Connection: close).
std::string HttpRoundTrip(const std::string& spec,
                          const std::string& request) {
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(spec);
  EXPECT_TRUE(channel.ok()) << channel.status().ToString();
  if (!channel.ok()) return "";
  const int fd = (*channel)->fd();
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

TEST(TransportHttpTest, GetServesHandlerResponseAndCloses) {
  EchoFixture fixture({}, "http");
  // EchoFixture already started the loop, so build a second transport with
  // the handler installed pre-Start.
  const std::string path = TestSocketPath("http2");
  Transport transport;
  ASSERT_TRUE(transport.Listen("unix:" + path).ok());
  transport.SetHttpHandler([](const std::string& req_path) {
    HttpResponse response;
    if (req_path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = "dpclustx_test_metric 1\n";
    } else if (req_path == "/healthz") {
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.body = "not found\n";
    }
    return response;
  });
  ASSERT_TRUE(transport.Start([&](ConnId conn, std::string&& line) {
    transport.Send(conn, "echo:" + line);
  }).ok());

  const std::string metrics = HttpRoundTrip(
      "unix:" + path,
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4; "
                         "charset=utf-8\r\n"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(metrics.find("\r\n\r\ndpclustx_test_metric 1\n"),
            std::string::npos)
      << metrics;

  const std::string health =
      HttpRoundTrip("unix:" + path, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << health;

  const std::string missing =
      HttpRoundTrip("unix:" + path, "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos)
      << missing;

  // The JSON line protocol on the same listener is untouched.
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect("unix:" + path);
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->SendLine(R"({"op":"ping"})").ok());
  StatusOr<std::string> reply = (*channel)->RecvLine(5000);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, R"(echo:{"op":"ping"})");
  transport.Stop();
  ::unlink(path.c_str());
}

TEST(TransportHttpTest, WithoutHandlerGetAnswers404) {
  EchoFixture fixture({}, "http404");
  const std::string response =
      HttpRoundTrip(fixture.spec(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos)
      << response;
}

TEST(TransportHttpTest, HttpDetectionIsFirstFrameOnly) {
  // A GET-shaped line later in an established protocol stream must stay a
  // protocol frame — only a connection's first frame can switch modes.
  EchoFixture fixture({}, "httplate");
  StatusOr<std::unique_ptr<ClientChannel>> channel =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(channel.ok());
  ASSERT_TRUE((*channel)->SendLine(R"({"op":"ping"})").ok());
  StatusOr<std::string> first = (*channel)->RecvLine(5000);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*channel)->SendLine("GET /metrics HTTP/1.1").ok());
  StatusOr<std::string> second = (*channel)->RecvLine(5000);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "echo:GET /metrics HTTP/1.1");
}

// ---------------------------------------------------------------------------
// End-to-end: the real router in socket mode.

std::string BuildDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(n, 0);
  buf[n] = '\0';
  std::string path(buf);
  path = path.substr(0, path.rfind('/'));  // strip test binary name
  return path.substr(0, path.rfind('/'));  // strip "tests"
}

/// Forks dpclustx_router with a unix-socket listener, stdin held open as
/// the lifecycle handle. Skips the test when binaries are absent.
class RouterSocketFixture {
 public:
  RouterSocketFixture() {
    const std::string build = BuildDir();
    const std::string router = build + "/tools/dpclustx_router";
    const std::string serve = build + "/tools/dpclustx_serve";
    if (::access(router.c_str(), X_OK) != 0 ||
        ::access(serve.c_str(), X_OK) != 0) {
      return;  // started_ stays false; tests GTEST_SKIP
    }
    socket_path_ = TestSocketPath("e2e");
    state_dir_ = "/tmp/dpx_tt_state_" + std::to_string(::getpid());
    const std::string scrub = "rm -rf " + state_dir_ + " && mkdir -p " +
                              state_dir_;
    EXPECT_EQ(std::system(scrub.c_str()), 0);
    int to_child[2];
    EXPECT_EQ(::pipe(to_child), 0);
    pid_ = ::fork();
    EXPECT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::execl(router.c_str(), router.c_str(), "--workers", "2", "--serve",
              serve.c_str(), "--state-dir", state_dir_.c_str(), "--listen",
              ("unix:" + socket_path_).c_str(), "--verify-relay",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(to_child[0]);
    stdin_fd_ = to_child[1];
    for (int i = 0; i < 200 && ::access(socket_path_.c_str(), F_OK) != 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    started_ = ::access(socket_path_.c_str(), F_OK) == 0;
  }

  ~RouterSocketFixture() {
    if (stdin_fd_ >= 0) ::close(stdin_fd_);  // EOF → graceful shutdown
    if (pid_ > 0) ::waitpid(pid_, nullptr, 0);
    if (!state_dir_.empty()) {
      std::system(("rm -rf " + state_dir_).c_str());
    }
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  }

  bool started() const { return started_; }
  std::string spec() const { return "unix:" + socket_path_; }

  StatusOr<JsonValue> Call(ClientChannel& channel,
                           const std::string& request) {
    Status sent = channel.SendLine(request);
    if (!sent.ok()) return sent;
    StatusOr<std::string> line = channel.RecvLine(30000);
    if (!line.ok()) return line.status();
    return JsonValue::Parse(*line);
  }

 private:
  std::string socket_path_;
  std::string state_dir_;
  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  bool started_ = false;
};

TEST(RouterSocketE2E, ConcurrentInterleavedClientSessions) {
  RouterSocketFixture fixture;
  if (!fixture.started()) GTEST_SKIP() << "router/serve binaries not built";

  // Shared setup through one connection.
  {
    StatusOr<std::unique_ptr<ClientChannel>> setup =
        ClientChannel::Connect(fixture.spec());
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    StatusOr<JsonValue> loaded = fixture.Call(
        **setup,
        R"({"op":"load_dataset","name":"e2e","source":"synthetic",)"
        R"("generator":"diabetes","rows":300,"seed":1})");
    ASSERT_TRUE(loaded.ok() && loaded->at("ok").AsBool()) << loaded->Dump();
  }

  // Concurrent clients, each with its own session lifecycle, pipelining
  // a burst of budget reads. Responses must come back on the right
  // connection with the right ids.
  constexpr size_t kClients = 6;
  std::mutex failures_mutex;
  std::vector<std::string> failures;
  auto fail = [&](std::string what) {
    std::lock_guard<std::mutex> lock(failures_mutex);
    failures.push_back(std::move(what));
  };
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<ClientChannel>> channel =
          ClientChannel::Connect(fixture.spec());
      if (!channel.ok()) {
        fail("connect: " + channel.status().ToString());
        return;
      }
      const std::string session = "e2e-s" + std::to_string(c);
      StatusOr<JsonValue> created = fixture.Call(
          **channel, R"({"op":"create_session","dataset":"e2e","session":")" +
                         session + R"(","epsilon":5.0,"id":"mk)" +
                         std::to_string(c) + R"("})");
      if (!created.ok()) {
        fail("create_session: " + created.status().ToString());
        return;
      }
      if (!created->at("ok").AsBool()) {
        fail("create_session: " + created->Dump());
        return;
      }
      constexpr size_t kBurst = 20;
      for (size_t i = 0; i < kBurst; ++i) {
        const std::string request = R"({"op":"budget","session":")" +
                                    session + R"(","id":"b)" +
                                    std::to_string(c) + "-" +
                                    std::to_string(i) + R"("})";
        const Status sent = (*channel)->SendLine(request);
        if (!sent.ok()) fail("send: " + sent.ToString());
      }
      // Workers are async, so pipelined responses may come back in any
      // order — the contract is id-matched delivery on the right
      // connection: every id exactly once, nothing lost, nothing from
      // another client's session.
      std::set<std::string> seen;
      for (size_t i = 0; i < kBurst; ++i) {
        StatusOr<std::string> line = (*channel)->RecvLine(30000);
        if (!line.ok()) {
          fail("recv: " + line.status().ToString());
          continue;
        }
        StatusOr<JsonValue> parsed = JsonValue::Parse(*line);
        if (!parsed.ok() || !parsed->at("ok").AsBool() ||
            parsed->at("session").AsString() != session) {
          fail("response: " + *line);
          continue;
        }
        if (!seen.insert(parsed->at("id").AsString()).second) {
          fail("duplicate response: " + *line);
        }
      }
      for (size_t i = 0; i < kBurst; ++i) {
        const std::string expect_id =
            "b" + std::to_string(c) + "-" + std::to_string(i);
        if (seen.count(expect_id) == 0) fail("missing response " + expect_id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_TRUE(failures.empty());
}

TEST(RouterSocketE2E, MalformedFramesRejectedPerConnection) {
  RouterSocketFixture fixture;
  if (!fixture.started()) GTEST_SKIP() << "router/serve binaries not built";

  StatusOr<std::unique_ptr<ClientChannel>> garbage =
      ClientChannel::Connect(fixture.spec());
  StatusOr<std::unique_ptr<ClientChannel>> healthy =
      ClientChannel::Connect(fixture.spec());
  ASSERT_TRUE(garbage.ok() && healthy.ok());

  // Garbage JSON → an error envelope on that connection, which then stays
  // usable: responses on one connection are FIFO, so the error comes
  // first and the pong after.
  ASSERT_TRUE((*garbage)->SendLine("this is not json").ok());
  StatusOr<std::string> error_raw = (*garbage)->RecvLine(30000);
  ASSERT_TRUE(error_raw.ok()) << error_raw.status().ToString();
  StatusOr<JsonValue> error = JsonValue::Parse(*error_raw);
  ASSERT_TRUE(error.ok()) << *error_raw;
  EXPECT_FALSE(error->at("ok").AsBool());
  EXPECT_EQ(error->at("error").at("code").AsString(), "InvalidArgument");
  StatusOr<JsonValue> recovered = fixture.Call(**garbage, R"({"op":"ping"})");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->at("ok").AsBool()) << recovered->Dump();

  // The healthy connection is unaffected throughout.
  StatusOr<JsonValue> pong = fixture.Call(**healthy, R"({"op":"ping"})");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->at("ok").AsBool()) << pong->Dump();

  // Status must report transport state and per-worker pending gauges.
  StatusOr<JsonValue> status =
      fixture.Call(**healthy, R"({"op":"_router_status"})");
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(status->at("ok").AsBool());
  ASSERT_TRUE(status->Has("transport"));
  EXPECT_GE(status->at("transport").at("active_connections").AsNumber(), 2.0);
  const JsonValue& workers = status->at("workers");
  ASSERT_GT(workers.size(), 0u);
  EXPECT_TRUE(workers.at(size_t{0}).Has("pending"));
  EXPECT_TRUE(workers.at(size_t{0}).Has("oldest_pending_ms"));
}

}  // namespace
}  // namespace dpclustx::service
