// Randomized round-trip properties: CSV and JSON serialization must be
// lossless for arbitrary library-generated artifacts, across a parameterized
// sweep of shapes and seeds.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/serialization.h"
#include "data/csv.h"
#include "data/synthetic.h"

namespace dpclustx {
namespace {

struct RoundTripCase {
  uint64_t seed;
  size_t rows;
  size_t attrs;
  size_t max_domain;
};

class RoundTripPropertyTest
    : public ::testing::TestWithParam<RoundTripCase> {};

Dataset MakeRandomDataset(const RoundTripCase& param) {
  synth::SyntheticConfig config;
  config.num_rows = param.rows;
  config.num_attributes = param.attrs;
  config.num_latent_groups = 2;
  config.max_domain = param.max_domain;
  config.seed = param.seed;
  return std::move(*synth::Generate(config));
}

TEST_P(RoundTripPropertyTest, CsvRoundTripIsLossless) {
  const Dataset original = MakeRandomDataset(GetParam());
  const std::string path = testing::TempDir() + "/dpx_roundtrip_" +
                           std::to_string(GetParam().seed) + ".csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  const auto loaded = ReadCsvWithSchema(path, original.schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); r += 13) {
    ASSERT_EQ(loaded->Row(r), original.Row(r)) << "row " << r;
  }
}

TEST_P(RoundTripPropertyTest, InferredSchemaReadPreservesLabelSequences) {
  // Reading without a schema re-codes values, but the *label* sequence of
  // every cell must survive.
  const Dataset original = MakeRandomDataset(GetParam());
  const std::string path = testing::TempDir() + "/dpx_roundtrip_inf_" +
                           std::to_string(GetParam().seed) + ".csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  const auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); r += 29) {
    for (size_t a = 0; a < original.num_attributes(); ++a) {
      const auto attr = static_cast<AttrIndex>(a);
      ASSERT_EQ(
          loaded->schema().attribute(attr).label(loaded->at(r, attr)),
          original.schema().attribute(attr).label(original.at(r, attr)))
          << "row " << r << " attr " << a;
    }
  }
}

TEST_P(RoundTripPropertyTest, SchemaJsonRoundTripIsLossless) {
  const Dataset original = MakeRandomDataset(GetParam());
  const auto parsed = SchemaFromJson(SchemaToJson(original.schema()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_attributes(), original.num_attributes());
  for (size_t a = 0; a < original.num_attributes(); ++a) {
    const auto attr = static_cast<AttrIndex>(a);
    EXPECT_EQ(parsed->attribute(attr).name(),
              original.schema().attribute(attr).name());
    EXPECT_EQ(parsed->attribute(attr).value_labels(),
              original.schema().attribute(attr).value_labels());
  }
}

TEST_P(RoundTripPropertyTest, RandomExplanationJsonRoundTripIsLossless) {
  const Dataset dataset = MakeRandomDataset(GetParam());
  Rng rng(GetParam().seed + 99);
  // Fabricate a random (but structurally valid) explanation.
  GlobalExplanation original;
  const size_t clusters = 3;
  for (size_t c = 0; c < clusters; ++c) {
    const auto attr = static_cast<AttrIndex>(
        rng.UniformInt(dataset.num_attributes()));
    original.combination.push_back(attr);
    std::vector<AttrIndex> set;
    for (int j = 0; j < 3; ++j) {
      set.push_back(static_cast<AttrIndex>(
          rng.UniformInt(dataset.num_attributes())));
    }
    original.candidate_sets.push_back(std::move(set));
    SingleClusterExplanation e;
    e.cluster = static_cast<ClusterId>(c);
    e.attribute = attr;
    const size_t domain = dataset.schema().attribute(attr).domain_size();
    e.inside = Histogram(domain);
    e.outside = Histogram(domain);
    for (size_t v = 0; v < domain; ++v) {
      e.inside.set_bin(static_cast<ValueCode>(v),
                       std::floor(rng.UniformRange(0.0, 500.0)));
      e.outside.set_bin(static_cast<ValueCode>(v),
                        std::floor(rng.UniformRange(0.0, 500.0)));
    }
    original.per_cluster.push_back(std::move(e));
  }

  const auto parsed = ExplanationFromJson(
      ExplanationToJson(original, dataset.schema()), dataset.schema());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->combination, original.combination);
  EXPECT_EQ(parsed->candidate_sets, original.candidate_sets);
  for (size_t c = 0; c < clusters; ++c) {
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(parsed->per_cluster[c].inside,
                              original.per_cluster[c].inside),
        0.0);
    EXPECT_DOUBLE_EQ(
        Histogram::L1Distance(parsed->per_cluster[c].outside,
                              original.per_cluster[c].outside),
        0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripPropertyTest,
    ::testing::Values(RoundTripCase{1, 50, 3, 4},
                      RoundTripCase{2, 500, 8, 12},
                      RoundTripCase{3, 200, 20, 3},
                      RoundTripCase{4, 1000, 5, 39}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dpclustx
