#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

constexpr size_t kSamples = 200000;

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformDouble(), b.UniformDouble());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformDouble() == b.UniformDouble()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (size_t i = 0; i < kSamples; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformOpenDoubleNeverZeroOrOne) {
  Rng rng(9);
  for (size_t i = 0; i < kSamples; ++i) {
    const double u = rng.UniformOpenDouble();
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(10)];
  for (size_t count : counts) {
    EXPECT_NEAR(static_cast<double>(count), kSamples / 10.0,
                5.0 * std::sqrt(kSamples / 10.0));
  }
}

TEST(RngTest, LaplaceMomentsMatch) {
  Rng rng(13);
  const double scale = 2.5;
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < kSamples; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  // Var(Lap(b)) = 2b².
  EXPECT_NEAR(var, 2.0 * scale * scale, 0.4);
}

TEST(RngTest, GumbelMomentsMatch) {
  Rng rng(17);
  const double scale = 1.5;
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < kSamples; ++i) {
    const double x = rng.Gumbel(scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  constexpr double kEulerGamma = 0.5772156649015329;
  // E[Gumbel(σ)] = σγ, Var = σ²π²/6.
  EXPECT_NEAR(mean, scale * kEulerGamma, 0.03);
  EXPECT_NEAR(var, scale * scale * M_PI * M_PI / 6.0, 0.15);
}

TEST(RngTest, TwoSidedGeometricSymmetricWithCorrectTail) {
  Rng rng(19);
  const double eps = 0.5;
  double sum = 0.0;
  size_t zeros = 0;
  for (size_t i = 0; i < kSamples; ++i) {
    const int64_t z = rng.TwoSidedGeometric(eps);
    sum += static_cast<double>(z);
    if (z == 0) ++zeros;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.1);
  // P(Z = 0) = (1 − α)/(1 + α) with α = e^{−ε}.
  const double alpha = std::exp(-eps);
  EXPECT_NEAR(static_cast<double>(zeros) / kSamples,
              (1.0 - alpha) / (1.0 + alpha), 0.01);
}

TEST(RngTest, TwoSidedGeometricDecaysGeometrically) {
  Rng rng(23);
  const double eps = 1.0;
  std::vector<size_t> counts(5, 0);
  for (size_t i = 0; i < kSamples; ++i) {
    const int64_t z = rng.TwoSidedGeometric(eps);
    if (z >= 0 && z < 5) ++counts[static_cast<size_t>(z)];
  }
  // Successive positive values should have ratio ≈ e^{−ε}.
  for (size_t v = 0; v + 1 < counts.size(); ++v) {
    ASSERT_GT(counts[v], 0u);
    const double ratio =
        static_cast<double>(counts[v + 1]) / static_cast<double>(counts[v]);
    EXPECT_NEAR(ratio, std::exp(-eps), 0.05);
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(29);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < kSamples; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(sq / kSamples - mean * mean, 4.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  size_t hits = 0;
  for (size_t i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, CategoricalMatchesWeights) {
  Rng rng(37);
  const double weights[] = {1.0, 3.0, 6.0};
  std::vector<size_t> counts(3, 0);
  for (size_t i = 0; i < kSamples; ++i) {
    ++counts[rng.Categorical(weights, 3)];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kSamples, 0.6, 0.01);
}

TEST(RngTest, CategoricalHandlesZeroWeightBuckets) {
  Rng rng(41);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Categorical(weights, 3), 1u);
  }
}

TEST(RngTest, ForkProducesDecorrelatedStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream should not replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformDouble() == child.UniformDouble()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 engine(5);
  // Smoke: successive outputs differ.
  EXPECT_NE(engine(), engine());
}

}  // namespace
}  // namespace dpclustx
