#include "common/status.h"

#include <gtest/gtest.h>

namespace dpclustx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfBudget("x").code(), StatusCode::kOutOfBudget);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfBudget), "OutOfBudget");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DPX_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailThenSucceed(bool fail) {
  DPX_RETURN_IF_ERROR(fail ? Status::IoError("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailThenSucceed(false).ok());
  EXPECT_EQ(FailThenSucceed(true).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dpclustx
