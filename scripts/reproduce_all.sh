#!/usr/bin/env bash
# Reproduces the full evaluation: builds, runs the test suite, then every
# bench binary, collecting outputs under results/.
#
# Environment knobs (forwarded to the benches):
#   DPX_BENCH_RUNS   repetitions per configuration (default 5; paper: 10)
#   DPX_BENCH_SCALE  dataset row-count multiplier (default 1.0)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p results
ctest --test-dir build --output-on-failure 2>&1 | tee results/tests.txt

for bench in build/bench/bench_*; do
  name="$(basename "$bench")"
  echo "=== ${name} ==="
  "$bench" 2>&1 | tee "results/${name}.txt"
done

echo "done — outputs in results/"
