#!/usr/bin/env bash
# Repository check: build and run the test suite in the default
# configuration, then rebuild the concurrency-sensitive targets under
# ThreadSanitizer and run the threaded tests (thread pool, service layer,
# budget accountant, EDA sessions, metrics registry) with race detection
# on, then rebuild the
# request-path targets under ASan+UBSan and run the service/robustness
# tests — no std::abort, overflow, or memory error may be reachable from
# request input. The width-dispatched data-plane kernels run in both
# sanitizer passes (dataset_layout_test), and the bench binaries get a
# compile-only smoke build with -march=native (DPCLUSTX_NATIVE) so codegen
# regressions in the tile kernels surface before a benchmark run does.
#
# Usage: scripts/check.sh [--skip-tsan] [--skip-asan] [--skip-native]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_NATIVE=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-native) SKIP_NATIVE=1 ;;
    *) echo "unknown flag '$arg'" \
            "(usage: scripts/check.sh [--skip-tsan] [--skip-asan]" \
            "[--skip-native])" >&2
       exit 2 ;;
  esac
done

echo "==> default build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "==> ASan+UBSan pass skipped (--skip-asan)"
else
  echo "==> ASan+UBSan build + service/robustness tests"
  cmake -B build-asan -S . -DDPCLUSTX_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    service_test service_robustness_test json_test mechanisms_test \
    thread_pool_test dataset_layout_test obs_test \
    >/dev/null
  (cd build-asan &&
   ctest --output-on-failure \
     -R '^(service_test|service_robustness_test|json_test|mechanisms_test|thread_pool_test|dataset_layout_test|obs_test)$')
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "==> TSan pass skipped (--skip-tsan)"
else
  echo "==> ThreadSanitizer build + threaded tests"
  cmake -B build-tsan -S . -DDPCLUSTX_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    thread_pool_test service_test privacy_budget_test eda_session_test \
    parallel_equivalence_test dataset_layout_test obs_test \
    >/dev/null
  # DPCLUSTX_THREADS=8 widens the shared compute pool so the ParallelFor
  # kernels genuinely interleave under TSan even on narrow CI hosts.
  (cd build-tsan &&
   DPCLUSTX_THREADS=8 ctest --output-on-failure \
     -R '^(thread_pool_test|service_test|privacy_budget_test|eda_session_test|parallel_equivalence_test|dataset_layout_test|obs_test)$')
fi

if [[ "$SKIP_NATIVE" == 1 ]]; then
  echo "==> -march=native bench smoke skipped (--skip-native)"
else
  echo "==> -march=native bench smoke (compile-only)"
  cmake -B build-native -S . -DDPCLUSTX_NATIVE=ON >/dev/null
  cmake --build build-native -j --target \
    bench_data_plane bench_parallel_scaling bench_scale_large_dataset \
    >/dev/null
  echo "    built bench targets with -march=native"
fi

echo "==> all checks passed"
