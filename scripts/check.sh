#!/usr/bin/env bash
# Repository check: build and run the test suite in the default
# configuration, then rebuild the concurrency-sensitive targets under
# ThreadSanitizer and run the threaded tests (thread pool, service layer,
# budget accountant, EDA sessions) with race detection on.
#
# Usage: scripts/check.sh [--skip-tsan]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag '$arg' (usage: scripts/check.sh [--skip-tsan])" >&2
       exit 2 ;;
  esac
done

echo "==> default build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "==> TSan pass skipped (--skip-tsan)"
  exit 0
fi

echo "==> ThreadSanitizer build + threaded tests"
cmake -B build-tsan -S . -DDPCLUSTX_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  thread_pool_test service_test privacy_budget_test eda_session_test \
  parallel_equivalence_test \
  >/dev/null
# DPCLUSTX_THREADS=8 widens the shared compute pool so the ParallelFor
# kernels genuinely interleave under TSan even on narrow CI hosts.
(cd build-tsan &&
 DPCLUSTX_THREADS=8 ctest --output-on-failure \
   -R '^(thread_pool_test|service_test|privacy_budget_test|eda_session_test|parallel_equivalence_test)$')

echo "==> all checks passed"
