#!/usr/bin/env bash
# Repository check: build and run the test suite in the default
# configuration, then rebuild the concurrency-sensitive targets under
# ThreadSanitizer and run the threaded tests (thread pool, service layer,
# budget accountant, EDA sessions, metrics registry) with race detection
# on, then rebuild the
# request-path targets under ASan+UBSan and run the service/robustness
# tests — no std::abort, overflow, or memory error may be reachable from
# request input. The ingest plane (csv_test, columnar_format_test) runs
# under ASan too: CSV bytes and DPXCOL headers are untrusted input. The
# ASan pass also drives three end-to-end smokes against the real binaries:
# a snapshot round-trip (charge, kill, restore, check the ledger), a
# byte-identical CSV -> DPXCOL -> CSV round trip through dpclustx_convert,
# a 2-worker dpclustx_router session over the line protocol, a
# socket-mode router smoke (concurrent unix-socket clients against
# --listen, relay byte-identity enforced by --verify-relay, a traced
# request returning one stitched timeline), and a Prometheus scrape smoke
# (curl /metrics + /healthz on the router's tcp listener and a worker's
# --worker-listen-base port, exposition checked line by line). The
# width-dispatched data-plane kernels run in both sanitizer passes
# (dataset_layout_test); the transport event loop and its e2e socket
# tests run under TSan (transport_test), and the zero-reparse relay
# scanner runs under ASan (json_relay_test) — worker output is untrusted
# once a worker has crashed mid-write.
#
# Kernel dispatch pass: every per-ISA kernel TU (generic/sse2/avx2/avx512,
# src/data/kernels) compiles unconditionally in the default build — a host
# without AVX-512 still compile-checks the AVX-512 TU. The layout test then
# reruns with DPCLUSTX_ISA forced to each level the host supports, so the
# cpuid clamp, the env override, and the cross-level bitwise-identity
# contract are all exercised from a cold process, plus once under ASan with
# dispatch clamped to generic (the in-test ScopedForceIsa sweep still
# raises to every supported level from there).
#
# The bench binaries get a compile-only smoke build with -march=native
# (DPCLUSTX_NATIVE — now largely redundant next to the per-ISA kernel TUs,
# kept for whole-program codegen A/B) so codegen regressions in the tile
# kernels surface before a benchmark run does.
#
# Usage: scripts/check.sh [--skip-tsan] [--skip-asan] [--skip-native]

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_NATIVE=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-native) SKIP_NATIVE=1 ;;
    *) echo "unknown flag '$arg'" \
            "(usage: scripts/check.sh [--skip-tsan] [--skip-asan]" \
            "[--skip-native])" >&2
       exit 2 ;;
  esac
done

echo "==> default build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

echo "==> kernel dispatch pass: forced-ISA rerun of the layout tests"
# The detected level comes from the measured binary itself, not from this
# script probing /proc/cpuinfo: `--version` ends with
# ", isa <active> (detected <level>), snapshot-format vN".
DETECTED="$(./build/tools/dpclustx_serve --version |
  sed -n 's/.*isa [^ ]* (detected \([^)]*\)).*/\1/p')"
LEVELS=(generic)
case "$DETECTED" in
  sse2) LEVELS+=(sse2) ;;
  avx2) LEVELS+=(sse2 avx2) ;;
  avx512) LEVELS+=(sse2 avx2 avx512) ;;
esac
echo "    detected '$DETECTED' -> forcing: ${LEVELS[*]}"
for level in "${LEVELS[@]}"; do
  (cd build && DPCLUSTX_ISA="$level" ctest --output-on-failure \
    -R '^(dataset_layout_test|parallel_equivalence_test)$' |
    tail -n 3 | sed "s/^/    [DPCLUSTX_ISA=$level] /")
done

if [[ "$SKIP_ASAN" == 1 ]]; then
  echo "==> ASan+UBSan pass skipped (--skip-asan)"
else
  echo "==> ASan+UBSan build + service/robustness tests"
  cmake -B build-asan -S . -DDPCLUSTX_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    service_test service_robustness_test json_test mechanisms_test \
    thread_pool_test dataset_layout_test obs_test snapshot_test \
    csv_test columnar_format_test json_relay_test \
    dpclustx_serve dpclustx_router dpclustx_convert \
    >/dev/null
  (cd build-asan &&
   ctest --output-on-failure \
     -R '^(service_test|service_robustness_test|json_test|mechanisms_test|thread_pool_test|dataset_layout_test|obs_test|snapshot_test|csv_test|columnar_format_test|json_relay_test)$')

  echo "==> ASan kernel dispatch smoke (DPCLUSTX_ISA=generic startup)"
  # Starts with dispatch clamped all the way down, then the in-test
  # ScopedForceIsa sweep raises through every supported level — so each
  # per-ISA TU's loads/stores run under ASan+UBSan once per check.
  (cd build-asan && DPCLUSTX_ISA=generic ctest --output-on-failure \
    -R '^dataset_layout_test$' >/dev/null)
  echo "    ASan forced-level sweep OK"

  echo "==> ASan smoke: snapshot round-trip over the line protocol"
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  # First life: load/cluster/charge, then EOF — the worker writes its final
  # snapshot on shutdown. Second life: restore from that snapshot (plus the
  # audit journal) and check the ledger survived exactly.
  build-asan/tools/dpclustx_serve --sync \
      --snapshot "$SMOKE_DIR/smoke.snap" \
      --audit-journal "$SMOKE_DIR/smoke.journal" \
      > "$SMOKE_DIR/first.out" 2>"$SMOKE_DIR/first.err" <<'EOF'
{"op":"load_dataset","name":"d","source":"synthetic","generator":"diabetes","rows":200,"seed":1,"id":"1"}
{"op":"cluster","dataset":"d","method":"k-means","k":3,"seed":2,"id":"2"}
{"op":"create_session","dataset":"d","session":"s","epsilon":1.0,"id":"3"}
{"op":"hist","session":"s","clustering":"default","attribute":"diab_0","epsilon":0.25,"id":"4"}
EOF
  build-asan/tools/dpclustx_serve --sync \
      --snapshot "$SMOKE_DIR/smoke.snap" \
      --audit-journal "$SMOKE_DIR/smoke.journal" \
      > "$SMOKE_DIR/second.out" 2>"$SMOKE_DIR/second.err" <<'EOF'
{"op":"budget","session":"s","id":"b"}
{"op":"hist","session":"s","clustering":"default","attribute":"diab_0","epsilon":0.25,"id":"h"}
EOF
  python3 - "$SMOKE_DIR/second.out" <<'PYEOF'
import json, sys
byid = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    byid[r["id"]] = r
b, h = byid["b"], byid["h"]
assert b["ok"] and abs(b["spent"] - 0.25) < 1e-12, b
assert h["ok"] and h["cache_hit"] and h["epsilon_charged"] == 0.0, h
print("    snapshot round-trip OK: ledger restored, repeat hist free")
PYEOF

  echo "==> ASan smoke: CSV -> DPXCOL -> CSV round trip"
  # The converter must be lossless: re-encoding the DPXCOL back to CSV
  # reproduces the input byte for byte (ingest normalizes nothing — same
  # labels, same order, same quoting decisions on the way back out).
  cat > "$SMOKE_DIR/roundtrip.csv" <<'EOF'
color,size,notes
red,small,"has, comma"
blue,large,"has ""quote"""
red,large,plain
EOF
  build-asan/tools/dpclustx_convert to-dpxcol \
      "$SMOKE_DIR/roundtrip.csv" "$SMOKE_DIR/roundtrip.dpxcol" --verify \
      2>/dev/null
  build-asan/tools/dpclustx_convert verify "$SMOKE_DIR/roundtrip.dpxcol" \
      2>/dev/null
  build-asan/tools/dpclustx_convert to-csv \
      "$SMOKE_DIR/roundtrip.dpxcol" "$SMOKE_DIR/roundtrip_back.csv" \
      2>/dev/null
  diff "$SMOKE_DIR/roundtrip.csv" "$SMOKE_DIR/roundtrip_back.csv"
  echo "    convert round trip OK: CSV -> DPXCOL -> CSV is byte-identical"

  echo "==> ASan smoke: 2-worker router end-to-end"
  build-asan/tools/dpclustx_router --workers 2 \
      --serve build-asan/tools/dpclustx_serve \
      --state-dir "$SMOKE_DIR/router" -- --sync \
      > "$SMOKE_DIR/router.out" 2>"$SMOKE_DIR/router.err" <<'EOF'
{"op":"load_dataset","name":"d1","source":"synthetic","generator":"diabetes","rows":200,"seed":1,"id":"1"}
{"op":"load_dataset","name":"d2","source":"synthetic","generator":"diabetes","rows":200,"seed":2,"id":"2"}
{"op":"cluster","dataset":"d1","method":"k-means","k":3,"seed":3,"id":"3"}
{"op":"create_session","dataset":"d1","session":"s1","epsilon":1.0,"id":"4"}
{"op":"hist","session":"s1","clustering":"default","attribute":"diab_0","epsilon":0.1,"id":"5"}
{"op":"budget","session":"s1","id":"6"}
{"op":"save_snapshot","path":"/tmp/nope","id":"7"}
{"op":"ping","id":"8"}
EOF
  python3 - "$SMOKE_DIR/router.out" <<'PYEOF'
import json, sys
byid = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    byid[r["id"]] = r
for i in "12345":
    assert byid[i]["ok"], byid[i]
assert abs(byid["6"]["spent"] - 0.1) < 1e-12, byid["6"]
assert not byid["7"]["ok"], byid["7"]
assert byid["7"]["error"]["code"] == "FailedPrecondition", byid["7"]
workers = byid["8"]["workers"]
assert "shard-0" in workers and "shard-1" in workers, byid["8"]
print("    router smoke OK: sharded flow, budget exact, snapshots refused")
PYEOF

  echo "==> ASan smoke: socket-mode router, concurrent clients"
  # The router serves a unix socket (--listen) with the splice relay
  # cross-checked against the full-parse path on every response
  # (--verify-relay aborts on any byte mismatch). Stdin stays open via a
  # fifo — EOF there is the graceful-shutdown signal.
  mkfifo "$SMOKE_DIR/router.stdin"
  build-asan/tools/dpclustx_router --workers 2 \
      --serve build-asan/tools/dpclustx_serve \
      --state-dir "$SMOKE_DIR/router_sock" \
      --listen "unix:$SMOKE_DIR/router.sock" \
      --verify-relay -- --sync \
      < "$SMOKE_DIR/router.stdin" \
      > "$SMOKE_DIR/router_sock.out" 2>"$SMOKE_DIR/router_sock.err" &
  ROUTER_PID=$!
  exec 9> "$SMOKE_DIR/router.stdin"
  for _ in $(seq 1 200); do
    [[ -S "$SMOKE_DIR/router.sock" ]] && break
    sleep 0.05
  done
  [[ -S "$SMOKE_DIR/router.sock" ]] || {
    echo "router socket never appeared" >&2
    cat "$SMOKE_DIR/router_sock.err" >&2
    exit 1
  }
  python3 - "$SMOKE_DIR/router.sock" <<'PYEOF'
import json, socket, sys, threading

SOCK = sys.argv[1]

def client():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(SOCK)
    return s, s.makefile("rb")

def call(s, f, req):
    s.sendall((json.dumps(req) + "\n").encode())
    return json.loads(f.readline())

# Setup over one connection: a dataset, a clustering.
s, f = client()
for req in (
    {"op": "load_dataset", "name": "d", "source": "synthetic",
     "generator": "diabetes", "rows": 200, "seed": 1, "id": "s1"},
    {"op": "cluster", "dataset": "d", "method": "k-means", "k": 3,
     "seed": 2, "id": "s2"},
):
    r = call(s, f, req)
    assert r["ok"] and r["id"] == req["id"], r

failures = []

def tenant(c):
    try:
        cs, cf = client()
        sess = f"sock-s{c}"
        r = call(cs, cf, {"op": "create_session", "dataset": "d",
                          "session": sess, "epsilon": 1.0,
                          "id": f"c{c}-create"})
        assert r["ok"], r
        r = call(cs, cf, {"op": "hist", "session": sess,
                          "clustering": "default", "attribute": "diab_0",
                          "epsilon": 0.1 + 0.01 * c, "id": f"c{c}-hist"})
        assert r["ok"], r
        # Pipelined burst: 8 budget reads in flight, FIFO ids back.
        for i in range(8):
            cs.sendall((json.dumps({"op": "budget", "session": sess,
                                    "id": f"c{c}-b{i}"}) + "\n").encode())
        for i in range(8):
            r = json.loads(cf.readline())
            assert r["ok"] and r["id"] == f"c{c}-b{i}", r
        cs.close()
    except Exception as e:  # noqa: BLE001 - collected for the main thread
        failures.append(f"client {c}: {e!r}")

threads = [threading.Thread(target=tenant, args=(c,)) for c in range(4)]
for t in threads:
    t.start()
for t in threads:
    t.join()
assert not failures, failures

# Garbage frame: rejected on that connection only, which stays usable.
g, gf = client()
g.sendall(b"this is not json\n")
r = json.loads(gf.readline())
assert not r["ok"] and r["error"]["code"] == "InvalidArgument", r
r = call(g, gf, {"op": "ping", "id": "after-garbage"})
assert r["ok"] and r["id"] == "after-garbage", r

r = call(g, gf, {"op": "_router_status", "id": "st"})
assert r["ok"] and r["transport"]["active_connections"] >= 1, r
assert all("pending" in w for w in r["workers"]), r

# Traced request: the response must carry one stitched end-to-end timeline
# (router spans + the worker's own tree) under a single trace id — and with
# --verify-relay on, the _tc splice is cross-checked byte-for-byte against
# the full-parse path on the way in.
r = call(g, gf, {"op": "schema", "dataset": "d", "trace": True,
                 "id": "traced"})
assert r["ok"] and r["trace_id"].startswith("t"), r
spans = [c["name"] for c in r["trace"]["children"]]
assert spans == ["parse", "shard_pick", "relay_splice",
                 "worker_roundtrip", "write_back"], spans
roundtrip = r["trace"]["children"][3]
names = [c["name"] for c in roundtrip["children"]]
assert "worker_queue_wait" in names and "request" in names, roundtrip

print("    socket smoke OK: 4 concurrent tenants, garbage rejected"
      " per-connection, relay verified byte-identical, timeline stitched")
PYEOF
  exec 9>&-
  wait "$ROUTER_PID"
  if grep -q . "$SMOKE_DIR/router_sock.err"; then
    # --verify-relay mismatches and sanitizer reports land on stderr.
    if grep -Eq 'relay verify|ERROR|Sanitizer' "$SMOKE_DIR/router_sock.err"
    then
      echo "router stderr reported a failure:" >&2
      cat "$SMOKE_DIR/router_sock.err" >&2
      exit 1
    fi
  fi

  echo "==> ASan smoke: Prometheus scrape endpoints (router + workers, tcp)"
  # Real curl against the same tcp listeners the line protocol serves: the
  # router exposes its telemetry plane (per-worker labeled series) and each
  # worker its own registry (including the ISA dispatch gauge) — no sidecar.
  HTTP_PORT=$((24000 + RANDOM % 8000))
  WORKER_BASE=$((HTTP_PORT + 1))
  mkfifo "$SMOKE_DIR/scrape.stdin"
  build-asan/tools/dpclustx_router --workers 2 \
      --serve build-asan/tools/dpclustx_serve \
      --state-dir "$SMOKE_DIR/router_scrape" \
      --listen "tcp:127.0.0.1:$HTTP_PORT" \
      --worker-listen-base "$WORKER_BASE" -- --sync \
      < "$SMOKE_DIR/scrape.stdin" \
      > "$SMOKE_DIR/scrape.out" 2>"$SMOKE_DIR/scrape.err" &
  SCRAPE_PID=$!
  exec 8> "$SMOKE_DIR/scrape.stdin"
  for _ in $(seq 1 200); do
    curl -sf -o /dev/null "http://127.0.0.1:$HTTP_PORT/healthz" && break
    sleep 0.05
  done
  curl -sf "http://127.0.0.1:$HTTP_PORT/healthz" | grep -q '^ok$'
  curl -sf "http://127.0.0.1:$HTTP_PORT/ready" | grep -q '^ready$'
  curl -sf "http://127.0.0.1:$HTTP_PORT/metrics" > "$SMOKE_DIR/router.prom"
  curl -sf "http://127.0.0.1:$WORKER_BASE/metrics" > "$SMOKE_DIR/worker.prom"
  curl -sf "http://127.0.0.1:$WORKER_BASE/healthz" | grep -q '^ok$'
  python3 - "$SMOKE_DIR/router.prom" "$SMOKE_DIR/worker.prom" <<'PYEOF'
import re, sys
SAMPLE = re.compile(
    r'^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+$|^[#].*$')
for path in sys.argv[1:3]:
    text = open(path).read()
    assert text, f"{path} is empty"
    for line in text.splitlines():
        assert SAMPLE.match(line), f"malformed exposition line: {line!r}"
router, worker = [open(p).read() for p in sys.argv[1:3]]
assert 'dpclustx_router_worker_alive{worker="shard-0"} 1' in router, router
assert 'dpclustx_router_worker_latency_micros_bucket{worker="shard-1",le="+Inf"}' in router
assert "dpclustx_isa_level{" in worker, worker
assert "dpclustx_transport_http_requests_total" in worker
print("    scrape smoke OK: router fleet series labeled per worker,"
      " worker exposes isa gauge, all lines well-formed")
PYEOF
  exec 8>&-
  wait "$SCRAPE_PID"
fi

if [[ "$SKIP_TSAN" == 1 ]]; then
  echo "==> TSan pass skipped (--skip-tsan)"
else
  echo "==> ThreadSanitizer build + threaded tests"
  cmake -B build-tsan -S . -DDPCLUSTX_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    thread_pool_test service_test privacy_budget_test eda_session_test \
    parallel_equivalence_test dataset_layout_test obs_test \
    transport_test \
    >/dev/null
  # DPCLUSTX_THREADS=8 widens the shared compute pool so the ParallelFor
  # kernels genuinely interleave under TSan even on narrow CI hosts.
  # transport_test races the epoll loop against concurrent ClientChannel
  # threads (and forks the TSan-built router for the socket e2e cases).
  (cd build-tsan &&
   DPCLUSTX_THREADS=8 ctest --output-on-failure \
     -R '^(thread_pool_test|service_test|privacy_budget_test|eda_session_test|parallel_equivalence_test|dataset_layout_test|obs_test|transport_test)$')
fi

if [[ "$SKIP_NATIVE" == 1 ]]; then
  echo "==> -march=native bench smoke skipped (--skip-native)"
else
  # DPCLUSTX_NATIVE is largely redundant now that the hot kernels dispatch
  # per-ISA at runtime; the smoke stays as an A/B codegen check (CMake
  # prints the redundancy warning on configure).
  echo "==> -march=native bench smoke (compile-only)"
  cmake -B build-native -S . -DDPCLUSTX_NATIVE=ON 2>/dev/null >/dev/null
  cmake --build build-native -j --target \
    bench_data_plane bench_parallel_scaling bench_scale_large_dataset \
    >/dev/null
  echo "    built bench targets with -march=native"
fi

echo "==> all checks passed"
