#!/usr/bin/env bash
# Benchmark snapshot: builds the bench binaries and refreshes the two JSON
# snapshots EXPERIMENTS.md quotes —
#   BENCH_parallel.json    bench_parallel_scaling (fused vs legacy StatsCache
#                          build, end-to-end explain at 1/2/4/8 threads) +
#                          bench_scale_large_dataset (linear-in-n check)
#   BENCH_data_plane.json  bench_data_plane (adaptive narrow layout vs the
#                          pre-narrowing uint32 layout: histogram build,
#                          embedding, batched assignment, width sweep)
#   BENCH_service.json     bench_router_throughput (dpclustx_router fronting
#                          N durable shard workers vs one durable worker,
#                          over the real line protocol and pipes)
# Each envelope carries an "execution" block (DPCLUSTX_THREADS and
# DPCLUSTX_ISA as exported, cpu count, build provenance, snapshot format
# version and active/detected kernel dispatch level from `dpclustx_serve
# --version`, and the cpuid feature list) alongside each binary's own
# google-benchmark context, plus a "metrics" block holding the Prometheus
# exposition dumped by a short smoke run of the service, so a snapshot
# states the parallelism, the vector ISA, and the exact binary it was
# measured under. Rerun on new hardware to refresh.
#
# Usage: scripts/bench_snapshot.sh [parallel_out.json [data_plane_out.json \
#                                   [service_out.json]]]

set -euo pipefail
cd "$(dirname "$0")/.."

OUT_PARALLEL="${1:-BENCH_parallel.json}"
OUT_DATA_PLANE="${2:-BENCH_data_plane.json}"
OUT_SERVICE="${3:-BENCH_service.json}"

echo "==> building bench binaries"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_parallel_scaling \
  bench_scale_large_dataset bench_data_plane bench_router_throughput \
  dpclustx_serve >/dev/null

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "==> bench_parallel_scaling"
./build/bench/bench_parallel_scaling \
  --benchmark_out="$TMP_DIR/parallel_scaling.json" \
  --benchmark_out_format=json
echo "==> bench_scale_large_dataset"
./build/bench/bench_scale_large_dataset \
  --benchmark_out="$TMP_DIR/scale_large_dataset.json" \
  --benchmark_out_format=json
echo "==> bench_data_plane"
./build/bench/bench_data_plane \
  --benchmark_out="$TMP_DIR/data_plane.json" \
  --benchmark_out_format=json
echo "==> bench_router_throughput"
# Plain-main bench: the last stdout line is the machine-readable JSON.
./build/bench/bench_router_throughput \
  --workers 2 --requests 96 --window 32 --rows 20000 --datasets 4 \
  --state-dir "$TMP_DIR/router_bench" | tee "$TMP_DIR/router_human.txt"
tail -n 1 "$TMP_DIR/router_human.txt" > "$TMP_DIR/router_throughput.json"

echo "==> service metrics smoke dump"
BUILD_VERSION="$(./build/tools/dpclustx_serve --version)"
printf '%s\n' \
  '{"op":"load_dataset","name":"smoke","source":"synthetic","generator":"diabetes","rows":500,"seed":7}' \
  '{"op":"cluster","dataset":"smoke","method":"k-means","k":3,"seed":3}' \
  '{"op":"stats"}' |
  ./build/tools/dpclustx_serve --sync \
    --metrics-dump "$TMP_DIR/metrics.prom" >/dev/null

# Merge into one envelope per output, keyed by bench binary and stamped with
# the execution environment. python3 is already a build prerequisite on the
# CI image; no extra dependencies.
python3 - "$TMP_DIR/parallel_scaling.json" \
  "$TMP_DIR/scale_large_dataset.json" "$TMP_DIR/data_plane.json" \
  "$OUT_PARALLEL" "$OUT_DATA_PLANE" "$TMP_DIR/metrics.prom" \
  "$BUILD_VERSION" "$TMP_DIR/router_throughput.json" "$OUT_SERVICE" <<'PY'
import json, os, re, sys
(parallel, scale, data_plane, out_parallel, out_data_plane, metrics_path,
 build_version, router_throughput, out_service) = sys.argv[1:10]

# "dpclustx <sha> (GNU 12.2.0, Release), isa avx2 (detected avx512),
# snapshot-format v1" — the format version and the kernel dispatch level are
# part of the provenance line so they are stamped from the binary actually
# measured, not from a header the script happens to see.
format_match = re.search(r"snapshot-format v(\d+)", build_version)
isa_match = re.search(r"isa (\S+) \(detected (\S+)\)", build_version)

execution = {
    "dpclustx_threads_env": os.environ.get("DPCLUSTX_THREADS", ""),
    "dpclustx_isa_env": os.environ.get("DPCLUSTX_ISA", ""),
    "num_cpus": os.cpu_count(),
    "build": build_version,
    "snapshot_format_version":
        int(format_match.group(1)) if format_match else None,
    "isa_active": isa_match.group(1) if isa_match else None,
    "isa_detected": isa_match.group(2) if isa_match else None,
}

# The benchmark binaries also stamp isa_active/isa_detected/cpu_features
# into their own google-benchmark context (bench_common.cc AddPoolContext),
# so the per-bench blocks carry the cpuid feature list verbatim; copy the
# feature string up into the envelope when present.
def cpu_features_of(bench_json):
    return bench_json.get("context", {}).get("cpu_features")

with open(metrics_path) as f:
    metrics_text = f.read()

def load(path):
    with open(path) as f:
        return json.load(f)

def dump(path, envelope):
    envelope["execution"] = execution
    envelope["metrics"] = {"prometheus": metrics_text}
    with open(path, "w") as f:
        json.dump(envelope, f, indent=2)
        f.write("\n")

parallel_json = load(parallel)
data_plane_json = load(data_plane)
execution["cpu_features"] = (cpu_features_of(parallel_json) or
                             cpu_features_of(data_plane_json))

dump(out_parallel, {"bench_parallel_scaling": parallel_json,
                    "bench_scale_large_dataset": load(scale)})
dump(out_data_plane, {"bench_data_plane": data_plane_json})
dump(out_service, {"bench_router_throughput": load(router_throughput)})
PY

echo "==> wrote $OUT_PARALLEL, $OUT_DATA_PLANE and $OUT_SERVICE"
