#!/usr/bin/env bash
# Benchmark snapshot for the parallel execution layer: builds the bench
# binaries, runs bench_parallel_scaling (fused vs legacy StatsCache build,
# end-to-end explain at 1/2/4/8 threads) and bench_scale_large_dataset
# (linear-in-n scale check), and merges both google-benchmark JSON reports
# into BENCH_parallel.json at the repo root. EXPERIMENTS.md quotes these
# numbers; rerun this script to refresh them on new hardware.
#
# Usage: scripts/bench_snapshot.sh [output.json]

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_parallel.json}"

echo "==> building bench binaries"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_parallel_scaling \
  bench_scale_large_dataset >/dev/null

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "==> bench_parallel_scaling"
./build/bench/bench_parallel_scaling \
  --benchmark_out="$TMP_DIR/parallel_scaling.json" \
  --benchmark_out_format=json
echo "==> bench_scale_large_dataset"
./build/bench/bench_scale_large_dataset \
  --benchmark_out="$TMP_DIR/scale_large_dataset.json" \
  --benchmark_out_format=json

# Merge into one envelope keyed by bench binary. python3 is already a build
# prerequisite on the CI image; no extra dependencies.
python3 - "$TMP_DIR/parallel_scaling.json" \
  "$TMP_DIR/scale_large_dataset.json" "$OUT" <<'PY'
import json, sys
parallel, scale, out = sys.argv[1:4]
with open(parallel) as f:
    parallel_report = json.load(f)
with open(scale) as f:
    scale_report = json.load(f)
with open(out, "w") as f:
    json.dump({"bench_parallel_scaling": parallel_report,
               "bench_scale_large_dataset": scale_report}, f, indent=2)
    f.write("\n")
PY

echo "==> wrote $OUT"
