#!/usr/bin/env bash
# Benchmark snapshot: builds the bench binaries and refreshes the two JSON
# snapshots EXPERIMENTS.md quotes —
#   BENCH_parallel.json    bench_parallel_scaling (fused vs legacy StatsCache
#                          build, end-to-end explain at 1/2/4/8 threads) +
#                          bench_scale_large_dataset (linear-in-n check)
#   BENCH_data_plane.json  bench_data_plane (adaptive narrow layout vs the
#                          pre-narrowing uint32 layout: histogram build,
#                          embedding, batched assignment, width sweep)
#   BENCH_service.json     bench_router_throughput (dpclustx_router fronting
#                          N durable shard workers vs one durable worker,
#                          over the real line protocol and pipes; run at 2
#                          and 4 workers so the worker-count scaling curve
#                          is on record) + bench_service_load (the socket
#                          load driver: N concurrent unix-socket clients in
#                          closed and open loop against a live router, with
#                          p50/p95/p99 from the obs histograms, plus the
#                          splice-vs-full-parse relay microbench)
# Each envelope carries an "execution" block (DPCLUSTX_THREADS and
# DPCLUSTX_ISA as exported, cpu count, build provenance, snapshot format
# version and active/detected kernel dispatch level from `dpclustx_serve
# --version`, and the cpuid feature list) alongside each binary's own
# google-benchmark context, plus a "metrics" block holding the Prometheus
# exposition dumped by a short smoke run of the service, so a snapshot
# states the parallelism, the vector ISA, and the exact binary it was
# measured under. Rerun on new hardware to refresh.
#
# Usage: scripts/bench_snapshot.sh [parallel_out.json [data_plane_out.json \
#                                   [service_out.json]]]

set -euo pipefail
cd "$(dirname "$0")/.."

OUT_PARALLEL="${1:-BENCH_parallel.json}"
OUT_DATA_PLANE="${2:-BENCH_data_plane.json}"
OUT_SERVICE="${3:-BENCH_service.json}"

echo "==> building bench binaries"
cmake -B build -S . >/dev/null
cmake --build build -j --target bench_parallel_scaling \
  bench_scale_large_dataset bench_data_plane bench_router_throughput \
  bench_service_load dpclustx_serve dpclustx_router >/dev/null

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

echo "==> bench_parallel_scaling"
./build/bench/bench_parallel_scaling \
  --benchmark_out="$TMP_DIR/parallel_scaling.json" \
  --benchmark_out_format=json
echo "==> bench_scale_large_dataset"
./build/bench/bench_scale_large_dataset \
  --benchmark_out="$TMP_DIR/scale_large_dataset.json" \
  --benchmark_out_format=json
echo "==> bench_data_plane"
./build/bench/bench_data_plane \
  --benchmark_out="$TMP_DIR/data_plane.json" \
  --benchmark_out_format=json
echo "==> bench_router_throughput (worker-count scaling: 2 and 4)"
# Plain-main bench: the last stdout line is the machine-readable JSON.
for w in 2 4; do
  ./build/bench/bench_router_throughput \
    --workers "$w" --requests 96 --window 32 --rows 20000 --datasets 4 \
    --state-dir "$TMP_DIR/router_bench_w$w" |
    tee "$TMP_DIR/router_human_w$w.txt"
  tail -n 1 "$TMP_DIR/router_human_w$w.txt" \
    > "$TMP_DIR/router_throughput_w$w.json"
done

echo "==> bench_service_load (socket transport, closed + open loop)"
# Twice: the observability=off baseline, then full (every request traced
# end to end + fleet-rollup scrapes). The p99 delta between the two is the
# measured cost of cross-process trace propagation (budget: ≤3%).
for mode in off full; do
  ./build/bench/bench_service_load \
    --observability "$mode" --state-dir "$TMP_DIR/service_load_$mode" |
    tee "$TMP_DIR/service_load_human_$mode.txt"
  tail -n 1 "$TMP_DIR/service_load_human_$mode.txt" \
    > "$TMP_DIR/service_load_$mode.json"
done

echo "==> service metrics smoke dump"
BUILD_VERSION="$(./build/tools/dpclustx_serve --version)"
printf '%s\n' \
  '{"op":"load_dataset","name":"smoke","source":"synthetic","generator":"diabetes","rows":500,"seed":7}' \
  '{"op":"cluster","dataset":"smoke","method":"k-means","k":3,"seed":3}' \
  '{"op":"stats"}' |
  ./build/tools/dpclustx_serve --sync \
    --metrics-dump "$TMP_DIR/metrics.prom" >/dev/null

# Merge into one envelope per output, keyed by bench binary and stamped with
# the execution environment. python3 is already a build prerequisite on the
# CI image; no extra dependencies.
python3 - "$TMP_DIR/parallel_scaling.json" \
  "$TMP_DIR/scale_large_dataset.json" "$TMP_DIR/data_plane.json" \
  "$OUT_PARALLEL" "$OUT_DATA_PLANE" "$TMP_DIR/metrics.prom" \
  "$BUILD_VERSION" "$TMP_DIR/router_throughput_w2.json" \
  "$TMP_DIR/router_throughput_w4.json" "$TMP_DIR/service_load_off.json" \
  "$TMP_DIR/service_load_full.json" "$OUT_SERVICE" <<'PY'
import json, os, re, sys
(parallel, scale, data_plane, out_parallel, out_data_plane, metrics_path,
 build_version, router_throughput_w2, router_throughput_w4,
 service_load_off, service_load_full, out_service) = sys.argv[1:13]

# "dpclustx <sha> (GNU 12.2.0, Release), isa avx2 (detected avx512),
# snapshot-format v1" — the format version and the kernel dispatch level are
# part of the provenance line so they are stamped from the binary actually
# measured, not from a header the script happens to see.
format_match = re.search(r"snapshot-format v(\d+)", build_version)
isa_match = re.search(r"isa (\S+) \(detected (\S+)\)", build_version)

execution = {
    "dpclustx_threads_env": os.environ.get("DPCLUSTX_THREADS", ""),
    "dpclustx_isa_env": os.environ.get("DPCLUSTX_ISA", ""),
    "num_cpus": os.cpu_count(),
    "build": build_version,
    "snapshot_format_version":
        int(format_match.group(1)) if format_match else None,
    "isa_active": isa_match.group(1) if isa_match else None,
    "isa_detected": isa_match.group(2) if isa_match else None,
}

# The benchmark binaries also stamp isa_active/isa_detected/cpu_features
# into their own google-benchmark context (bench_common.cc AddPoolContext),
# so the per-bench blocks carry the cpuid feature list verbatim; copy the
# feature string up into the envelope when present.
def cpu_features_of(bench_json):
    return bench_json.get("context", {}).get("cpu_features")

with open(metrics_path) as f:
    metrics_text = f.read()

def load(path):
    with open(path) as f:
        return json.load(f)

def dump(path, envelope):
    envelope["execution"] = execution
    envelope["metrics"] = {"prometheus": metrics_text}
    with open(path, "w") as f:
        json.dump(envelope, f, indent=2)
        f.write("\n")

parallel_json = load(parallel)
data_plane_json = load(data_plane)
execution["cpu_features"] = (cpu_features_of(parallel_json) or
                             cpu_features_of(data_plane_json))

dump(out_parallel, {"bench_parallel_scaling": parallel_json,
                    "bench_scale_large_dataset": load(scale)})
dump(out_data_plane, {"bench_data_plane": data_plane_json})
# "bench_router_throughput" stays the canonical 2-worker run (what
# EXPERIMENTS.md quotes); the scaling list records every worker count
# measured this run so the curve travels with the snapshot.
# "bench_service_load" stays the observability=off baseline; the _full run
# and the computed overhead deltas record what fleet-wide tracing costs
# (DESIGN.md §15 budgets p99 at ≤3%).
load_off = load(service_load_off)
load_full = load(service_load_full)
def overhead_pct(key):
    base = load_off.get(key)
    full = load_full.get(key)
    if not base or full is None:
        return None
    return round(100.0 * (full - base) / base, 2)
dump(out_service, {
    "bench_router_throughput": load(router_throughput_w2),
    "bench_router_throughput_scaling": [load(router_throughput_w2),
                                        load(router_throughput_w4)],
    "bench_service_load": load_off,
    "bench_service_load_full_observability": load_full,
    "trace_propagation_overhead": {
        "closed_p99_pct": overhead_pct("closed_p99_ms"),
        "open_p99_pct": overhead_pct("open_p99_ms"),
        "closed_rps_pct": overhead_pct("closed_rps"),
        "budget_p99_pct": 3.0,
    },
})
PY

echo "==> wrote $OUT_PARALLEL, $OUT_DATA_PLANE and $OUT_SERVICE"
